"""E10 (ablation): order-based absorption vs keep-all (+R union).

The paper "hopes for generating a citation ... which avoids an exhaustive
materialization of all rewritings" via the order relation.  This ablation
quantifies the benefit: citation size and rendering work under the
comprehensive (keep-all) vs focused (absorb) policies, plus the cost of
Def 2.2 validation itself.
"""

import pytest

from repro.citation.generator import CitationEngine
from repro.citation.policy import comprehensive_policy, focused_policy
from repro.cq.parser import parse_query
from repro.gtopdb.generator import generate_database
from repro.rewriting.engine import enumerate_rewritings

QUERY = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'


@pytest.fixture(scope="module")
def synthetic_db():
    return generate_database(families=300, persons=120, seed=37)


def total_monomials(result):
    return sum(
        len(tc.polynomial.monomials()) for tc in result.tuples.values()
    )


def test_e10_comprehensive_policy(benchmark, registry, synthetic_db):
    engine = CitationEngine(synthetic_db, registry,
                            policy=comprehensive_policy())
    result = benchmark(engine.cite, QUERY)
    benchmark.extra_info["monomials"] = total_monomials(result)
    assert total_monomials(result) > len(result.tuples)


def test_e10_focused_policy(benchmark, registry, synthetic_db):
    engine = CitationEngine(synthetic_db, registry,
                            policy=focused_policy(registry))
    result = benchmark(engine.cite, QUERY)
    benchmark.extra_info["monomials"] = total_monomials(result)
    # Absorption: exactly one monomial per tuple.
    assert total_monomials(result) == len(result.tuples)


def test_e10_absorption_shrinks_citations(registry, synthetic_db):
    comprehensive = CitationEngine(
        synthetic_db, registry, policy=comprehensive_policy()
    ).cite(QUERY)
    focused = CitationEngine(
        synthetic_db, registry, policy=focused_policy(registry)
    ).cite(QUERY)
    assert set(comprehensive.tuples) == set(focused.tuples)
    # Shape claim: at least a 3x reduction (4 rewritings collapse to 1).
    assert total_monomials(comprehensive) >= 3 * total_monomials(focused)
    assert len(focused.records) <= len(comprehensive.records)


def test_e10_validation_cost(benchmark, registry):
    """Def 2.2 validation (equivalence + minimality + maximality) is the
    expensive part of enumeration; measure it via the validate switch."""
    query = parse_query(QUERY)

    def with_validation():
        return enumerate_rewritings(query, registry, validate=True)

    validated = benchmark(with_validation)
    unvalidated = enumerate_rewritings(query, registry, validate=False)
    assert len(validated) <= len(unvalidated)
