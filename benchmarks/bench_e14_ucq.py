"""E14 (SPJU's U): citations for unions of conjunctive queries.

Section 3.1 defines the citation algebra for SPJU queries; union is the
alternative-use case of `+`.  Shape claims: tuples produced by several
disjuncts combine their citations with `+`; subsumed disjuncts are
removed before citing (UCQ minimization).
"""

from repro.citation.tokens import ViewCitationToken
from repro.cq.ucq import parse_union_query

UNION = (
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
    'Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx)'
)


def test_e14_union_citation(benchmark, comprehensive_engine):
    result = benchmark(comprehensive_engine.cite_union, UNION)
    # Calcitonin (gpcr, has intro) is produced by both disjuncts: its
    # citation sums tokens from both (type view V4 and join view V5).
    calcitonin = result.tuples[("Calcitonin",)].polynomial
    views = {
        t.view_name for m in calcitonin.monomials()
        for t in m.tokens() if isinstance(t, ViewCitationToken)
    }
    assert "V4" in views and "V5" in views


def test_e14_ucq_minimization(benchmark):
    union = parse_union_query(
        "Q(N) :- Family(F, N, Ty)\n"
        'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
        'Q(N) :- Family(F, N, Ty), Ty = "vgic"'
    )
    minimized = benchmark(union.minimized)
    # Both selective disjuncts are subsumed by the unrestricted one.
    assert len(minimized) == 1


def test_e14_union_vs_single_query_consistency(comprehensive_engine):
    # A one-disjunct union cites exactly like the plain query.
    single = comprehensive_engine.cite(
        'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
    )
    union = comprehensive_engine.cite_union(
        'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
    )
    assert set(single.tuples) == set(union.tuples)
    for output in single.tuples:
        assert single.tuples[output].polynomial == \
            union.tuples[output].polynomial
