"""E1 (Example 2.1): citation views V1-V5 and their JSON citations.

Paper claim: each view yields the JSON citation shown in Example 2.1.
Benchmark: time to compute F_V(C_V(params)) per view.
"""

import pytest

EXPECTED = {
    ("V1", ("11",)): {
        "ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"],
    },
    ("V2", ("11",)): {
        "ID": "11", "Name": "Calcitonin",
        "Text": "The calcitonin peptide family",
        "Contributors": ["Brown", "Smith"],
    },
    ("V3", ()): {
        "Owner": "Tony Harmar", "URL": "guidetopharmacology.org",
    },
}


@pytest.mark.parametrize("view_name,params", [
    ("V1", ("11",)),
    ("V2", ("11",)),
    ("V3", ()),
    ("V4", ("gpcr",)),
    ("V5", ("gpcr",)),
])
def test_e1_view_citation(benchmark, db, registry, view_name, params):
    view = registry.get(view_name)
    record = benchmark(view.citation_for, db, params)
    if (view_name, params) in EXPECTED:
        assert record == EXPECTED[(view_name, params)]
    else:
        # V4/V5: nested structure grouping families of the type.
        assert record["Type"] == "gpcr"
        assert len(record["Contributors"]) >= 2


def test_e1_v4_credits_committees_v5_credits_contributors(
        benchmark, db, registry):
    def both():
        return (
            registry.get("V4").citation_for(db, ("gpcr",)),
            registry.get("V5").citation_for(db, ("gpcr",)),
        )

    v4, v5 = benchmark(both)
    v4_names = {g["Name"]: g["Committee"] for g in v4["Contributors"]}
    v5_names = {g["Name"]: g["Committee"] for g in v5["Contributors"]}
    assert v4_names["Calcitonin"] == ["Hay", "Poyner"]      # committee
    assert v5_names["Calcitonin"] == ["Brown", "Smith"]     # contributors
