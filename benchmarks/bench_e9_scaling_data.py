"""E9 (scaling): citation generation vs database size.

Measures end-to-end cite() time and citation size across synthetic GtoPdb
instances of growing size (the per-tuple vs aggregated trade-off of
Defs 3.2/3.4).  Shape claims: output and work grow with data; the focused
policy's aggregate citation stays *constant-size* regardless of data
volume (that is the point of λ-absorbed view citations).
"""

import pytest

from repro.citation.generator import CitationEngine
from repro.citation.policy import comprehensive_policy, focused_policy
from repro.gtopdb.generator import generate_database

QUERY = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'

SIZES = [100, 400, 1600]


@pytest.fixture(scope="module")
def databases():
    return {size: generate_database(families=size, persons=size // 2,
                                    seed=29)
            for size in SIZES}


@pytest.mark.parametrize("size", SIZES)
def test_e9_cite_time_vs_data(benchmark, registry, databases, size):
    db = databases[size]
    engine = CitationEngine(db, registry, policy=focused_policy(registry))
    result = benchmark(engine.cite, QUERY)
    assert result.tuples
    benchmark.extra_info["families"] = size
    benchmark.extra_info["tuples"] = len(result.tuples)


def test_e9_aggregate_citation_constant_size(registry, databases):
    sizes = {}
    for size, db in databases.items():
        engine = CitationEngine(db, registry,
                                policy=focused_policy(registry))
        result = engine.cite(QUERY)
        sizes[size] = len(result.aggregate_polynomial.monomials())
    # λTy absorption: one V5("gpcr") citation regardless of data size.
    assert set(sizes.values()) == {1}


def test_e9_per_tuple_citations_grow_with_data(registry, databases):
    counts = []
    for size in SIZES:
        engine = CitationEngine(databases[size], registry,
                                policy=comprehensive_policy())
        result = engine.cite(QUERY)
        counts.append(
            sum(len(tc.polynomial.monomials())
                for tc in result.tuples.values())
        )
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]


@pytest.mark.parametrize("size", [100, 400])
def test_e9_view_materialization_cost(benchmark, registry, databases,
                                      size):
    db = databases[size]
    materialized = benchmark(registry.materialize, db)
    assert len(materialized["V1"]) == size
