"""E12 (fixity, Section 4): versioned citations.

Paper claim: "data sources must support versioning, and citations must
include timestamps or version numbers" — the same query cited against
different versions credits the curators of *that* version, and old
citations remain reproducible after further edits.
"""

import pytest

from repro.fixity.versioned import VersionedCitationEngine, VersionedDatabase
from repro.gtopdb.schema import gtopdb_schema

QUERY = "Q(N) :- Family(F, N, Ty)"


@pytest.fixture(scope="module")
def versioned():
    vdb = VersionedDatabase(gtopdb_schema())
    vdb.insert("Family", "11", "Calcitonin", "gpcr")
    vdb.insert("Person", "p1", "Hay", "x")
    vdb.insert("FC", "11", "p1")
    vdb.commit("2015.1")
    vdb.insert("Person", "p2", "Poyner", "y")
    vdb.insert("FC", "11", "p2")
    vdb.commit("2016.2")
    vdb.delete("FC", "11", "p1")
    vdb.commit("2017.1")
    return vdb


def test_e12_versioned_citation(benchmark, versioned):
    from repro.gtopdb.views import paper_registry
    engine = VersionedCitationEngine(versioned, paper_registry())
    result = benchmark(engine.cite, QUERY, "2016.2")
    assert all(r["Version"] == "2016.2" for r in result.records)
    assert "Hay" in str(result.records)


def test_e12_citations_differ_across_versions(versioned):
    from repro.gtopdb.views import paper_registry
    engine = VersionedCitationEngine(versioned, paper_registry())
    r2015 = engine.cite(QUERY, "2015.1")
    r2017 = engine.cite(QUERY, "2017.1")
    assert "Poyner" not in str(r2015.records)
    assert "Poyner" in str(r2017.records)
    assert "Hay" not in str(r2017.records)  # retired in 2017.1


def test_e12_reconstruction_cost(benchmark, versioned):
    versioned._cache.clear()

    def reconstruct():
        versioned._cache.clear()
        return versioned.as_of("2016.2")

    db = benchmark(reconstruct)
    assert len(db.relation("FC")) == 2


def test_e12_old_citations_stable_after_new_edits(versioned):
    from repro.gtopdb.views import paper_registry
    engine = VersionedCitationEngine(versioned, paper_registry())
    before = engine.cite(QUERY, "2015.1").records
    versioned.insert("Family", "99", "NewFamily", "other")
    versioned.commit("2018.1")
    after = engine.cite(QUERY, "2015.1").records
    assert before == after
