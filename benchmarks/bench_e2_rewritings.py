"""E2 (Example 2.2): rewritings of the gpcr-families-with-intro query.

Paper claims: the query rewrites using {V1,V2} and {V4,V2}; the V4
rewriting absorbs Ty="gpcr" into the λ-parameter and is "more specific".
Benchmark: full Def 2.2 enumeration (descriptors + equivalence +
minimality + maximality).
"""

from repro.cq.parser import parse_query
from repro.rewriting.engine import enumerate_rewritings

QUERY = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)'


def test_e2_enumerate_rewritings(benchmark, registry):
    query = parse_query(QUERY)
    rewritings = benchmark(enumerate_rewritings, query, registry)

    used = {frozenset(a.view.name for a in r.applications)
            for r in rewritings}
    assert frozenset({"V1", "V2"}) in used, "paper's Q1 missing"
    assert frozenset({"V4", "V2"}) in used, "paper's Q2 missing"
    assert all(r.is_total for r in rewritings)

    by_views = {frozenset(a.view.name for a in r.applications): r
                for r in rewritings}
    q1 = by_views[frozenset({"V1", "V2"})]
    q2 = by_views[frozenset({"V4", "V2"})]
    # Shape claim: Q2 absorbs the comparison, Q1 leaves a residual one.
    assert q2.absorbed_parameter_count >= 1
    assert q2.residual_comparison_count == 0
    assert q1.residual_comparison_count == 1


def test_e2_rewriting_without_selection(benchmark, registry):
    # Without the comparison, V4's λ stays free: no absorption anywhere.
    query = parse_query("Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx)")
    rewritings = benchmark(enumerate_rewritings, query, registry)
    assert rewritings
    assert all(r.absorbed_parameter_count == 0 for r in rewritings)
