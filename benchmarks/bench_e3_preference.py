"""E3 (Example 2.3): four rewritings Q1-Q4; Q4 preferred.

Paper claims: the name+intro query has (at least) the four listed
rewritings, all total; Q4 = V5("gpcr") wins on the three criteria (total,
fewest views, comparison matched by λ-term).
"""

from repro.cq.parser import parse_query
from repro.rewriting.engine import enumerate_rewritings

QUERY = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'


def test_e3_enumeration_and_preference(benchmark, registry):
    query = parse_query(QUERY)
    rewritings = benchmark(enumerate_rewritings, query, registry)

    bodies = {
        tuple(sorted(a.view.name for a in r.applications))
        for r in rewritings
    }
    assert bodies == {
        ("V1", "V2"),   # Q1
        ("V2", "V3"),   # Q2
        ("V2", "V4"),   # Q3
        ("V5",),        # Q4
    }
    assert all(r.is_total for r in rewritings)

    # Preference criteria (i)-(iii) select Q4.
    best = rewritings[0]  # engine sorts by exactly those criteria
    assert [a.view.name for a in best.applications] == ["V5"]
    assert best.view_count == 1
    assert best.residual_comparison_count == 0


def test_e3_preference_ranking_stability(benchmark, registry):
    query = parse_query(QUERY)

    def ranked_names():
        return [
            tuple(sorted(a.view.name for a in r.applications))
            for r in enumerate_rewritings(query, registry)
        ]

    first = ranked_names()
    assert benchmark(ranked_names) == first
    assert first[0] == ("V5",)
