"""E5 (Example 3.4): idempotent + and Agg give one citation per result set.

Paper claim: when a preferred rewriting binds every λ-parameter to a
constant, idempotent `+`/`Agg` collapse the whole result set onto a single
citation (multiplicand).
"""

from repro.citation.tokens import ViewCitationToken

QUERY = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'


def test_e5_single_citation_for_result_set(benchmark, focused_engine):
    result = benchmark(focused_engine.cite, QUERY)

    # Preferred rewriting V5("gpcr") is fully instantiated.
    preferred = result.rewritings[0]
    assert preferred.is_fully_instantiated

    # Every tuple carries the identical single-monomial citation ...
    polynomials = {tc.polynomial for tc in result.tuples.values()}
    assert len(polynomials) == 1
    polynomial = polynomials.pop()
    assert polynomial.monomials()[0].tokens() == [
        ViewCitationToken("V5", ("gpcr",))
    ]
    # ... and the aggregate is that same single citation, coefficient 1.
    assert result.aggregate_polynomial == polynomial
    assert list(result.aggregate_polynomial.terms.values()) == [1]


def test_e5_counted_plus_keeps_multiplicity(benchmark, db, registry):
    from repro.citation.generator import CitationEngine
    from repro.citation.policy import CitationPolicy

    policy = CitationPolicy(name="counted", plus="counted", dot="merge")
    engine = CitationEngine(db, registry, policy=policy)
    result = benchmark(engine.cite, "Q(Ty) :- Family(F, N, Ty)")
    # Without idempotence the aggregate keeps derivation multiplicities:
    # several gpcr families contribute coefficient > 1 somewhere.
    assert any(
        coefficient > 1
        for tc in result.tuples.values()
        for coefficient in tc.polynomial.terms.values()
    )
