"""E13 (Section 4: caching): rewriting cache ablation.

Paper claim: "our future work will also study ... caching and
materialization" as a path to practical citation generation.  This
benchmark quantifies the benefit on a template-shaped workload: repeated
or α-equivalent queries should pay the Def 2.2 enumeration once.
"""


from repro.citation.cache import cached_engine
from repro.cq.parser import parse_query
from repro.rewriting.engine import RewritingEngine

TEMPLATES = [
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
    'Q(M) :- Family(G, M, T2), T2 = "gpcr"',       # α-equivalent
    'Q(X) :- Family(Y, X, Z), Z = "gpcr"',         # α-equivalent
    'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"',
    'Q(A, B) :- Family(C, A, D), FamilyIntro(C, B), D = "gpcr"',  # α-eq.
]


def test_e13_uncached_workload(benchmark, registry):
    engine = RewritingEngine(registry)
    queries = [parse_query(text) for text in TEMPLATES]

    def run():
        return [engine.rewrite(query) for query in queries]

    results = benchmark(run)
    assert all(results)


def test_e13_cached_workload(benchmark, registry):
    queries = [parse_query(text) for text in TEMPLATES]

    def run():
        engine = cached_engine(registry)
        results = [engine.rewrite(query) for query in queries]
        return engine, results

    engine, results = benchmark(run)
    assert all(results)
    # Shape claim: only 2 distinct structures among the 5 queries.
    assert engine.misses == 2
    assert engine.hits == 3


def test_e13_cache_soundness(registry):
    """Cached rewritings match uncached ones structurally."""
    plain = RewritingEngine(registry)
    cached = cached_engine(registry)
    for text in TEMPLATES:
        query = parse_query(text)
        # Warm the cache so the shape comparison below exercises the
        # cache-hit path (α-equivalent cached entries may differ in
        # variable names, so compare view usage and classification
        # instead of raw query text).
        cached.rewrite(query)
        plain_shapes = sorted(
            (tuple(sorted(a.view.name for a in r.applications)),
             r.is_total, r.residual_comparison_count)
            for r in plain.rewrite(query)
        )
        cached_shapes = sorted(
            (tuple(sorted(a.view.name for a in r.applications)),
             r.is_total, r.residual_comparison_count)
            for r in cached.rewrite(query)
        )
        assert plain_shapes == cached_shapes
