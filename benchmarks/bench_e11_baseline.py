"""E11 (baseline): hard-coded page citations vs the rewriting model.

Paper intro: GtoPdb "generates citations, but only to a subset of the
possible queries ... those corresponding to web-page views of the data";
the model covers general queries.  This benchmark quantifies the coverage
gap on a mixed workload and times both citation paths.
"""

import pytest

from repro.baseline.pageview import PageViewBaseline
from repro.cq.parser import parse_query

WORKLOAD = [
    # Page-shaped queries (the baseline's home turf).
    'P(F, N, Ty) :- Family(F, N, Ty), F = "11"',
    'P(F, N, Ty) :- Family(F, N, Ty), F = "12"',
    'P(F, Tx) :- FamilyIntro(F, Tx), F = "11"',
    # General queries (projections, joins, type selections).
    'P(N) :- Family(F, N, Ty), F = "11"',
    'P(N) :- Family(F, N, Ty), Ty = "gpcr"',
    "P(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
    'P(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"',
    "P(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)",
]


@pytest.fixture(scope="module")
def baseline(db, registry):
    instance = PageViewBaseline(db, registry)
    instance.register_all_pages("V1")
    instance.register_all_pages("V2")
    instance.register_page("V3")
    return instance


def test_e11_baseline_coverage(benchmark, baseline):
    queries = [parse_query(text) for text in WORKLOAD]
    coverage = benchmark(baseline.coverage, queries)
    # Only the page-shaped queries are citable: 3 of 8.
    assert coverage == pytest.approx(3 / 8)


def test_e11_model_coverage(benchmark, focused_engine):
    queries = [parse_query(text) for text in WORKLOAD]

    def model_coverage():
        covered = 0
        for query in queries:
            result = focused_engine.cite(query)
            body = [r for r in result.records
                    if r not in result.database_citation]
            if body:
                covered += 1
        return covered / len(queries)

    coverage = benchmark(model_coverage)
    # The model cites every workload query (who wins: the model, 8/8 vs
    # 3/8 — the paper's motivating gap).
    assert coverage == 1.0


def test_e11_baseline_lookup_speed(benchmark, baseline):
    query = parse_query('P(F, N, Ty) :- Family(F, N, Ty), F = "11"')
    citation = benchmark(baseline.cite, query)
    assert citation["Name"] == "Calcitonin"
