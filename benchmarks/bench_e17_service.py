"""E17 (service): one warm shared engine vs cold per-consumer engines.

The deployment claim behind ``repro serve``: a repository front-end that
keeps **one** warm :class:`CitationEngine` behind an HTTP service
amortizes plan cache, rewriting cache, and sub-plan memo across *all*
traffic, where the per-process model (every consumer builds its own
engine, cites, exits) pays the cold-start on every request.

The workload reuses the E16 batch-overlap shape — six queries sharing an
expensive 3-step join prefix — because it exercises every shared cache
at once: repeated queries hit the plan cache, and the shared prefix
(reserved by a warm-up ``/cite-batch``) turns into sub-plan memo hits
for later single-query requests.

Assertions (the PR's acceptance gate):

- N sequential requests against the warm service run ≥1.5× faster than
  N cold per-consumer engine runs;
- ``/stats`` after the run shows plan-cache *and* sub-plan-memo hits;
- sharded and serial engines answer byte-identically through HTTP.
"""

import time

from repro.citation.generator import CitationEngine
from repro.citation.policy import focused_policy
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import paper_registry
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.views.registry import ViewRegistry

from bench_e16_planner import _overlap_queries, _scaled, overlap_database

#: Sequential requests measured against each deployment model.
REQUESTS = 30


def _overlap_setup(quick: bool):
    # Quick floors stay high enough that engine work dominates the
    # ~1ms/request HTTP overhead — the ratio under test is about cache
    # reuse, not socket throughput.
    db = overlap_database(
        hop1_rows=_scaled(300, quick, floor=200),
        junk=_scaled(5000, quick, floor=3000),
    )
    registry = ViewRegistry(db.schema)
    return db, registry


def _request_stream(count: int) -> list[str]:
    queries = _overlap_queries()
    return [queries[i % len(queries)] for i in range(count)]


def test_e17_warm_service_beats_cold_engines(quick):
    """The headline: N sequential requests against the warm service are
    ≥1.5× faster than N cold per-consumer engine runs (in practice far
    more: every cold run replans and re-evaluates the shared prefix)."""
    db, registry = _overlap_setup(quick)
    stream = _request_stream(REQUESTS)

    # --- cold model: each consumer builds its own engine and cites.
    # (In-process construction is *conservative* vs the real per-process
    # model, which additionally pays interpreter + import start-up.)
    started = time.perf_counter()
    for text in stream:
        cold_engine = CitationEngine(db, registry)
        cold_engine.cite(text)
    cold_elapsed = time.perf_counter() - started

    # --- warm model: one service, one engine, shared caches.
    engine = CitationEngine(db, registry)
    with ServiceThread(engine) as handle:
        client = ServiceClient(handle.base_url)
        try:
            # One batch warm-up: plans + reserved shared prefixes.
            assert client.cite_batch(_overlap_queries()).status == 200
            started = time.perf_counter()
            for text in stream:
                assert client.cite(text).status == 200
            warm_elapsed = time.perf_counter() - started
            stats = client.stats()
        finally:
            client.close()

    engine_stats = stats["engine"]
    assert engine_stats["plan_cache"]["hits"] >= REQUESTS
    assert engine_stats["subplan_memo"]["hits"] > 0
    assert engine_stats["subplan_memo"]["reserved"] > 0
    latency = stats["service"]["endpoints"]["POST /cite"]["latency"]
    assert latency["count"] == REQUESTS

    speedup = cold_elapsed / warm_elapsed
    assert speedup >= 1.5, (
        f"warm service {warm_elapsed:.3f}s vs cold engines "
        f"{cold_elapsed:.3f}s — only {speedup:.2f}×"
    )


def test_e17_concurrent_clients_share_one_batch(quick):
    """Cross-client micro-batching on the wire: requests queued together
    coalesce into fewer engine batches (visible in /stats)."""
    import threading

    db, registry = _overlap_setup(quick)
    engine = CitationEngine(db, registry)
    config = ServiceConfig(port=0, batch_linger_s=0.05)
    clients = 6
    with ServiceThread(engine, config) as handle:
        barrier = threading.Barrier(clients)
        statuses = []

        def one(text):
            client = ServiceClient(handle.base_url)
            try:
                barrier.wait(10.0)
                statuses.append(client.cite(text).status)
            finally:
                client.close()

        threads = [
            threading.Thread(target=one, args=(text,))
            for text in _overlap_queries()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        observer = ServiceClient(handle.base_url)
        try:
            batching = observer.stats()["service"]["batching"]
        finally:
            observer.close()
    assert statuses == [200] * clients
    assert batching["batched_requests"] == clients
    assert batching["batches_executed"] < clients


def test_e17_sharded_equals_serial_through_http():
    """Hash-partitioned storage answers byte-identically to serial
    storage through the full HTTP stack."""
    registry = paper_registry()
    queries = [
        'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
        "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
        'Q(N) :- Family(F, N, Ty), Ty = "gpcr" ; '
        'Q(N) :- Family(F, N, Ty), Ty = "vgic"',
    ]
    bodies = {}
    for label, shards in (("serial", 1), ("sharded", 4)):
        db = paper_database()
        if shards > 1:
            db.reshard(shards)
        engine = CitationEngine(
            db, registry, policy=focused_policy(registry)
        )
        with ServiceThread(engine) as handle:
            client = ServiceClient(handle.base_url)
            try:
                replies = [client.cite(text) for text in queries]
                replies.append(client.cite_batch(queries[:2]))
                assert all(r.status == 200 for r in replies)
                bodies[label] = [r.body for r in replies]
            finally:
                client.close()
    assert bodies["serial"] == bodies["sharded"]


def test_e17_stats_expose_every_cache(quick):
    """/stats is the observability contract: every shared cache reports
    hit/miss/eviction counters plus shipping and latency telemetry."""
    db, registry = _overlap_setup(True)  # smallest instance: shape only
    engine = CitationEngine(db, registry)
    with ServiceThread(engine) as handle:
        client = ServiceClient(handle.base_url)
        try:
            client.cite_batch(_overlap_queries())
            # One single-query request: rides the lane's cite path, so
            # the micro-batching counters tick too.
            client.cite(_overlap_queries()[0])
            stats = client.stats()
        finally:
            client.close()
    engine_stats = stats["engine"]
    for cache in ("plan_cache", "rewriting_cache", "subplan_memo"):
        assert {"hits", "misses", "evictions"} <= set(engine_stats[cache])
    assert {"shipped_bytes", "payloads"} <= set(stats["shipping"])
    assert stats["service"]["batching"]["batches_executed"] >= 1
