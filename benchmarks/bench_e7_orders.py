"""E7 (Examples 3.6-3.8): order relations and absorption.

Paper claims: the three order constructions behave as described — fewer
views preferred (3.6), fewer uncovered C_R atoms preferred (3.7), included
views preferred (3.8) — and normal forms remove dominated monomials.
Benchmark: normal-form computation over growing polynomials.
"""

import pytest

from repro.citation.order import (
    FewestUncoveredOrder,
    FewestViewsOrder,
    ViewInclusionOrder,
    best_polynomials,
    normal_form,
)
from repro.citation.polynomial import monomial_from_tokens
from repro.citation.tokens import BaseRelationToken, ViewCitationToken
from repro.semiring.polynomial import ProvenancePolynomial


def vt(name, *params):
    return ViewCitationToken(name, params)


def make_polynomial(size: int) -> ProvenancePolynomial:
    """A polynomial with `size` monomials of growing view counts."""
    monomials = {}
    for index in range(size):
        tokens = [vt(f"V{1 + index % 5}", str(index // 5 + 10))] * 1
        tokens += [vt("V2", str(j)) for j in range(index % 4)]
        if index % 3 == 0:
            tokens.append(BaseRelationToken("FC"))
        monomials[monomial_from_tokens(tokens)] = 1
    return ProvenancePolynomial(monomials)


def test_e7_example_36_fewest_views(benchmark):
    order = FewestViewsOrder()
    two = monomial_from_tokens([vt("V1", "13"), vt("V2", "13")])
    one = monomial_from_tokens([vt("V5", "gpcr")])
    polynomial = ProvenancePolynomial({two: 1, one: 1})
    nf = benchmark(normal_form, polynomial, order)
    assert nf.monomials() == [one]


def test_e7_example_37_fewest_uncovered(benchmark):
    order = FewestUncoveredOrder()
    uncovered = monomial_from_tokens([
        vt("V1", "13"), BaseRelationToken("FC"),
    ])
    covered = monomial_from_tokens([vt("V1", "13"), vt("V2", "13")])
    polynomial = ProvenancePolynomial({uncovered: 1, covered: 1})
    nf = benchmark(normal_form, polynomial, order)
    assert nf.monomials() == [covered]


def test_e7_example_38_view_inclusion(benchmark, registry):
    order = ViewInclusionOrder(registry)
    general = monomial_from_tokens([vt("V3")])
    specific = monomial_from_tokens([vt("V1", "11")])
    polynomial = ProvenancePolynomial({general: 1, specific: 1})
    nf = benchmark(normal_form, polynomial, order)
    assert nf.monomials() == [specific]


@pytest.mark.parametrize("size", [8, 32, 128])
def test_e7_normal_form_scaling(benchmark, size):
    order = FewestViewsOrder()
    polynomial = make_polynomial(size)
    nf = benchmark(normal_form, polynomial, order)
    # Normal form keeps only minimal-view-count monomials.
    from repro.citation.polynomial import view_token_count
    minimum = min(view_token_count(m) for m in polynomial.monomials())
    assert all(view_token_count(m) == minimum for m in nf.monomials())


def test_e7_plus_r_best(benchmark, registry):
    order = FewestViewsOrder()
    polys = [
        ProvenancePolynomial({
            monomial_from_tokens([vt("V1", "13"), vt("V2", "13")]): 1,
        }),
        ProvenancePolynomial({
            monomial_from_tokens([vt("V5", "gpcr")]): 1,
        }),
    ]
    kept = benchmark(best_polynomials, polys, order)
    assert kept == [polys[1]]
