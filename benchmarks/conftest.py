"""Shared fixtures for the experiment benchmarks (see EXPERIMENTS.md).

Every benchmark asserts the paper's *shape* claims in addition to timing,
so `pytest benchmarks/ --benchmark-only` doubles as the reproduction
harness: a passing run certifies both behaviour and performance trends.
"""

from __future__ import annotations

import pytest

from repro.citation.generator import CitationEngine
from repro.citation.policy import comprehensive_policy, focused_policy
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import paper_registry


@pytest.fixture(scope="session")
def quick(request):
    """True under ``--quick`` (registered in the repo-root conftest):
    reduced instance sizes, every shape assertion kept."""
    return bool(request.config.getoption("--quick", default=False))


@pytest.fixture(scope="session")
def db():
    return paper_database()


@pytest.fixture(scope="session")
def registry():
    return paper_registry()


@pytest.fixture(scope="session")
def comprehensive_engine(db, registry):
    return CitationEngine(db, registry, policy=comprehensive_policy())


@pytest.fixture(scope="session")
def focused_engine(db, registry):
    return CitationEngine(db, registry, policy=focused_policy(registry))
