"""E6 (Example 3.5): interpretations of `·` and `+R` over JSON records.

Paper claims: `·` as union keeps the two family-11 records side by side;
`·` as join/merge factors out the common fields; `+R` as merge unions the
committee lists.
"""

from repro.citation.combiners import dot_merge, dot_union, plus_merge

FV1 = {"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}
FV2 = {"ID": "11", "Name": "Calcitonin",
       "Text": "The calcitonin peptide family",
       "Contributors": ["Brown", "Smith"]}


def test_e6_dot_union(benchmark):
    result = benchmark(dot_union, [FV1, FV2])
    assert result == [FV1, FV2]


def test_e6_dot_merge(benchmark):
    result = benchmark(dot_merge, [FV1, FV2])
    assert result == [{
        "ID": "11",
        "Name": "Calcitonin",
        "Committee": ["Hay", "Poyner"],
        "Text": "The calcitonin peptide family",
        "Contributors": ["Brown", "Smith"],
    }]


def test_e6_plus_r_merge(benchmark):
    left = {"ID": "11", "Name": "Calcitonin",
            "Committee": ["Hay", "Poyner"]}
    right = {"ID": "11", "Committee": ["Brown"],
             "Contributors": ["Smith"]}
    result = benchmark(plus_merge, [[left], [right]])
    assert result == [{
        "ID": "11",
        "Name": "Calcitonin",
        "Committee": ["Hay", "Poyner", "Brown"],
        "Contributors": ["Smith"],
    }]


def test_e6_policies_render_differently(benchmark, db, registry):
    from repro.citation.generator import CitationEngine
    from repro.citation.policy import CitationPolicy

    union_policy = CitationPolicy(name="u", dot="union")
    merge_policy = CitationPolicy(name="m", dot="merge")
    query = 'Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx), F = "11"'

    def render_both():
        u = CitationEngine(db, registry, policy=union_policy).cite(query)
        m = CitationEngine(db, registry, policy=merge_policy).cite(query)
        return u, m

    union_result, merge_result = benchmark(render_both)
    union_body = [r for r in union_result.records
                  if r not in union_result.database_citation]
    merge_body = [r for r in merge_result.records
                  if r not in merge_result.database_citation]
    # union keeps records apart; merge factors them into fewer records.
    assert len(merge_body) <= len(union_body)
