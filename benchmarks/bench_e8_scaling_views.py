"""E8 (scaling): rewriting enumeration vs number of views.

Paper claim (Sections 3.2/3.4/4): "going through all rewritings would be
an impractical implementation" — exhaustive enumeration grows quickly
with the number of views.  This benchmark measures enumeration time and
rewriting counts as the registry grows, and asserts the monotone-growth
shape.
"""

import pytest

from repro.cq.parser import parse_query
from repro.gtopdb.schema import gtopdb_schema
from repro.rewriting.engine import enumerate_rewritings
from repro.views.citation_view import CitationView
from repro.views.registry import ViewRegistry

QUERY = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'

_SHAPES = [
    # (view body, λ) templates cycled to synthesize registries of any size.
    ("lambda F. {n}(F, N, Ty) :- Family(F, N, Ty)", None),
    ("lambda F. {n}(F, Tx) :- FamilyIntro(F, Tx)", None),
    ("{n}(F, N, Ty) :- Family(F, N, Ty)", None),
    ("lambda Ty. {n}(F, N, Ty) :- Family(F, N, Ty)", None),
    ("lambda Ty. {n}(F, N, Ty, Tx) :- Family(F, N, Ty), "
     "FamilyIntro(F, Tx)", None),
    ("lambda N. {n}(F, N, Ty) :- Family(F, N, Ty)", None),
    ("{n}(F, Tx) :- FamilyIntro(F, Tx)", None),
    ("lambda F. {n}(F, N, Ty, Tx) :- Family(F, N, Ty), "
     "FamilyIntro(F, Tx)", None),
]


def build_registry(view_count: int) -> ViewRegistry:
    views = []
    for index in range(view_count):
        template, __ = _SHAPES[index % len(_SHAPES)]
        name = f"W{index}"
        definition = template.format(n=name)
        citation = definition.replace(f"{name}(", f"C{name}(", 1)
        views.append(CitationView.from_strings(definition, citation))
    return ViewRegistry(gtopdb_schema(), views)


@pytest.mark.parametrize("view_count", [4, 8, 16, 32])
def test_e8_rewriting_time_vs_views(benchmark, view_count):
    registry = build_registry(view_count)
    query = parse_query(QUERY)
    rewritings = benchmark(enumerate_rewritings, query, registry)
    assert rewritings
    benchmark.extra_info["views"] = view_count
    benchmark.extra_info["rewritings"] = len(rewritings)


def test_e8_rewriting_count_grows_with_views():
    """Shape claim: more views => at least as many rewritings, growing
    superlinearly over this sweep (the paper's impracticality point)."""
    query = parse_query(QUERY)
    counts = []
    for view_count in (4, 8, 16, 32):
        registry = build_registry(view_count)
        counts.append(len(enumerate_rewritings(query, registry)))
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]
    # Growth factor across an 8x view increase is itself super-constant.
    assert counts[-1] >= 4 * counts[0]


def test_e8_max_rewritings_caps_work(benchmark):
    registry = build_registry(32)
    query = parse_query(QUERY)
    capped = benchmark(
        enumerate_rewritings, query, registry, True, True, 5
    )
    assert len(capped) == 5
