"""E4 (Examples 3.1-3.3): the citation semiring pipeline.

Paper claims:
- Def 3.1: one binding contributes the `·` of view citations
  (FV1("11") · FV2("11") for tuple "Calcitonin");
- Def 3.2: multiple bindings sum with `+` (duplicate family name);
- Def 3.3 / Ex 3.3: tuple ("b") gets
  (CV1("13") +R CV4("gpcr")) · CV2("13"), and citations are
  plan-independent.
Benchmark: full comprehensive cite() including rewriting enumeration,
annotated evaluation, and +R combination.
"""

from repro.citation.generator import CitationEngine
from repro.citation.policy import comprehensive_policy
from repro.citation.polynomial import monomial_from_tokens
from repro.citation.tokens import ViewCitationToken
from repro.gtopdb.sample import paper_database

QUERY = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)'


def vt(name, *params):
    return ViewCitationToken(name, params)


def test_e4_comprehensive_citation(benchmark, comprehensive_engine):
    result = benchmark(comprehensive_engine.cite, QUERY)

    # Example 3.1: joint use within one binding.
    calcitonin = result.tuples[("Calcitonin",)].polynomial
    assert monomial_from_tokens([vt("V1", "11"), vt("V2", "11")]) in set(
        calcitonin.monomials()
    )
    # Example 3.3: +R across rewritings, distributed over ·.
    b = result.tuples[("b",)].polynomial
    monomials = set(b.monomials())
    assert monomial_from_tokens([vt("V1", "13"), vt("V2", "13")]) \
        in monomials
    assert monomial_from_tokens([vt("V4", "gpcr"), vt("V2", "13")]) \
        in monomials


def test_e4_multiple_bindings(benchmark, registry):
    # Example 3.2: a second family named Calcitonin => two monomial
    # families in the + for the shared output tuple.
    db = paper_database(duplicate_calcitonin=True)
    engine = CitationEngine(db, registry, policy=comprehensive_policy())
    result = benchmark(engine.cite, QUERY)
    polynomial = result.tuples[("Calcitonin",)].polynomial
    v1_params = {
        t.parameters
        for m in polynomial.monomials() for t in m.tokens()
        if isinstance(t, ViewCitationToken) and t.view_name == "V1"
    }
    assert v1_params == {("11",), ("19",)}


def test_e4_plan_independence(benchmark, comprehensive_engine):
    variants = [
        'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)',
        'Q(N) :- FamilyIntro(F, Tx), Family(F, N, "gpcr")',
    ]

    def cite_both():
        return [comprehensive_engine.cite(text) for text in variants]

    results = benchmark(cite_both)
    for output in results[0].tuples:
        assert results[0].tuples[output].polynomial == \
            results[1].tuples[output].polynomial
