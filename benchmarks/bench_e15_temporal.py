"""E15 (Section 4, second fixity mechanism): timestamps as λ-parameters.

Paper sketch: "including a 'timestamp' attribute in base relations, with
lambda variables in views corresponding to this attribute.  Then,
citations could vary across timestamps."  Shape claims: the lifted views
carry the tag as an ordinary λ-parameter, the tag constant of a pinned
query is absorbed exactly like Example 2.2's selection, and the same
query cited at two tags credits different curators.
"""

import pytest

from repro.citation.generator import CitationEngine
from repro.citation.policy import comprehensive_policy
from repro.citation.tokens import ViewCitationToken
from repro.cq.parser import parse_query
from repro.fixity.temporal import lift_database, lift_registry, tag_query
from repro.gtopdb.sample import paper_database
from repro.gtopdb.schema import gtopdb_schema
from repro.gtopdb.views import paper_registry
from repro.relational.database import Database
from repro.rewriting.engine import enumerate_rewritings


@pytest.fixture(scope="module")
def temporal_setup():
    old = Database(gtopdb_schema())
    old.insert("Family", "11", "Calcitonin", "gpcr")
    old.insert("Person", "p1", "Hay", "x")
    old.insert("FC", "11", "p1")
    old.insert("MetaData", "Owner", "Tony Harmar")
    old.insert("MetaData", "URL", "u")
    old.insert("MetaData", "Version", "22")
    temporal = lift_database([("2015.1", old), ("2016.2", paper_database())])
    registry = lift_registry(paper_registry())
    return temporal, registry


def test_e15_lifting_cost(benchmark):
    def lift():
        return lift_registry(paper_registry())

    registry = benchmark(lift)
    # Every lifted view gained the timestamp λ-parameter.
    assert all(
        view.parameters[-1].name.startswith("T") for view in registry
    )


def test_e15_tag_absorbed_like_example_22(benchmark, temporal_setup):
    temporal, registry = temporal_setup
    query = tag_query(parse_query("Q(N) :- Family(F, N, Ty)"), "2016.2")
    rewritings = benchmark(enumerate_rewritings, query, registry)
    assert rewritings
    assert all(r.absorbed_parameter_count >= 1 for r in rewritings)


def test_e15_citations_vary_across_tags(benchmark, temporal_setup):
    temporal, registry = temporal_setup
    engine = CitationEngine(temporal, registry,
                            policy=comprehensive_policy(),
                            database_citation=[])
    base_query = parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')

    def cite_both_tags():
        return (
            engine.cite(tag_query(base_query, "2015.1")),
            engine.cite(tag_query(base_query, "2016.2")),
        )

    old_result, new_result = benchmark(cite_both_tags)

    def v1_tokens(result):
        return {
            token
            for tc in result.tuples.values()
            for m in tc.polynomial.monomials()
            for token in m.tokens()
            if isinstance(token, ViewCitationToken)
            and token.view_name == "V1"
        }

    assert ViewCitationToken("V1", ("11", "2015.1")) in v1_tokens(old_result)
    assert ViewCitationToken("V1", ("11", "2016.2")) in v1_tokens(new_result)
    # The 2015 snapshot has one gpcr family; 2016 has four.
    assert len(old_result.tuples) == 1
    assert len(new_result.tuples) == 4
