"""E16 (planner): cost-based join ordering vs the greedy evaluator.

The planner refactor split evaluation into statistics → plan → execute
(:mod:`repro.cq.plan`, :mod:`repro.cq.executor`); the old stats-blind
greedy interpreter survives as
:func:`repro.cq.evaluation.reference_bindings`.  Following the
cross-workload discipline of "CAN We Trust Your Results?" (PAPERS.md),
this benchmark checks the planner on *every* E8/E9 scaling shape — the
planned executor must never be slower in steady state — and demonstrates
the headline win on a skewed multi-join where greedy order starts from
the large relation.
"""

import time

import pytest

from repro.cq.evaluation import (
    enumerate_bindings,
    evaluate_query,
    reference_bindings,
)
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlanner
from repro.gtopdb.generator import generate_database
from repro.gtopdb.sample import paper_database
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema

#: The E8/E9 workload query (also used by bench_e8/bench_e9).
E8_E9_QUERY = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'

E9_SIZES = [100, 400, 1600]

#: Steady-state repetitions: plans amortize across repeated traffic,
#: which is the deployment model (repository front-ends).
REPEATS = 10


def _scaled(size: int, quick: bool, floor: int = 50) -> int:
    """Shrink an instance size under ``--quick`` (assertions kept)."""
    return max(floor, size // 5) if quick else size


def _best_of(callable_, rounds=3):
    best = None
    for __ in range(rounds):
        started = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _drain_planned(query, db, planner):
    def run():
        for __ in range(REPEATS):
            for __binding in enumerate_bindings(query, db, planner=planner):
                pass
    return run


def _drain_greedy(query, db):
    def run():
        for __ in range(REPEATS):
            for __binding in reference_bindings(query, db):
                pass
    return run


def _e8_e9_shapes(quick=False):
    """(label, db, query) for every E8/E9 scaling shape."""
    shapes = [("e8-paper-db", paper_database(), parse_query(E8_E9_QUERY))]
    for size in E9_SIZES:
        size = _scaled(size, quick)
        db = generate_database(families=size, persons=size // 2, seed=29)
        shapes.append((f"e9-{size}", db, parse_query(E8_E9_QUERY)))
    return shapes


def skewed_database(probe_rows: int = 20000) -> Database:
    """A skewed multi-join instance: Probe is huge, Tiny/Mid are small.

    Only a sliver of Probe joins with Tiny, so starting the join from
    Probe (what the stats-blind greedy order does — no atom shares
    variables initially, so it keeps the original atom order) does
    ``probe_rows`` index probes, while the cost-based order starts from
    Tiny and touches only the matching sliver.
    """
    schema = Schema([
        RelationSchema("Probe", ["a", "b"]),
        RelationSchema("Tiny", ["b", "c"]),
        RelationSchema("Mid", ["c", "d"]),
    ])
    db = Database(schema)
    db.insert_batch({
        "Probe": [(i, i % 1000) for i in range(probe_rows)],
        "Tiny": [(b, b * 10) for b in range(5)],
        "Mid": [(c, c + 1) for c in range(0, 50, 10)],
    })
    return db


SKEWED_QUERY = "Q(A, D) :- Probe(A, B), Tiny(B, C), Mid(C, D)"


def selective_equality_database(rows: int = 20000,
                                matching: int = 20) -> Database:
    """The comparison-pushdown shape: a selective equality on a wide scan.

    Only ``matching`` of ``rows`` tuples carry the rare type, so
    ``Ty = "rare"`` as a *post-filter* scans everything while the pushed
    version probes the hash index on the Ty column and touches only the
    matching sliver.
    """
    schema = Schema([RelationSchema("Wide", ["a", "b", "ty"])])
    db = Database(schema)
    db.insert_batch({
        "Wide": [
            (i, i % 100, "rare" if i < matching else "common")
            for i in range(rows)
        ],
    })
    return db


SELECTIVE_QUERY = 'Q(A, B) :- Wide(A, B, Ty), Ty = "rare"'


# ---------------------------------------------------------------------------
# Timing (pytest-benchmark)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", E9_SIZES)
def test_e16_planned_executor_time_vs_data(benchmark, size, quick):
    size = _scaled(size, quick)
    db = generate_database(families=size, persons=size // 2, seed=29)
    query = parse_query(E8_E9_QUERY)
    planner = QueryPlanner(db)
    result = benchmark(
        lambda: sum(1 for __ in enumerate_bindings(query, db,
                                                   planner=planner))
    )
    assert result > 0
    benchmark.extra_info["families"] = size


def test_e16_skewed_multijoin_planned(benchmark, quick):
    db = skewed_database(_scaled(20000, quick, floor=4000))
    query = parse_query(SKEWED_QUERY)
    planner = QueryPlanner(db)
    bindings = benchmark(
        lambda: sum(1 for __ in enumerate_bindings(query, db,
                                                   planner=planner))
    )
    benchmark.extra_info["bindings"] = bindings


# ---------------------------------------------------------------------------
# Shape claims
# ---------------------------------------------------------------------------


def test_e16_planned_no_slower_on_every_e8_e9_shape(quick):
    """Steady-state planned execution is never slower than greedy on the
    E8/E9 scaling shapes (10% tolerance for timer noise)."""
    for label, db, query in _e8_e9_shapes(quick):
        planner = QueryPlanner(db)
        planned = _best_of(_drain_planned(query, db, planner))
        greedy = _best_of(_drain_greedy(query, db))
        assert planned <= greedy * 1.10, (
            f"{label}: planned {planned:.6f}s vs greedy {greedy:.6f}s"
        )


def test_e16_planned_results_match_greedy_on_every_shape(quick):
    for label, db, query in _e8_e9_shapes(quick) + [
        ("skewed", skewed_database(2000), parse_query(SKEWED_QUERY))
    ]:
        planner = QueryPlanner(db)
        planned = sorted(
            tuple(sorted((v.name, val) for v, val in b.items()))
            for b in enumerate_bindings(query, db, planner=planner)
        )
        greedy = sorted(
            tuple(sorted((v.name, val) for v, val in b.items()))
            for b in reference_bindings(query, db)
        )
        assert planned == greedy, label


def test_e16_skewed_multijoin_speedup(quick):
    """The headline claim: ≥1.5× over greedy join order on a multi-join
    with skewed relation sizes (in practice the gap is ~10-100×)."""
    db = skewed_database(_scaled(20000, quick, floor=4000))
    query = parse_query(SKEWED_QUERY)
    planner = QueryPlanner(db)
    planner.plan(query)  # warm the plan cache: steady-state comparison

    planned = _best_of(_drain_planned(query, db, planner))
    greedy = _best_of(_drain_greedy(query, db))
    speedup = greedy / planned
    assert speedup >= 1.5, (
        f"planned {planned:.6f}s, greedy {greedy:.6f}s, "
        f"speedup {speedup:.2f}x"
    )


def test_e16_plan_cache_amortizes_planning():
    """Replanning the same structure hits the α-equivalence cache."""
    db = skewed_database(2000)
    planner = QueryPlanner(db)
    planner.plan(parse_query(SKEWED_QUERY))
    planner.plan(parse_query("Q(X, W) :- Probe(X, Y), Tiny(Y, Z), Mid(Z, W)"))
    assert planner.hits == 1 and planner.misses == 1


# ---------------------------------------------------------------------------
# Comparison pushdown (selective-equality shape)
# ---------------------------------------------------------------------------


def test_e16_selective_equality_is_pushed_into_access_path():
    """The plan shape behind the speedup: the equality is absorbed by the
    index probe, nothing is left to post-filter."""
    db = selective_equality_database(rows=2000)
    plan = QueryPlanner(db).plan(parse_query(SELECTIVE_QUERY))
    step = plan.steps[0]
    assert 2 in step.lookup_positions
    assert not step.comparisons
    assert plan.pushed
    text = plan.explain()
    assert "pushed predicates:" in text
    assert "index on [2]" in text


def test_e16_selective_equality_pushdown_speedup(benchmark, quick):
    """The pushdown claim: ≥1.5× over scan-and-filter on a selective
    equality (in practice the gap tracks rows/matching, ~100×+)."""
    db = selective_equality_database(rows=_scaled(20000, quick, floor=4000))
    query = parse_query(SELECTIVE_QUERY)
    planner = QueryPlanner(db)
    planner.plan(query)  # warm the plan cache: steady-state comparison

    bindings = benchmark(
        lambda: sum(1 for __ in enumerate_bindings(query, db,
                                                   planner=planner))
    )
    assert bindings == 20

    planned = _best_of(_drain_planned(query, db, planner))
    greedy = _best_of(_drain_greedy(query, db))
    speedup = greedy / planned
    assert speedup >= 1.5, (
        f"planned {planned:.6f}s, greedy {greedy:.6f}s, "
        f"speedup {speedup:.2f}x"
    )


# ---------------------------------------------------------------------------
# Range pushdown (selective-range shape, ordered access paths)
# ---------------------------------------------------------------------------


#: Rows matched by the selective-range shape (the interval's width).
RANGE_MATCHING = 20


def selective_range_database(rows: int = 20000) -> Database:
    """The range-pushdown shape: a selective inequality on a wide scan.

    The K column is unique and uniform, so ``K < RANGE_MATCHING`` as a
    *post-filter* scans all ``rows`` tuples while the pushed version
    bisects the sorted index on K and touches only the matching sliver.
    """
    schema = Schema([RelationSchema("Wide", ["a", "b", "k"])])
    db = Database(schema)
    db.insert_batch({
        "Wide": [(i, i % 100, i) for i in range(rows)],
    })
    return db


SELECTIVE_RANGE_QUERY = f"Q(A, B) :- Wide(A, B, K), K < {RANGE_MATCHING}"


def test_e16_selective_range_is_pushed_into_ordered_path():
    """The plan shape behind the speedup: the inequality becomes an
    ordered (sorted-index) access path, rendered separately from the
    residual re-check in EXPLAIN."""
    db = selective_range_database(rows=2000)
    plan = QueryPlanner(db).plan(parse_query(SELECTIVE_RANGE_QUERY))
    step = plan.steps[0]
    assert step.range_position == 2
    assert step.range_interval.hi == RANGE_MATCHING
    assert step.range_interval.hi_open
    assert plan.pushed_ranges
    text = plan.explain()
    assert "pushed predicates:" in text
    assert "ordered index on [2]" in text


def test_e16_selective_range_pushdown_speedup(benchmark, quick):
    """The range-pushdown claim: ≥1.5× over scan-and-filter on a
    selective inequality (in practice the gap tracks rows/matching,
    ~100×+: bisect + sliver vs full scan)."""
    db = selective_range_database(rows=_scaled(20000, quick, floor=4000))
    query = parse_query(SELECTIVE_RANGE_QUERY)
    planner = QueryPlanner(db)
    planner.plan(query)  # warm the plan cache: steady-state comparison

    bindings = benchmark(
        lambda: sum(1 for __ in enumerate_bindings(query, db,
                                                   planner=planner))
    )
    assert bindings == RANGE_MATCHING

    planned = _best_of(_drain_planned(query, db, planner))
    greedy = _best_of(_drain_greedy(query, db))
    speedup = greedy / planned
    assert speedup >= 1.5, (
        f"planned {planned:.6f}s, greedy {greedy:.6f}s, "
        f"speedup {speedup:.2f}x"
    )


# ---------------------------------------------------------------------------
# Composite pushdown (equality + range served by one probe)
# ---------------------------------------------------------------------------


#: Rows matched by the composite shape (half the range interval's width).
COMPOSITE_MATCHING = 20


def composite_database(rows: int = 20000) -> Database:
    """The composite-pushdown shape: equality + range, each unselective
    alone, highly selective together.

    Half the rows carry the hot type and K is unique/uniform, so a hash
    probe on ``Ty = "hot"`` alone still hands ``rows/2`` tuples to the
    residual ``K < 2 * COMPOSITE_MATCHING`` filter, while the composite
    probe bisects inside the hot bucket and touches only the
    ``COMPOSITE_MATCHING`` matching tuples.
    """
    schema = Schema([RelationSchema("Wide", ["a", "ty", "k"])])
    db = Database(schema)
    db.insert_batch({
        "Wide": [
            (i, "hot" if i % 2 == 0 else "cold", i) for i in range(rows)
        ],
    })
    return db


COMPOSITE_QUERY = (
    f'Q(A) :- Wide(A, Ty, K), Ty = "hot", K < {2 * COMPOSITE_MATCHING}'
)


def _single_index_plan(plan):
    """The same plan with the range narrowing stripped: the hash probe
    plus residual filtering that single-index pushdown (PR 3) executed."""
    import dataclasses

    steps = tuple(
        dataclasses.replace(step, range_position=None, range_interval=None)
        for step in plan.steps
    )
    return dataclasses.replace(plan, steps=steps)


def test_e16_composite_shape_is_one_probe():
    """The plan shape behind the speedup: equality and range land on one
    composite access path, rendered once in EXPLAIN."""
    db = composite_database(rows=2000)
    plan = QueryPlanner(db).plan(parse_query(COMPOSITE_QUERY))
    step = plan.steps[0]
    assert step.path_kind == "composite"
    assert step.lookup_positions == (1,)
    assert step.range_position == 2
    text = plan.explain()
    assert "pushed predicates:" in text
    assert "composite index on [1]" in text
    # One access path serves both predicates — EXPLAIN never implies two
    # separate probes for one step.
    assert len([
        line for line in text.splitlines()
        if line.strip().startswith("step ")
    ]) == 1


def test_e16_composite_pushdown_speedup_over_single_index(benchmark, quick):
    """The composite claim: ≥1.5× over single-index pushdown (hash probe
    + residual range filter) on the equality+range shape (in practice
    the gap tracks bucket/matching, ~100×+: in-bucket bisect vs
    filtering the whole hot bucket)."""
    from repro.cq.executor import execute_plan

    db = composite_database(rows=_scaled(20000, quick, floor=4000))
    query = parse_query(COMPOSITE_QUERY)
    planner = QueryPlanner(db)
    composite_plan = planner.plan(query)
    single_plan = _single_index_plan(composite_plan)
    assert composite_plan.steps[0].path_kind == "composite"
    assert single_plan.steps[0].path_kind == "hash"

    def drain(plan):
        def run():
            for __ in range(REPEATS):
                for __binding in execute_plan(plan, db):
                    pass
        return run

    drain(composite_plan)()  # warm the composite index
    drain(single_plan)()  # warm the hash index

    bindings = benchmark(
        lambda: sum(1 for __ in execute_plan(composite_plan, db))
    )
    assert bindings == COMPOSITE_MATCHING
    assert bindings == sum(1 for __ in execute_plan(single_plan, db))

    composite = _best_of(drain(composite_plan))
    single = _best_of(drain(single_plan))
    speedup = single / composite
    assert speedup >= 1.5, (
        f"composite {composite:.6f}s, single-index {single:.6f}s, "
        f"speedup {speedup:.2f}x"
    )


def test_e16_empty_interval_short_circuits_without_touching_data(quick):
    """A contradictory range pair plans to a provably empty result: no
    probes, no bindings, at any data size."""
    db = selective_range_database(rows=_scaled(20000, quick, floor=4000))
    query = parse_query("Q(A, B) :- Wide(A, B, K), K < 10, K > 90")
    planner = QueryPlanner(db)
    plan = planner.plan(query)
    assert plan.empty
    assert list(enumerate_bindings(query, db, planner=planner)) == []


# ---------------------------------------------------------------------------
# Cross-query sub-plan sharing (batch-overlap shape)
# ---------------------------------------------------------------------------


#: Queries in the overlapping batch (each with its own suffix relation).
OVERLAP_SUFFIXES = 6


def overlap_database(hop1_rows: int = 300, junk: int = 5000) -> Database:
    """The batch-overlap shape: an expensive 3-step join prefix shared by
    every query of a batch, with per-query suffix probes.

    ``Hop1 ⋈ Hop2`` expands (each of 10 hub values fans out 30 ways,
    ~30× the Hop1 rows), ``Hop3`` then contracts to a 10% sliver — so
    the prefix does far more work than its output size, which is exactly
    when evaluating it once per *batch* instead of once per *query*
    pays.  The suffix relations (and Hop3) carry junk rows so the greedy
    planner never schedules them ahead of the prefix.
    """
    suffixes = [f"Suf{i}" for i in range(OVERLAP_SUFFIXES)]
    schema = Schema(
        [
            RelationSchema("Hop1", ["x", "y"]),
            RelationSchema("Hop2", ["y", "z"]),
            RelationSchema("Hop3", ["z", "w"]),
        ]
        + [RelationSchema(name, ["w", "t"]) for name in suffixes]
    )
    db = Database(schema)
    batches = {
        "Hop1": [(x, x % 10) for x in range(hop1_rows)],
        "Hop2": [(y, y * 30 + k) for y in range(10) for k in range(30)],
        "Hop3": [(z, z + 1000) for z in range(0, 300, 10)]
        + [(-z - 1, -z) for z in range(junk)],
    }
    for index, name in enumerate(suffixes):
        batches[name] = [
            (w + 1000, w + index) for w in range(0, 300, 30)
        ] + [(-w - 1, -w) for w in range(junk // 5)]
    db.insert_batch(batches)
    return db


def _overlap_queries() -> list[str]:
    return [
        f"Q(X, T) :- Hop1(X, Y), Hop2(Y, Z), Hop3(Z, W), Suf{i}(W, T)"
        for i in range(OVERLAP_SUFFIXES)
    ]


def test_e16_batch_overlap_plans_share_their_prefix():
    """The plan shape behind the speedup: every query of the batch plans
    to the same 3-step prefix (prefix keys equal), differing only in the
    suffix probe, and EXPLAIN reports the reuse."""
    from repro.citation.generator import CitationEngine
    from repro.cq.plan import prefix_keys
    from repro.cq.subplan import explain_with_memo
    from repro.views.registry import ViewRegistry

    db = overlap_database(hop1_rows=100, junk=500)
    registry = ViewRegistry(db.schema)
    engine = CitationEngine(db, registry)
    queries = _overlap_queries()
    engine.cite_batch(queries)
    plans = [engine.planner.plan(parse_query(q)) for q in queries]
    key_sets = [prefix_keys(plan)[0] for plan in plans]
    for keys in key_sets[1:]:
        assert keys[:3] == key_sets[0][:3]  # shared 3-step prefix
        assert keys[3] != key_sets[0][3]  # per-query suffix
    assert engine.subplan_memo.hits > 0
    text = explain_with_memo(plans[0], engine.subplan_memo, db)
    assert "shared prefix: steps 1-3 reused from memo" in text


def test_e16_batch_overlap_sharing_speedup(benchmark, quick):
    """The sub-plan sharing claim: a batch of α-overlapping queries runs
    ≥1.5× faster when each shared join prefix is evaluated once (in
    practice ~2.5× on this shape: the prefix is ~10× the suffix work)."""
    from repro.citation.generator import CitationEngine
    from repro.views.registry import ViewRegistry

    db = overlap_database(
        hop1_rows=_scaled(300, quick, floor=100),
        junk=_scaled(5000, quick, floor=1000),
    )
    registry = ViewRegistry(db.schema)
    queries = _overlap_queries()

    def engine_for(shared):
        engine = CitationEngine(db, registry, share_subplans=shared)
        engine.cite_batch(queries)  # warm every cache (steady state)
        return engine

    shared_engine = engine_for(True)
    unshared_engine = engine_for(False)
    assert shared_engine.subplan_memo.hits > 0
    assert unshared_engine.subplan_memo.hits == 0

    # Sharing never changes results: same tuples, same polynomials.
    for left, right in zip(
        shared_engine.cite_batch(queries), unshared_engine.cite_batch(queries)
    ):
        assert left.citation() == right.citation()

    def drain(engine):
        def run():
            engine.cite_batch(queries)
        return run

    benchmark(drain(shared_engine))
    benchmark.extra_info["subplan_hits"] = shared_engine.subplan_memo.hits
    benchmark.extra_info["subplan_misses"] = (
        shared_engine.subplan_memo.misses
    )

    shared = _best_of(drain(shared_engine))
    unshared = _best_of(drain(unshared_engine))
    speedup = unshared / shared
    assert speedup >= 1.5, (
        f"shared {shared:.6f}s, unshared {unshared:.6f}s, "
        f"speedup {speedup:.2f}x"
    )


def test_e16_batch_overlap_subplan_hits_in_workload_report(quick):
    """run_workload surfaces the memo's effectiveness: subplan_hits > 0
    on the overlapping batch, and describe() renders the counters."""
    from repro.citation.generator import CitationEngine
    from repro.views.registry import ViewRegistry
    from repro.workload.runner import run_workload

    db = overlap_database(hop1_rows=100, junk=500)
    engine = CitationEngine(db, ViewRegistry(db.schema))
    report = run_workload(engine, _overlap_queries())
    assert report.subplan_hits > 0
    assert 0.0 < report.subplan_hit_rate <= 1.0
    assert "subplan memo" in report.describe()


# ---------------------------------------------------------------------------
# Planned UCQ evaluation (union-overlap shape)
# ---------------------------------------------------------------------------


def _overlap_union():
    """The batch-overlap queries restated as one union: six disjuncts
    sharing the expensive 3-hop prefix, each with its own suffix probe
    (the same contraction recipe as the batch shape above)."""
    from repro.cq.ucq import UnionQuery

    return UnionQuery([parse_query(text) for text in _overlap_queries()])


def _seed_union_reference(union, db):
    """The seed-era UCQ path: one stand-alone ``evaluate_query`` per
    disjunct (no shared planner, no memo), first-derivation dedup."""
    seen = {}
    for disjunct in union.disjuncts:
        for row in evaluate_query(disjunct, db):
            seen.setdefault(row)
    return list(seen)


def test_e16_ucq_overlap_disjuncts_share_their_prefix():
    """The plan shape behind the speedup: every disjunct plans through
    the shared planner, the memo reserves the common 3-hop prefix, and
    the union's EXPLAIN reports the reuse per disjunct."""
    from repro.cq.subplan import SubplanMemo

    db = overlap_database(hop1_rows=100, junk=500)
    union = _overlap_union()
    planner = QueryPlanner(db)
    memo = SubplanMemo()
    union.evaluate(db, planner, memo)
    assert planner.misses == len(union)  # every disjunct planned once
    assert memo.hits >= len(union) - 1  # later disjuncts seed from memo
    text = union.explain(db, planner, memo)
    assert f"disjunct {len(union)}/{len(union)}" in text
    assert "shared prefix: steps 1-3 reused from memo" in text


def test_e16_ucq_overlap_planned_union_speedup(benchmark, quick):
    """The UCQ claim: a union of 6 disjuncts sharing a 3-hop join
    prefix runs ≥1.5× faster planned+memoized — the prefix materializes
    once per union — than the seed-era per-disjunct evaluation (in
    practice ~2.5× on this shape), with identical rows in identical
    order."""
    from repro.cq.subplan import SubplanMemo

    db = overlap_database(
        hop1_rows=_scaled(300, quick, floor=100),
        junk=_scaled(5000, quick, floor=1000),
    )
    union = _overlap_union()
    planner = QueryPlanner(db)
    memo = SubplanMemo()

    # Warm every cache (steady state), and pin the semantics: planned
    # union evaluation is byte-identical to the seed-era path.
    warm = union.evaluate(db, planner, memo)
    assert warm == _seed_union_reference(union, db)
    assert memo.hits > 0

    rows = benchmark(lambda: len(union.evaluate(db, planner, memo)))
    assert rows == len(warm)
    benchmark.extra_info["subplan_hits"] = memo.hits
    benchmark.extra_info["disjuncts"] = len(union)

    def drain_planned():
        union.evaluate(db, planner, memo)

    def drain_seed():
        _seed_union_reference(union, db)

    planned = _best_of(drain_planned)
    seed = _best_of(drain_seed)
    speedup = seed / planned
    assert speedup >= 1.5, (
        f"planned {planned:.6f}s, seed-era {seed:.6f}s, "
        f"speedup {speedup:.2f}x"
    )


# ---------------------------------------------------------------------------
# Parallel batch execution
# ---------------------------------------------------------------------------


def _cite_batch_workload(quick=False):
    """A batch big enough that shard workers actually engage."""
    from repro.gtopdb.views import paper_registry

    size = _scaled(600, quick)
    db = generate_database(families=size, persons=size // 2, seed=29)
    registry = paper_registry(db.schema)
    queries = [
        E8_E9_QUERY,
        "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
    ] * 3
    return db, registry, queries


def test_e16_parallel_cite_batch_never_slower(quick):
    """Sharded batch citation must not lose to serial.  On GIL
    interpreters threads cannot multiply throughput, so the claim is
    that the shard-and-merge driver's overhead is negligible (on
    free-threaded builds the same knob scales).  Best-of-5 with a 25%
    noise budget: wall-clock ratios on shared CI runners jitter well
    beyond the driver's actual overhead, and a flaky assertion here
    would be worse than a looser bound."""
    from repro.citation.generator import CitationEngine

    db, registry, queries = _cite_batch_workload(quick)

    def once(parallelism):
        engine = CitationEngine(db, registry)
        def run():
            engine.cite_batch(queries, parallelism=parallelism)
        return run

    serial = _best_of(once(1), rounds=5)
    parallel = _best_of(once(4), rounds=5)
    assert parallel <= serial * 1.25, (
        f"parallel {parallel:.6f}s vs serial {serial:.6f}s"
    )


def test_e16_parallel_cite_batch_matches_serial(quick):
    from repro.citation.generator import CitationEngine

    db, registry, queries = _cite_batch_workload(quick)
    serial = CitationEngine(db, registry).cite_batch(queries[:3])
    parallel = CitationEngine(db, registry).cite_batch(
        queries[:3], parallelism=4
    )
    for left, right in zip(serial, parallel):
        assert left.citation() == right.citation()


# ---------------------------------------------------------------------------
# Hash-partitioned storage (sharded shape, projected process payloads)
# ---------------------------------------------------------------------------


#: Shards and process workers for the sharded shape (kept equal so the
#: projected-vs-world comparison pits identical worker fleets against
#: each other and measures only what each worker is handed).
SHARDED_SHARDS = 4


def sharded_storage_database(rows: int = 16000,
                             shards: int = SHARDED_SHARDS) -> Database:
    """The sharded-storage shape: a large base relation under a
    selective multi-join, plus a fat unreferenced relation.

    ``Base`` is large and every row participates in the first-step scan;
    ``Dim``/``Sel`` carry long tails of *distinct* junk join values so
    their NDV tracks their cardinality — a probe into either is
    estimated at ~1 row, which makes scanning ``Base`` first the
    provably cheapest order — while only the hot sliver survives both
    joins.  ``Junk`` is never referenced by the query: whole-database
    pickling ships it (and every index/statistics structure) to all
    workers anyway, the plan-driven projection ships neither.
    """
    schema = Schema([
        RelationSchema("Base", ["a", "b", "k"]),
        RelationSchema("Dim", ["b", "c"]),
        RelationSchema("Sel", ["c", "t"]),
        RelationSchema("Junk", ["x", "y", "z"]),
    ])
    db = Database(schema, shards=shards)
    hot = max(1, rows // 200)
    spread = max(hot * 10, rows // 20)
    tail = rows + rows // 4
    db.insert_batch({
        "Base": [(i, i % spread, i * 7) for i in range(rows)],
        "Dim": [(b, b) for b in range(hot)]
        + [(10 * spread + j, 10 * spread + j) for j in range(tail)],
        "Sel": [(c, c + 1) for c in range(hot)]
        + [(20 * spread + j, j) for j in range(tail)],
        "Junk": [(i, i * 3, f"junk-{i}") for i in range(rows * 2)],
    })
    return db


SHARDED_QUERY = "Q(A, T) :- Base(A, B, K), Dim(B, C), Sel(C, T)"


def test_e16_sharded_shape_scans_the_base_relation_first():
    """The plan shape behind the fan-out: the first step is a full scan
    of the large sharded Base relation, which is exactly what
    shard-parallel seeding accelerates."""
    from repro.cq.parallel import _storage_seed_step

    db = sharded_storage_database(rows=2000)
    plan = QueryPlanner(db).plan(parse_query(SHARDED_QUERY))
    step = plan.steps[0]
    assert step.atom.relation == "Base"
    assert not step.lookup_positions and step.range_position is None
    assert _storage_seed_step(plan, db, 1) is not None


def test_e16_sharded_projected_shipping_10x_fewer_bytes(benchmark, quick):
    """The shipping claim: process workers handed only their shard's
    slice of only the plan-referenced relations receive ≥10× fewer
    pickled bytes than whole-database pickling (in practice ~20× on
    this shape), with identical output."""
    from repro.cq.executor import execute_plan
    from repro.cq.parallel import SHIPPING, execute_plan_parallel
    from repro.cq.plan import plan_query

    db = sharded_storage_database(_scaled(16000, quick, floor=4000))
    plan = plan_query(parse_query(SHARDED_QUERY), db)
    serial = list(execute_plan(plan, db))

    def projected():
        return list(execute_plan_parallel(
            plan, db, parallelism=SHARDED_SHARDS, use_processes=True,
            min_partition=1,
        ))

    assert benchmark(projected) == serial
    # benchmark() re-runs the callable, so measure one clean run.
    SHIPPING.reset()
    projected()
    projected_bytes = SHIPPING.shipped_bytes

    SHIPPING.reset()
    world = list(execute_plan_parallel(
        plan, db, parallelism=SHARDED_SHARDS, use_processes=True,
        min_partition=1, shipping="world",
    ))
    world_bytes = SHIPPING.shipped_bytes
    SHIPPING.reset()
    assert world == serial

    benchmark.extra_info["shards"] = db.shards
    benchmark.extra_info["shipped_bytes"] = projected_bytes
    benchmark.extra_info["world_bytes"] = world_bytes
    assert projected_bytes * 10 <= world_bytes, (
        f"projected {projected_bytes:,}B vs world {world_bytes:,}B"
    )


def test_e16_sharded_projected_shipping_speedup(quick):
    """The latency claim: projected shard payloads beat whole-database
    pickling ≥1.5× end to end on the same worker fleet (in practice
    ~3×: the world mode serializes the full database once per worker
    before any of them can start)."""
    from repro.cq.executor import execute_plan
    from repro.cq.parallel import execute_plan_parallel
    from repro.cq.plan import plan_query

    db = sharded_storage_database(_scaled(16000, quick, floor=4000))
    plan = plan_query(parse_query(SHARDED_QUERY), db)
    serial = list(execute_plan(plan, db))

    def once(shipping):
        def run():
            result = list(execute_plan_parallel(
                plan, db, parallelism=SHARDED_SHARDS, use_processes=True,
                min_partition=1, shipping=shipping,
            ))
            assert result == serial
        return run

    projected = _best_of(once("plan"))
    world = _best_of(once("world"))
    speedup = world / projected
    assert speedup >= 1.5, (
        f"projected {projected:.6f}s, world {world:.6f}s, "
        f"speedup {speedup:.2f}x"
    )
