"""Legacy setup shim: the environment has setuptools but no `wheel`, so
PEP 517 editable installs fail with `invalid command 'bdist_wheel'`.
`pip install -e . --no-build-isolation --no-use-pep517` uses this file."""

from setuptools import setup

setup()
