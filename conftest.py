"""Repository-level pytest configuration.

Registers the ``--quick`` flag used by the benchmark suite (it must be
defined in a conftest that pytest loads at startup, which for runs from
the repository root is this one): benchmarks keep every shape assertion
— pushdown plan shapes, ≥1.5× speedup claims, parallel-never-slower —
but run on reduced instance sizes, so CI can gate on them without paying
full benchmark time.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks on reduced sizes (assertions kept)",
    )
    parser.addoption(
        "--verify-plans",
        action="store_true",
        default=False,
        help=(
            "sanitizer mode: run the plan verifier "
            "(repro.analysis.verifier) on every plan the suite produces"
        ),
    )
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help=(
            "sanitizer mode: enable the runtime concurrency sanitizer "
            "(repro.analysis.sanitizer) — ownership/affinity checks, "
            "cache-serve re-validation, ordinal-merge monotonicity, "
            "event-loop blocking detection — for the whole run"
        ),
    )


def pytest_configure(config):
    # The switch must flip before any module builds a plan; the same
    # effect is available without pytest via REPRO_VERIFY_PLANS=always.
    if config.getoption("--verify-plans"):
        from repro.cq.plan import set_plan_verification

        set_plan_verification("always")
    # Same discipline for the runtime concurrency sanitizer; the same
    # effect is available without pytest via REPRO_SANITIZE=always.
    if config.getoption("--sanitize"):
        from repro.analysis.sanitizer import set_sanitize

        set_sanitize("always")
