"""A small relational-algebra evaluator.

The conjunctive-query layer evaluates queries directly (with its own join
machinery), but the algebra is useful on its own: examples and tests use it
to cross-check CQ evaluation, and the page-view baseline expresses its
canned queries in algebra form.

Expressions are trees of :class:`AlgebraExpr` nodes evaluated bottom-up
against a :class:`~repro.relational.database.Database`.  Results are lists
of positional tuples with a companion column-name list (bag semantics with a
``distinct`` flag on ``Project``/``Union``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.expressions import Condition


@dataclass
class Result:
    """Evaluation result: column names plus rows of values."""

    columns: list[str]
    rows: list[tuple[Any, ...]]

    def distinct(self) -> "Result":
        seen: dict[tuple[Any, ...], None] = dict.fromkeys(self.rows)
        return Result(self.columns, list(seen))


class AlgebraExpr:
    """Abstract relational-algebra expression."""

    def columns(self, db: Database) -> list[str]:
        raise NotImplementedError

    def evaluate(self, db: Database) -> Result:
        raise NotImplementedError


@dataclass
class Scan(AlgebraExpr):
    """Scan a base relation."""

    relation: str

    def columns(self, db: Database) -> list[str]:
        return list(db.schema.relation(self.relation).attribute_names)

    def evaluate(self, db: Database) -> Result:
        rows = [row.values for row in db.relation(self.relation)]
        return Result(self.columns(db), rows)


@dataclass
class Select(AlgebraExpr):
    """Filter rows by a positional condition."""

    child: AlgebraExpr
    condition: Condition

    def columns(self, db: Database) -> list[str]:
        return self.child.columns(db)

    def evaluate(self, db: Database) -> Result:
        child = self.child.evaluate(db)
        rows = [row for row in child.rows if self.condition.evaluate(row)]
        return Result(child.columns, rows)


@dataclass
class Project(AlgebraExpr):
    """Project to a subset of columns (by name), optionally deduplicating."""

    child: AlgebraExpr
    names: list[str]
    deduplicate: bool = True

    def columns(self, db: Database) -> list[str]:
        return list(self.names)

    def evaluate(self, db: Database) -> Result:
        child = self.child.evaluate(db)
        try:
            positions = [child.columns.index(name) for name in self.names]
        except ValueError as exc:
            raise SchemaError(f"projection over unknown column: {exc}") from None
        rows = [tuple(row[i] for i in positions) for row in child.rows]
        result = Result(list(self.names), rows)
        return result.distinct() if self.deduplicate else result


@dataclass
class Rename(AlgebraExpr):
    """Rename columns positionally."""

    child: AlgebraExpr
    names: list[str]

    def columns(self, db: Database) -> list[str]:
        return list(self.names)

    def evaluate(self, db: Database) -> Result:
        child = self.child.evaluate(db)
        if len(self.names) != len(child.columns):
            raise SchemaError(
                f"rename expects {len(child.columns)} names, got {len(self.names)}"
            )
        return Result(list(self.names), child.rows)


@dataclass
class Join(AlgebraExpr):
    """Natural join on shared column names (hash join)."""

    left: AlgebraExpr
    right: AlgebraExpr

    def columns(self, db: Database) -> list[str]:
        left_cols = self.left.columns(db)
        right_cols = self.right.columns(db)
        return left_cols + [c for c in right_cols if c not in left_cols]

    def evaluate(self, db: Database) -> Result:
        left = self.left.evaluate(db)
        right = self.right.evaluate(db)
        shared = [c for c in left.columns if c in right.columns]
        left_key = [left.columns.index(c) for c in shared]
        right_key = [right.columns.index(c) for c in shared]
        right_extra = [
            i for i, c in enumerate(right.columns) if c not in left.columns
        ]
        index: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
        for row in right.rows:
            index.setdefault(tuple(row[i] for i in right_key), []).append(row)
        rows = []
        for row in left.rows:
            key = tuple(row[i] for i in left_key)
            for match in index.get(key, ()):
                rows.append(row + tuple(match[i] for i in right_extra))
        columns = left.columns + [right.columns[i] for i in right_extra]
        return Result(columns, rows)


@dataclass
class Union(AlgebraExpr):
    """Union of two union-compatible expressions."""

    left: AlgebraExpr
    right: AlgebraExpr
    deduplicate: bool = True

    def columns(self, db: Database) -> list[str]:
        return self.left.columns(db)

    def evaluate(self, db: Database) -> Result:
        left = self.left.evaluate(db)
        right = self.right.evaluate(db)
        if len(left.columns) != len(right.columns):
            raise SchemaError("union of incompatible arities")
        result = Result(left.columns, left.rows + right.rows)
        return result.distinct() if self.deduplicate else result


@dataclass
class Difference(AlgebraExpr):
    """Set difference of two union-compatible expressions."""

    left: AlgebraExpr
    right: AlgebraExpr

    def columns(self, db: Database) -> list[str]:
        return self.left.columns(db)

    def evaluate(self, db: Database) -> Result:
        left = self.left.evaluate(db)
        right = self.right.evaluate(db)
        if len(left.columns) != len(right.columns):
            raise SchemaError("difference of incompatible arities")
        exclude = set(right.rows)
        rows = [row for row in dict.fromkeys(left.rows) if row not in exclude]
        return Result(left.columns, rows)


def evaluate(expr: AlgebraExpr, db: Database) -> Result:
    """Evaluate an algebra expression against a database."""
    return expr.evaluate(db)
