"""In-memory relational database substrate.

The paper's model is defined over a relational database with conjunctive
queries; GtoPdb itself is a production relational database.  This subpackage
is the from-scratch substrate: value domains, relation schemas with primary
and foreign keys, database instances with integrity enforcement, boolean
conditions, and a small relational-algebra evaluator.
"""

from repro.relational.types import (
    AttributeType,
    INT,
    STRING,
    FLOAT,
    BOOL,
    ANY,
    infer_type,
    value_matches,
)
from repro.relational.schema import Attribute, ForeignKey, RelationSchema, Schema
from repro.relational.statistics import RelationStatistics, statistics_of
from repro.relational.tuples import Row
from repro.relational.database import Database, RelationInstance
from repro.relational.expressions import (
    ComparisonOp,
    Condition,
    AndCondition,
    Comparison,
    TrueCondition,
)
from repro.relational.algebra import (
    AlgebraExpr,
    Scan,
    Select,
    Project,
    Join,
    Union,
    Rename,
    Difference,
    evaluate,
)

__all__ = [
    "AttributeType",
    "INT",
    "STRING",
    "FLOAT",
    "BOOL",
    "ANY",
    "infer_type",
    "value_matches",
    "Attribute",
    "ForeignKey",
    "RelationSchema",
    "Schema",
    "Row",
    "Database",
    "RelationInstance",
    "RelationStatistics",
    "statistics_of",
    "ComparisonOp",
    "Condition",
    "AndCondition",
    "Comparison",
    "TrueCondition",
    "AlgebraExpr",
    "Scan",
    "Select",
    "Project",
    "Join",
    "Union",
    "Rename",
    "Difference",
    "evaluate",
]
