"""Relation and database schemas.

A :class:`RelationSchema` declares attribute names, domains, an optional
primary key, and foreign keys; a :class:`Schema` is a named collection of
relation schemas with cross-relation validation.  The GtoPdb schema of the
paper (Example 2.1) is expressed in these terms in
:mod:`repro.gtopdb.schema`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.errors import SchemaError, UnknownRelationError
from repro.relational.types import ANY, AttributeType


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relation."""

    name: str
    domain: AttributeType = ANY

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid attribute name: {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name}:{self.domain}"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key: ``columns`` of this relation reference ``ref_columns``
    of ``ref_relation`` (which must form its primary key)."""

    columns: tuple[str, ...]
    ref_relation: str
    ref_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                "foreign key column count mismatch: "
                f"{self.columns} vs {self.ref_columns}"
            )
        if not self.columns:
            raise SchemaError("foreign key must reference at least one column")

    def __str__(self) -> str:
        cols = ", ".join(self.columns)
        refs = ", ".join(self.ref_columns)
        return f"FK({cols}) -> {self.ref_relation}({refs})"


class RelationSchema:
    """Schema of a single relation.

    Parameters
    ----------
    name:
        Relation name (e.g. ``"Family"``).
    attributes:
        Ordered attributes.  Strings are promoted to untyped attributes.
    key:
        Names of the primary-key attributes (optional).
    foreign_keys:
        Foreign keys whose source columns must exist in this relation.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute | str],
        key: Sequence[str] = (),
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid relation name: {name!r}")
        self.name = name
        self.attributes: tuple[Attribute, ...] = tuple(
            attr if isinstance(attr, Attribute) else Attribute(attr)
            for attr in attributes
        )
        if not self.attributes:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        names = [attr.name for attr in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in relation {name!r}")
        self._positions = {attr.name: i for i, attr in enumerate(self.attributes)}
        self.key: tuple[str, ...] = tuple(key)
        for key_attr in self.key:
            if key_attr not in self._positions:
                raise SchemaError(
                    f"key attribute {key_attr!r} not in relation {name!r}"
                )
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in self._positions:
                    raise SchemaError(
                        f"foreign-key column {col!r} not in relation {name!r}"
                    )

    # -- lookups -------------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    def position(self, attribute: str) -> int:
        """Index of ``attribute`` within the tuple layout."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self._positions

    def key_positions(self) -> tuple[int, ...]:
        """Positions of the primary-key attributes."""
        return tuple(self._positions[attr] for attr in self.key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.key == other.key
            and self.foreign_keys == other.foreign_keys
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.key))

    def __repr__(self) -> str:
        attrs = ", ".join(str(attr) for attr in self.attributes)
        key = f", key={list(self.key)}" if self.key else ""
        return f"RelationSchema({self.name!r}, [{attrs}]{key})"


class Schema:
    """A database schema: a named, ordered collection of relation schemas."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSchema) -> None:
        """Add a relation schema; names must be unique."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name: {relation.name!r}")
        self._relations[relation.name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def validate(self) -> None:
        """Check cross-relation consistency of all foreign keys.

        Each foreign key must point at an existing relation and its
        referenced columns must form that relation's primary key.
        """
        for relation in self:
            for fk in relation.foreign_keys:
                if fk.ref_relation not in self._relations:
                    raise SchemaError(
                        f"{relation.name}: {fk} references unknown relation"
                    )
                target = self._relations[fk.ref_relation]
                if tuple(fk.ref_columns) != target.key:
                    raise SchemaError(
                        f"{relation.name}: {fk} must reference the primary key "
                        f"{target.key} of {target.name}"
                    )

    def __repr__(self) -> str:
        return f"Schema({list(self._relations)})"
