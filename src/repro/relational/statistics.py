"""Per-relation statistics for cost-based query planning.

The planner (:mod:`repro.cq.plan`) estimates how many rows an index probe
will return before choosing a join order.  Those estimates come from
:class:`RelationStatistics`: the relation's cardinality, the number of
distinct values per column, exact per-value frequencies, and *order
statistics* — per-column min/max plus an equi-depth histogram — used to
price range probes (``<``/``<=``/``>``/``>=`` pushed into ordered access
paths).  Frequency statistics are maintained *incrementally* —
:class:`~repro.relational.database.RelationInstance` calls
:meth:`add_row` / :meth:`remove_row` on every mutation — so reading them
is O(1) and planning never scans data.  Order statistics are derived
lazily from the frequency counters (O(NDV log NDV) on first read after a
mutation, cached until the next one), so they too never scan rows.

A monotonically increasing :attr:`version` counter lets plan caches
detect staleness without hashing the data.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

#: Selectivity assumed for a range probe over a column whose values mix
#: incomparable types (no histogram can be built): the classic System-R
#: default for inequality predicates.
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

#: Bucket budget for equi-depth histograms; bounded so histograms stay
#: O(1)-sized regardless of column cardinality.
HISTOGRAM_BUCKETS = 64


@dataclass(frozen=True)
class Interval:
    """A merged ``[lo, hi]`` value interval for one variable/column.

    ``None`` bounds are unbounded (comparisons against the constant
    ``None`` are never absorbed into intervals, so ``None`` is free to
    act as the sentinel); ``lo_open`` / ``hi_open`` distinguish strict
    (``<``/``>``) from inclusive (``<=``/``>=``) endpoints.  Instances
    are immutable and picklable (plans carrying them cross process-pool
    boundaries).
    """

    lo: Any = None
    lo_open: bool = False
    hi: Any = None
    hi_open: bool = False

    def is_empty(self) -> bool | None:
        """True when provably empty, False when not, None when unknown.

        Unknown arises when the bounds are mutually incomparable
        (``TypeError``); the planner then keeps the comparisons residual
        instead of short-circuiting.
        """
        if self.lo is None or self.hi is None:
            return False
        try:
            if self.lo > self.hi:
                return True
            if self.lo == self.hi and (self.lo_open or self.hi_open):
                return True
            return False
        except TypeError:
            return None

    def admits(self, value: Any) -> bool | None:
        """Whether ``value`` can lie inside the interval (None = unknown)."""
        try:
            if self.lo is not None:
                if value < self.lo or (value == self.lo and self.lo_open):
                    return False
            if self.hi is not None:
                if value > self.hi or (value == self.hi and self.hi_open):
                    return False
            return True
        except TypeError:
            return None

    def describe(self) -> str:
        """Mathematical rendering for EXPLAIN output: ``[2, 5)`` etc."""
        left = "(" if (self.lo is None or self.lo_open) else "["
        right = ")" if (self.hi is None or self.hi_open) else "]"
        lo = "-inf" if self.lo is None else repr(self.lo)
        hi = "+inf" if self.hi is None else repr(self.hi)
        return f"{left}{lo}, {hi}{right}"


class EquiDepthHistogram:
    """An equi-depth (equal-height) histogram over one column.

    Buckets hold roughly equal row counts, so skewed columns get fine
    buckets where the data is dense.  Built from the exact per-value
    frequency counter — never from the rows — and only over values that
    form a total order (NaN values are excluded; they satisfy no range
    predicate).
    """

    __slots__ = ("buckets", "rows")

    def __init__(
        self, buckets: list[tuple[Any, Any, int]], rows: int
    ) -> None:
        #: ``(bucket_lo, bucket_hi, row_count)`` triples, ascending.
        self.buckets = buckets
        self.rows = rows

    @classmethod
    def from_frequencies(
        cls, items: Sequence[tuple[Any, int]]
    ) -> "EquiDepthHistogram":
        """Build from ascending ``(value, frequency)`` pairs."""
        total = sum(count for __, count in items)
        depth = max(1, math.ceil(total / HISTOGRAM_BUCKETS))
        buckets: list[tuple[Any, Any, int]] = []
        bucket_lo: Any = None
        in_bucket = 0
        for value, count in items:
            if in_bucket == 0:
                bucket_lo = value
            in_bucket += count
            if in_bucket >= depth:
                buckets.append((bucket_lo, value, in_bucket))
                in_bucket = 0
        if in_bucket:
            buckets.append((bucket_lo, items[-1][0], in_bucket))
        return cls(buckets, total)

    def estimate_rows(self, interval: Interval) -> float:
        """Estimated rows inside ``interval``.

        Buckets wholly inside/outside count fully/not at all; partially
        covered buckets interpolate linearly when the endpoints are
        numeric and assume half coverage otherwise.  Raises ``TypeError``
        when the interval bounds are incomparable with the column values
        (callers fall back to :data:`DEFAULT_RANGE_SELECTIVITY`).
        """
        total = 0.0
        for bucket_lo, bucket_hi, rows in self.buckets:
            total += rows * _bucket_coverage(bucket_lo, bucket_hi, interval)
        return total


def _bucket_coverage(bucket_lo: Any, bucket_hi: Any, interval: Interval) -> float:
    """Fraction of a bucket's rows assumed to fall inside ``interval``."""
    if interval.lo is not None:
        if bucket_hi < interval.lo or (
            bucket_hi == interval.lo and interval.lo_open
        ):
            return 0.0
    if interval.hi is not None:
        if bucket_lo > interval.hi or (
            bucket_lo == interval.hi and interval.hi_open
        ):
            return 0.0
    lo_inside = interval.lo is None or bucket_lo > interval.lo or (
        bucket_lo == interval.lo and not interval.lo_open
    )
    hi_inside = interval.hi is None or bucket_hi < interval.hi or (
        bucket_hi == interval.hi and not interval.hi_open
    )
    if lo_inside and hi_inside:
        return 1.0
    # Partial overlap: interpolate on numeric axes, else assume half.
    try:
        span = bucket_hi - bucket_lo
        if not span:
            return 0.5
        clipped_lo = bucket_lo
        if interval.lo is not None and interval.lo > bucket_lo:
            clipped_lo = interval.lo
        clipped_hi = bucket_hi
        if interval.hi is not None and interval.hi < bucket_hi:
            clipped_hi = interval.hi
        fraction = (clipped_hi - clipped_lo) / span
        return min(1.0, max(0.0, fraction))
    except TypeError:
        return 0.5


class RelationStatistics:
    """Incrementally maintained statistics of one relation instance.

    Attributes
    ----------
    cardinality:
        Number of rows currently stored.
    version:
        Bumped on every mutation; plan caches compare versions to decide
        whether cached cost estimates are still trustworthy.
    """

    __slots__ = (
        "arity",
        "cardinality",
        "version",
        "_column_counts",
        "_order_cache",
        "_order_cache_max",
    )

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.cardinality = 0
        self.version = 0
        self._column_counts: tuple[Counter, ...] = tuple(
            Counter() for __ in range(arity)
        )
        #: position -> (version at build, ordered items | None); the
        #: lazily derived order statistics (min/max/histogram) cache.
        #: ``None`` items record a mixed-type column (not totally
        #: ordered), so the negative result is cached too.
        self._order_cache: dict[
            int, tuple[int, EquiDepthHistogram | None, Any, Any]
        ] = {}
        #: Structural bound on the order cache: keys are column
        #: positions, so it can never exceed the arity.
        self._order_cache_max = arity

    # -- maintenance ----------------------------------------------------------

    def add_row(self, values: Sequence[Any]) -> None:
        self.cardinality += 1
        self.version += 1
        for counter, value in zip(self._column_counts, values):
            counter[value] += 1

    def add_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        """Absorb a batch of rows in one pass per column.

        Semantically ``for values in rows: add_row(values)`` — the
        version advances by ``len(rows)`` so caches built between the
        equivalent single-row calls stay distinguishable — but each
        column counter is updated once with the whole column instead of
        once per row, which is what makes bulk loads (``insert_many``,
        ``Database.copy``) cheap.
        """
        batch = [tuple(values) for values in rows]
        if not batch:
            return
        self.cardinality += len(batch)
        self.version += len(batch)
        for counter, column in zip(self._column_counts, zip(*batch)):
            counter.update(column)

    @classmethod
    def merged(
        cls, parts: Sequence["RelationStatistics"], arity: int
    ) -> "RelationStatistics":
        """Combine per-shard statistics into whole-relation statistics.

        Shards partition the rows, so cardinalities and per-value
        frequencies simply add; the merge therefore equals the
        statistics an unsharded instance would have accumulated (the
        property suite asserts this), which is why sharding never
        changes the planner's estimates.
        """
        merged = cls(arity)
        for part in parts:
            if part.arity != arity:
                raise ValueError(
                    f"cannot merge statistics of arity {part.arity} "
                    f"into arity {arity}"
                )
            merged.cardinality += part.cardinality
            merged.version += part.version
            for counter, other in zip(
                merged._column_counts, part._column_counts
            ):
                counter.update(other)
        return merged

    def matches_partition(
        self, parts: Sequence["RelationStatistics"]
    ) -> bool:
        """Whether ``parts`` still partition these aggregate statistics.

        True when the shard cardinalities sum to the aggregate and every
        per-column frequency adds up, i.e. no shard has lost or
        duplicated a row relative to the whole.  The concurrency
        sanitizer checks this before seeding a parallel fan-out from the
        shards.
        """
        if sum(part.cardinality for part in parts) != self.cardinality:
            return False
        if any(part.arity != self.arity for part in parts):
            return False
        for position, counter in enumerate(self._column_counts):
            combined: Counter = Counter()
            for part in parts:
                combined.update(part._column_counts[position])
            combined += Counter()  # drop zero entries, as remove_row does
            if combined != +counter:
                return False
        return True

    def remove_row(self, values: Sequence[Any]) -> None:
        """Retract one row's contribution.

        Validates before mutating: removing a row that was never counted
        raises :class:`ValueError` and leaves every counter untouched
        (frequencies are clamped at zero, never stored negative).  A
        negative frequency would silently poison every estimate built on
        top — distinct counts, selectivities, histograms.
        """
        if self.cardinality <= 0:
            raise ValueError(
                "cannot remove a row from empty statistics "
                f"(arity {self.arity})"
            )
        for position, (counter, value) in enumerate(
            zip(self._column_counts, values)
        ):
            if counter.get(value, 0) <= 0:
                raise ValueError(
                    f"cannot remove value {value!r} at position {position}: "
                    "it was never recorded (frequency underflow)"
                )
        self.cardinality -= 1
        self.version += 1
        for counter, value in zip(self._column_counts, values):
            remaining = counter[value] - 1
            if remaining:
                counter[value] = remaining
            else:
                del counter[value]

    # -- estimators -----------------------------------------------------------

    def distinct(self, position: int) -> int:
        """Number of distinct values in column ``position``."""
        return len(self._column_counts[position])

    def frequency(self, position: int, value: Any) -> int:
        """Exact number of rows with ``value`` at ``position``.

        Values must be hashable (they are: rows are hashable throughout);
        unseen values report 0.
        """
        try:
            return self._column_counts[position][value]
        except TypeError:  # unhashable probe value: fall back to average
            return max(1, self.cardinality // max(1, self.distinct(position)))

    def equality_selectivity(self, position: int) -> float:
        """Estimated fraction of rows matching ``column = <unknown value>``.

        Assumes a uniform distribution over the distinct values — the
        standard System-R estimate ``1/NDV``.
        """
        distinct = self.distinct(position)
        if distinct == 0:
            return 0.0
        return 1.0 / distinct

    def value_selectivity(self, position: int, value: Any) -> float:
        """Exact fraction of rows matching ``column = value``."""
        if self.cardinality == 0:
            return 0.0
        return self.frequency(position, value) / self.cardinality

    # -- order statistics -----------------------------------------------------

    def _ordered(
        self, position: int
    ) -> tuple[EquiDepthHistogram | None, Any, Any]:
        """(histogram, min, max) for a column, rebuilt lazily per version.

        Mixed-type columns (values not totally ordered) cache
        ``(None, None, None)``; NaN values are excluded (no range
        predicate matches them).
        """
        cached = self._order_cache.get(position)
        if cached is not None and cached[0] == self.version:
            return cached[1], cached[2], cached[3]
        counter = self._column_counts[position]
        try:
            items = sorted(
                (value, count)
                for value, count in counter.items()
                if value == value  # drop NaN
            )
        except TypeError:
            self._order_cache[position] = (self.version, None, None, None)
            return None, None, None
        if not items:
            self._order_cache[position] = (self.version, None, None, None)
            return None, None, None
        histogram = EquiDepthHistogram.from_frequencies(items)
        lo, hi = items[0][0], items[-1][0]
        self._order_cache[position] = (self.version, histogram, lo, hi)
        return histogram, lo, hi

    def min_value(self, position: int) -> Any:
        """Smallest value in the column (None: empty or mixed-type)."""
        return self._ordered(position)[1]

    def max_value(self, position: int) -> Any:
        """Largest value in the column (None: empty or mixed-type)."""
        return self._ordered(position)[2]

    def histogram(self, position: int) -> EquiDepthHistogram | None:
        """The column's equi-depth histogram (None: empty or mixed-type)."""
        return self._ordered(position)[0]

    def range_selectivity(self, position: int, interval: Interval) -> float:
        """Estimated fraction of rows with the column inside ``interval``."""
        if self.cardinality == 0:
            return 0.0
        histogram, lo, hi = self._ordered(position)
        if histogram is None:
            return DEFAULT_RANGE_SELECTIVITY
        # min/max fast path: an interval past either end matches nothing.
        try:
            if interval.lo is not None and (
                hi < interval.lo or (hi == interval.lo and interval.lo_open)
            ):
                return 0.0
            if interval.hi is not None and (
                lo > interval.hi or (lo == interval.hi and interval.hi_open)
            ):
                return 0.0
            rows = histogram.estimate_rows(interval)
        except TypeError:
            # Interval bounds incomparable with the column's values: the
            # probe will degrade to a residual filter; price it like one.
            return DEFAULT_RANGE_SELECTIVITY
        return min(1.0, max(0.0, rows / self.cardinality))

    def estimate_matches(
        self,
        equality_positions: Sequence[int] = (),
        constant_constraints: Sequence[tuple[int, Any]] = (),
        range_constraints: Sequence[tuple[int, Interval]] = (),
    ) -> float:
        """Estimated rows matching an index probe.

        ``equality_positions`` are columns constrained to a value unknown
        at plan time (join variables); ``constant_constraints`` are
        ``(position, value)`` pairs known at plan time;
        ``range_constraints`` are ``(position, interval)`` pairs from
        pushed range comparisons, priced with the equi-depth histogram.
        Selectivities multiply under the usual independence assumption.
        """
        return self.estimate_access_paths(
            equality_positions, constant_constraints, range_constraints
        )[0]

    def estimate_access_paths(
        self,
        equality_positions: Sequence[int] = (),
        constant_constraints: Sequence[tuple[int, Any]] = (),
        range_constraints: Sequence[tuple[int, Interval]] = (),
    ) -> tuple[float, float]:
        """``(matched, probed)`` row estimates for one probe.

        ``matched`` applies every constraint — it is what
        :meth:`estimate_matches` returns and what a *composite* access
        path (hash probe + in-bucket bisect) touches, since the range
        narrowing happens inside the probe.  ``probed`` applies only the
        equality constraints: the rows a single-index hash probe hands
        to residual filtering.  The ``probed - matched`` gap is exactly
        the per-probe work a composite index saves, which is how the
        planner prices a composite probe against single-index probes and
        scans.  Selectivities multiply under the usual independence
        assumption.
        """
        probed = float(self.cardinality)
        for position in equality_positions:
            probed *= self.equality_selectivity(position)
        for position, value in constant_constraints:
            probed *= self.value_selectivity(position, value)
        matched = probed
        for position, interval in range_constraints:
            matched *= self.range_selectivity(position, interval)
        return matched, probed

    def __repr__(self) -> str:
        distinct = ", ".join(
            str(len(counter)) for counter in self._column_counts
        )
        return (
            f"RelationStatistics(cardinality={self.cardinality}, "
            f"distinct=[{distinct}])"
        )


def shard_cardinalities(total: int, shards: int) -> list[int]:
    """Split a cardinality into balanced per-shard shares.

    The parallel executor (:mod:`repro.cq.parallel`) partitions the first
    join step's probe results into contiguous shards; this is the split
    arithmetic it uses, shared here so cost reporting and the partitioner
    agree.  Sizes differ by at most one and sum to ``total``; trailing
    shards may be 0 when ``total < shards`` (the partitioner drops those).
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    base, extra = divmod(max(0, total), shards)
    return [base + 1 if i < extra else base for i in range(shards)]


def statistics_of(rows: Sequence[Sequence[Any]], arity: int) -> RelationStatistics:
    """Build statistics from scratch for an existing row collection.

    Used for virtual relations (materialized view instances), whose rows
    arrive as plain tuples rather than through the database mutation path.
    """
    stats = RelationStatistics(arity)
    for values in rows:
        stats.add_row(values)
    return stats
