"""Per-relation statistics for cost-based query planning.

The planner (:mod:`repro.cq.plan`) estimates how many rows an index probe
will return before choosing a join order.  Those estimates come from
:class:`RelationStatistics`: the relation's cardinality, the number of
distinct values per column, and exact per-value frequencies.  Statistics
are maintained *incrementally* — :class:`~repro.relational.database
.RelationInstance` calls :meth:`add_row` / :meth:`remove_row` on every
mutation — so reading them is O(1) and planning never scans data.

A monotonically increasing :attr:`version` counter lets plan caches
detect staleness without hashing the data.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from typing import Any


class RelationStatistics:
    """Incrementally maintained statistics of one relation instance.

    Attributes
    ----------
    cardinality:
        Number of rows currently stored.
    version:
        Bumped on every mutation; plan caches compare versions to decide
        whether cached cost estimates are still trustworthy.
    """

    __slots__ = ("arity", "cardinality", "version", "_column_counts")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.cardinality = 0
        self.version = 0
        self._column_counts: tuple[Counter, ...] = tuple(
            Counter() for __ in range(arity)
        )

    # -- maintenance ----------------------------------------------------------

    def add_row(self, values: Sequence[Any]) -> None:
        self.cardinality += 1
        self.version += 1
        for counter, value in zip(self._column_counts, values):
            counter[value] += 1

    def remove_row(self, values: Sequence[Any]) -> None:
        self.cardinality -= 1
        self.version += 1
        for counter, value in zip(self._column_counts, values):
            remaining = counter[value] - 1
            if remaining:
                counter[value] = remaining
            else:
                del counter[value]

    # -- estimators -----------------------------------------------------------

    def distinct(self, position: int) -> int:
        """Number of distinct values in column ``position``."""
        return len(self._column_counts[position])

    def frequency(self, position: int, value: Any) -> int:
        """Exact number of rows with ``value`` at ``position``.

        Values must be hashable (they are: rows are hashable throughout);
        unseen values report 0.
        """
        try:
            return self._column_counts[position][value]
        except TypeError:  # unhashable probe value: fall back to average
            return max(1, self.cardinality // max(1, self.distinct(position)))

    def equality_selectivity(self, position: int) -> float:
        """Estimated fraction of rows matching ``column = <unknown value>``.

        Assumes a uniform distribution over the distinct values — the
        standard System-R estimate ``1/NDV``.
        """
        distinct = self.distinct(position)
        if distinct == 0:
            return 0.0
        return 1.0 / distinct

    def value_selectivity(self, position: int, value: Any) -> float:
        """Exact fraction of rows matching ``column = value``."""
        if self.cardinality == 0:
            return 0.0
        return self.frequency(position, value) / self.cardinality

    def estimate_matches(
        self,
        equality_positions: Sequence[int] = (),
        constant_constraints: Sequence[tuple[int, Any]] = (),
    ) -> float:
        """Estimated rows matching an index probe.

        ``equality_positions`` are columns constrained to a value unknown
        at plan time (join variables); ``constant_constraints`` are
        ``(position, value)`` pairs known at plan time.  Selectivities
        multiply under the usual independence assumption.
        """
        estimate = float(self.cardinality)
        for position in equality_positions:
            estimate *= self.equality_selectivity(position)
        for position, value in constant_constraints:
            estimate *= self.value_selectivity(position, value)
        return estimate

    def __repr__(self) -> str:
        distinct = ", ".join(
            str(len(counter)) for counter in self._column_counts
        )
        return (
            f"RelationStatistics(cardinality={self.cardinality}, "
            f"distinct=[{distinct}])"
        )


def shard_cardinalities(total: int, shards: int) -> list[int]:
    """Split a cardinality into balanced per-shard shares.

    The parallel executor (:mod:`repro.cq.parallel`) partitions the first
    join step's probe results into contiguous shards; this is the split
    arithmetic it uses, shared here so cost reporting and the partitioner
    agree.  Sizes differ by at most one and sum to ``total``; trailing
    shards may be 0 when ``total < shards`` (the partitioner drops those).
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    base, extra = divmod(max(0, total), shards)
    return [base + 1 if i < extra else base for i in range(shards)]


def statistics_of(rows: Sequence[Sequence[Any]], arity: int) -> RelationStatistics:
    """Build statistics from scratch for an existing row collection.

    Used for virtual relations (materialized view instances), whose rows
    arrive as plain tuples rather than through the database mutation path.
    """
    stats = RelationStatistics(arity)
    for values in rows:
        stats.add_row(values)
    return stats
