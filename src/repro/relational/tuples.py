"""Tuple (row) representation.

Rows are immutable and hashable: the citation machinery annotates rows,
stores them in sets, and uses them as dictionary keys throughout, so value
semantics are essential.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Any

from repro.errors import ArityError


class Row:
    """An immutable database tuple tagged with its relation name.

    ``Row`` compares and hashes by ``(relation, values)``, so the same value
    combination in different relations is distinct — required for provenance
    tokens and fixity.
    """

    __slots__ = ("relation", "values", "_hash")

    def __init__(self, relation: str, values: Sequence[Any]) -> None:
        self.relation = relation
        self.values: tuple[Any, ...] = tuple(values)
        self._hash = hash((relation, self.values))

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.relation == other.relation and self.values == other.values

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({inner})"

    def project(self, positions: Sequence[int]) -> tuple[Any, ...]:
        """Return the values at the given positions."""
        try:
            return tuple(self.values[i] for i in positions)
        except IndexError:
            raise ArityError(self.relation, len(self.values), max(positions) + 1)
