"""Attribute domains for relation schemas.

The model in the paper is untyped, but a production database substrate needs
value domains so integrity errors surface early.  We keep the domain lattice
minimal: ``INT``, ``FLOAT``, ``STRING``, ``BOOL``, and the top type ``ANY``.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError


class AttributeType(enum.Enum):
    """Domain of an attribute."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    ANY = "any"

    def __str__(self) -> str:
        return self.value


INT = AttributeType.INT
FLOAT = AttributeType.FLOAT
STRING = AttributeType.STRING
BOOL = AttributeType.BOOL
ANY = AttributeType.ANY

# Values accepted by each domain.  bool is a subclass of int in Python, so
# the INT check must exclude bool explicitly.
_CHECKERS = {
    AttributeType.INT: lambda v: isinstance(v, int) and not isinstance(v, bool),
    AttributeType.FLOAT: lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    AttributeType.STRING: lambda v: isinstance(v, str),
    AttributeType.BOOL: lambda v: isinstance(v, bool),
    AttributeType.ANY: lambda v: True,
}


def value_matches(value: Any, domain: AttributeType) -> bool:
    """Return True if ``value`` belongs to ``domain``."""
    return _CHECKERS[domain](value)


def check_value(value: Any, domain: AttributeType, context: str = "") -> None:
    """Raise :class:`TypeMismatchError` unless ``value`` belongs to ``domain``."""
    if not value_matches(value, domain):
        where = f" in {context}" if context else ""
        raise TypeMismatchError(
            f"value {value!r} does not belong to domain {domain}{where}"
        )


def infer_type(value: Any) -> AttributeType:
    """Infer the tightest domain for a Python value."""
    if isinstance(value, bool):
        return AttributeType.BOOL
    if isinstance(value, int):
        return AttributeType.INT
    if isinstance(value, float):
        return AttributeType.FLOAT
    if isinstance(value, str):
        return AttributeType.STRING
    return AttributeType.ANY
