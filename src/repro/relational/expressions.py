"""Boolean conditions over attribute positions.

Used by the relational-algebra selection operator; the conjunctive-query
layer has its own (variable-based) comparison atoms in
:mod:`repro.cq.atoms`, which compile down to these positional conditions
during evaluation.
"""

from __future__ import annotations

import enum
import operator
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import QueryError


class ComparisonOp(enum.Enum):
    """The comparison operators supported in queries and conditions."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def function(self) -> Callable[[Any, Any], bool]:
        return _OP_FUNCTIONS[self]

    def flip(self) -> "ComparisonOp":
        """Operator with operands swapped: ``a < b`` iff ``b > a``."""
        return _FLIPPED[self]

    def negate(self) -> "ComparisonOp":
        """Logical negation: ``not (a < b)`` iff ``a >= b``."""
        return _NEGATED[self]

    @classmethod
    def parse(cls, text: str) -> "ComparisonOp":
        try:
            return _SYMBOLS[text]
        except KeyError:
            raise QueryError(f"unknown comparison operator: {text!r}") from None

    def __str__(self) -> str:
        return self.value


_OP_FUNCTIONS = {
    ComparisonOp.EQ: operator.eq,
    ComparisonOp.NE: operator.ne,
    ComparisonOp.LT: operator.lt,
    ComparisonOp.LE: operator.le,
    ComparisonOp.GT: operator.gt,
    ComparisonOp.GE: operator.ge,
}

_FLIPPED = {
    ComparisonOp.EQ: ComparisonOp.EQ,
    ComparisonOp.NE: ComparisonOp.NE,
    ComparisonOp.LT: ComparisonOp.GT,
    ComparisonOp.LE: ComparisonOp.GE,
    ComparisonOp.GT: ComparisonOp.LT,
    ComparisonOp.GE: ComparisonOp.LE,
}

_NEGATED = {
    ComparisonOp.EQ: ComparisonOp.NE,
    ComparisonOp.NE: ComparisonOp.EQ,
    ComparisonOp.LT: ComparisonOp.GE,
    ComparisonOp.LE: ComparisonOp.GT,
    ComparisonOp.GT: ComparisonOp.LE,
    ComparisonOp.GE: ComparisonOp.LT,
}

_SYMBOLS = {
    "=": ComparisonOp.EQ,
    "==": ComparisonOp.EQ,
    "!=": ComparisonOp.NE,
    "<>": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}


class Condition:
    """Abstract boolean condition over a positional tuple."""

    def evaluate(self, values: tuple[Any, ...]) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class TrueCondition(Condition):
    """The always-true condition."""

    def evaluate(self, values: tuple[Any, ...]) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Comparison(Condition):
    """Compare a tuple position against a constant or another position.

    ``left`` is always a position (int); ``right`` is a position when
    ``right_is_position`` is True, otherwise a constant value.
    """

    left: int
    op: ComparisonOp
    right: Any
    right_is_position: bool = False

    def evaluate(self, values: tuple[Any, ...]) -> bool:
        left_value = values[self.left]
        right_value = values[self.right] if self.right_is_position else self.right
        try:
            return self.op.function(left_value, right_value)
        except TypeError:
            # Mixed-type comparisons (e.g. "abc" < 3) are simply false,
            # matching SQL's type-strict but non-crashing semantics for
            # our untyped substrate.
            return False

    def __str__(self) -> str:
        right = f"#{self.right}" if self.right_is_position else repr(self.right)
        return f"#{self.left} {self.op} {right}"


@dataclass(frozen=True)
class AndCondition(Condition):
    """Conjunction of conditions."""

    parts: tuple[Condition, ...]

    def evaluate(self, values: tuple[Any, ...]) -> bool:
        return all(part.evaluate(values) for part in self.parts)

    def __str__(self) -> str:
        return " and ".join(str(part) for part in self.parts) or "true"
