"""In-memory database instances with integrity enforcement.

A :class:`Database` holds one :class:`RelationInstance` per relation of its
:class:`~repro.relational.schema.Schema`.  Instances enforce arity, domain,
primary-key, and (on demand) foreign-key constraints, and maintain hash
indexes over primary keys and requested attribute sets to keep conjunctive-
query evaluation near-linear on laptop-scale data.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

from repro.analysis import sanitizer as _sanitizer
from repro.errors import (
    ArityError,
    ForeignKeyViolationError,
    KeyViolationError,
    UnknownRelationError,
)
from repro.relational.schema import RelationSchema, Schema
from repro.relational.statistics import Interval, RelationStatistics
from repro.relational.tuples import Row
from repro.relational.types import check_value

#: A sorted secondary index over one column: the sorted key list and the
#: rows aligned with it (stable, so equal keys keep insertion order).
SortedIndex = tuple[list[Any], list[Any]]

#: A composite secondary index: a hash index over the equality-bound
#: positions whose buckets are kept sorted on one ordered position, so a
#: single probe is a hash lookup plus a bisect range narrowing.  A
#: ``None`` bucket records a mixed-type (unsortable) bucket — probes of
#: that bucket fall back to the plain hash index; other buckets keep
#: serving composite probes.
CompositeIndex = dict[tuple[Any, ...], "SortedIndex | None"]


def build_sorted_index(
    rows: Iterable[Any], key_of: Callable[[Any], Any]
) -> SortedIndex | None:
    """Sort ``rows`` by ``key_of`` into a bisectable secondary index.

    Returns ``None`` when the column mixes incomparable types (ordered
    access paths then degrade to a scan plus residual re-checks — never a
    raised ``TypeError``).  NaN-keyed rows are dropped: no range
    predicate can match a NaN, and leaving them in would silently corrupt
    the sort order (NaN comparisons are all false).
    """
    pairs = []
    for row in rows:
        key = key_of(row)
        if key != key:  # NaN
            continue
        pairs.append((key, row))
    try:
        pairs.sort(key=lambda pair: pair[0])
    except TypeError:
        return None
    return [key for key, __ in pairs], [row for __, row in pairs]


def build_composite_index(
    rows: Iterable[Any],
    hash_key_of: Callable[[Any], tuple[Any, ...]],
    order_key_of: Callable[[Any], Any],
) -> CompositeIndex:
    """Group ``rows`` by ``hash_key_of``, sorting each bucket on ``order_key_of``.

    Buckets degrade *individually*: a bucket mixing incomparable order
    keys is stored as ``None`` (probes of it fall back to the hash
    index) while the other buckets keep serving composite probes.
    NaN-keyed rows are dropped from buckets exactly like in
    :func:`build_sorted_index` — no range predicate matches NaN, and the
    residual re-check rejects such rows either way.
    """
    groups: dict[tuple[Any, ...], list[Any]] = {}
    for row in rows:
        groups.setdefault(hash_key_of(row), []).append(row)
    return {
        bucket_key: build_sorted_index(bucket_rows, order_key_of)
        for bucket_key, bucket_rows in groups.items()
    }


def composite_index_slice(
    index: CompositeIndex, values: tuple[Any, ...], interval: Interval
) -> list[Any] | None:
    """Rows of one composite bucket whose order key lies inside ``interval``.

    An absent bucket means no row matches the hash probe (``[]``);
    ``None`` means the composite path cannot serve this probe — the
    bucket is mixed-type, or the interval's bounds are incomparable with
    the bucket's keys — and the caller should fall back to the plain
    hash index plus residual re-checks.
    """
    bucket = index.get(values)
    if bucket is None:
        return [] if values not in index else None
    return sorted_index_slice(bucket, interval)


def sorted_index_slice(index: SortedIndex, interval: Interval) -> list[Any] | None:
    """Rows of a sorted index whose key falls inside ``interval``.

    Bisects both endpoints; ``None`` bounds are unbounded.  Returns
    ``None`` when the interval's bounds are incomparable with the index
    keys (mixed-type probe) so callers can fall back to a scan instead of
    surfacing the ``TypeError``.
    """
    keys, rows = index
    start, stop = 0, len(keys)
    try:
        if interval.lo is not None:
            start = (
                bisect_right(keys, interval.lo)
                if interval.lo_open
                else bisect_left(keys, interval.lo)
            )
        if interval.hi is not None:
            stop = (
                bisect_left(keys, interval.hi)
                if interval.hi_open
                else bisect_right(keys, interval.hi)
            )
    except TypeError:
        return None
    return rows[start:stop]


class RelationShard:
    """One storage partition of a relation extension.

    A shard owns a disjoint subset of its relation's rows, its own
    incrementally maintained :class:`RelationStatistics`, and its own
    lazily built hash indexes whose buckets carry ``(ordinal, row)``
    pairs — the ordinal is the row's global insertion number within the
    relation, which is what lets shard-parallel scans and probes merge
    back into the exact serial iteration order (see
    :mod:`repro.cq.parallel`).  Rows are kept in ordinal order (inserts
    append, deletes remove, a delete + re-insert gets a fresh larger
    ordinal), so plain dict iteration is already merge-ready.
    """

    __slots__ = ("arity", "stats", "rows", "_indexes")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.stats = RelationStatistics(arity)
        #: row -> global insertion ordinal, in ascending ordinal order.
        self.rows: dict[Row, int] = {}
        self._indexes: dict[
            tuple[int, ...], dict[tuple[Any, ...], list[tuple[int, Row]]]
        ] = {}

    def add(self, row: Row, ordinal: int) -> None:
        self.rows[row] = ordinal
        self.stats.add_row(row.values)
        for positions, index in self._indexes.items():
            index.setdefault(row.project(positions), []).append((ordinal, row))

    def remove(self, row: Row) -> None:
        ordinal = self.rows.pop(row)
        self.stats.remove_row(row.values)
        for positions, index in self._indexes.items():
            bucket_key = row.project(positions)
            bucket = index.get(bucket_key)
            if bucket is not None:
                bucket.remove((ordinal, row))
                if not bucket:
                    del index[bucket_key]

    def bulk_load(self, pairs: Sequence[tuple[Row, int]]) -> None:
        """Absorb ``(row, ordinal)`` pairs (ordinal-ascending) in bulk."""
        self._indexes.clear()
        self.rows.update(pairs)
        self.stats.add_rows([row.values for row, __ in pairs])

    def clear_indexes(self) -> None:
        self._indexes.clear()

    def ensure_index(self, positions: tuple[int, ...]) -> None:
        """Build (and cache) this shard's hash index on ``positions``."""
        if positions and positions not in self._indexes:
            index: dict[tuple[Any, ...], list[tuple[int, Row]]] = {}
            for row, ordinal in self.rows.items():
                index.setdefault(row.project(positions), []).append(
                    (ordinal, row)
                )
            self._indexes[positions] = index

    def lookup_pairs(
        self, positions: tuple[int, ...], values: tuple[Any, ...]
    ) -> list[tuple[int, tuple[Any, ...]]]:
        """``(ordinal, values)`` of rows matching the probe, ordinal-ascending."""
        self.ensure_index(positions)
        return [
            (ordinal, row.values)
            for ordinal, row in self._indexes[positions].get(values, ())
        ]

    def ordinal_pairs(self) -> list[tuple[int, tuple[Any, ...]]]:
        """``(ordinal, values)`` of every row, ordinal-ascending."""
        return [(ordinal, row.values) for row, ordinal in self.rows.items()]


class RelationInstance:
    """The extension of one relation: an insertion-ordered set of rows.

    With ``shards > 1`` the extension is additionally partitioned into
    :class:`RelationShard` objects — by hash of the primary-key
    projection when the schema declares a key, round-robin on the
    insertion ordinal otherwise.  Every aggregate structure (row dict,
    indexes, statistics) is maintained exactly as in the unsharded case,
    so serial probes and planner estimates are byte-identical at any
    shard count; the shards only *add* partition-local rows, indexes and
    statistics for the shard-parallel executor, and the aggregate
    statistics always equal the merge of the per-shard statistics.
    """

    def __init__(
        self,
        schema: RelationSchema,
        shards: int = 1,
        owner: "Database | None" = None,
    ) -> None:
        self.schema = schema
        self.stats = RelationStatistics(schema.arity)
        self._owner = owner
        self._key_positions = (
            tuple(schema.key_positions()) if schema.key else None
        )
        #: row -> global insertion ordinal; dict order is ordinal order
        #: (inserts append, deletes remove, re-inserts get fresh
        #: ordinals), which the shard-merge executor relies on.
        self._rows: dict[Row, int] = {}
        self._next_ordinal = 0
        self._nshards = max(1, shards)
        self._shards: list[RelationShard] = (
            [RelationShard(schema.arity) for __ in range(self._nshards)]
            if self._nshards > 1
            else []
        )
        self._key_index: dict[tuple[Any, ...], Row] = {}
        # Secondary hash indexes, built lazily: positions -> {values: [rows]}
        self._indexes: dict[tuple[int, ...], dict[tuple[Any, ...], list[Row]]] = {}
        # Sorted secondary indexes for range probes, built lazily:
        # position -> (sorted keys, aligned rows).  A cached ``None``
        # records a mixed-type (unsortable) column.
        self._sorted_indexes: dict[int, SortedIndex | None] = {}
        # Composite secondary indexes for combined equality+range probes,
        # built lazily: (hash positions, ordered position) -> buckets.
        self._composite_indexes: dict[
            tuple[tuple[int, ...], int], CompositeIndex
        ] = {}

    # -- sharding -------------------------------------------------------------

    def _note_mutation(self, count: int) -> None:
        """Report effective mutations to the owning database's version."""
        if self._owner is not None:
            if _sanitizer._active:
                # Shadow the expected version *before* the bump, so a
                # patched-out or forgotten bump desynchronizes the two
                # and the next version-keyed cache serve reports it.
                _sanitizer.note_effective_mutations(self._owner, count)
            self._owner._note_stats_mutations(count)

    def _shard_of(self, row: Row, ordinal: int) -> int:
        """Which shard owns ``row``: key hash, or round-robin when keyless."""
        if self._key_positions is not None:
            return hash(row.project(self._key_positions)) % self._nshards
        return ordinal % self._nshards

    @property
    def shard_count(self) -> int:
        """Number of storage partitions (1 = unsharded)."""
        return self._nshards

    def reshard(self, shards: int) -> None:
        """Repartition the extension into ``shards`` storage shards.

        Rows, aggregate indexes and aggregate statistics are untouched
        (the data is unchanged, so no cache invalidation is needed);
        per-shard indexes are dropped and rebuild lazily.
        """
        shards = max(1, int(shards))
        if shards == self._nshards:
            return
        self._nshards = shards
        if shards == 1:
            self._shards = []
            return
        self._shards = [
            RelationShard(self.schema.arity) for __ in range(shards)
        ]
        grouped: list[list[tuple[Row, int]]] = [[] for __ in range(shards)]
        for row, ordinal in self._rows.items():
            grouped[self._shard_of(row, ordinal)].append((row, ordinal))
        for shard, pairs in zip(self._shards, grouped):
            shard.bulk_load(pairs)

    def shard_statistics(self) -> list[RelationStatistics]:
        """Per-shard statistics (the aggregate equals their merge)."""
        if self._nshards == 1:
            return [self.stats]
        return [shard.stats for shard in self._shards]

    def shard_ordinal_pairs(self, shard: int) -> list[tuple[int, tuple[Any, ...]]]:
        """One shard's ``(ordinal, values)`` slice, ordinal-ascending."""
        if self._nshards == 1:
            return [(ordinal, row.values) for row, ordinal in self._rows.items()]
        return self._shards[shard].ordinal_pairs()

    def shard_lookup_pairs(
        self, shard: int, positions: tuple[int, ...], values: tuple[Any, ...]
    ) -> list[tuple[int, tuple[Any, ...]]]:
        """``(ordinal, values)`` of one shard's rows matching a hash probe.

        Ordinal-ascending, so merging the per-shard results by ordinal
        reproduces the aggregate probe's insertion order exactly.  Each
        shard's index is a shard-local structure, so concurrent workers
        probing *different* shards never race on index construction.
        """
        if not positions:
            return self.shard_ordinal_pairs(shard)
        if self._nshards == 1:
            return [
                (self._rows[row], row.values)
                for row in self.lookup(positions, values)
            ]
        return self._shards[shard].lookup_pairs(positions, values)

    # -- mutation -------------------------------------------------------------

    def _validated_row(self, values: Sequence[Any]) -> Row:
        """Arity- and domain-check ``values``, returning the Row."""
        if len(values) != self.schema.arity:
            raise ArityError(self.schema.name, self.schema.arity, len(values))
        for attr, value in zip(self.schema.attributes, values):
            check_value(value, attr.domain, f"{self.schema.name}.{attr.name}")
        return Row(self.schema.name, values)

    def insert(self, values: Sequence[Any], enforce_key: bool = True) -> Row:
        """Insert a tuple, returning the stored :class:`Row`.

        Raises :class:`ArityError` / :class:`TypeMismatchError` /
        :class:`KeyViolationError` on constraint violations.  Re-inserting an
        identical row is a no-op (set semantics).
        """
        if _sanitizer._active:
            _sanitizer.check_mutation(self._owner or self)
        row = self._validated_row(values)
        if row in self._rows:
            return row
        if enforce_key and self.schema.key:
            key_value = row.project(self._key_positions)
            existing = self._key_index.get(key_value)
            if existing is not None:
                raise KeyViolationError(
                    f"duplicate key {key_value!r} in relation {self.schema.name!r}: "
                    f"existing row {existing!r}, new row {row!r}"
                )
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        self._rows[row] = ordinal
        self.stats.add_row(row.values)
        if self._key_positions is not None:
            self._key_index[row.project(self._key_positions)] = row
        for positions, index in self._indexes.items():
            index.setdefault(row.project(positions), []).append(row)
        for position in list(self._sorted_indexes):
            self._sorted_insert(position, row)
        for key in self._composite_indexes:
            self._composite_insert(key, row)
        if self._nshards > 1:
            self._shards[self._shard_of(row, ordinal)].add(row, ordinal)
        self._note_mutation(1)
        return row

    def _sorted_insert(self, position: int, row: Row) -> None:
        """Maintain one sorted index across an insert."""
        index = self._sorted_indexes[position]
        if index is None:
            return
        key = row.values[position]
        if key != key:  # NaN rows never enter sorted indexes
            return
        keys, rows = index
        try:
            at = bisect_right(keys, key)
        except TypeError:
            # The new value is incomparable with the column: the index
            # can no longer serve ordered probes.
            self._sorted_indexes[position] = None
            return
        keys.insert(at, key)
        rows.insert(at, row)

    def _sorted_remove(self, position: int, row: Row) -> None:
        """Maintain one sorted index across a delete."""
        index = self._sorted_indexes[position]
        if index is None:
            # A delete can remove the offending mixed-type value; let the
            # next range probe retry the build.
            del self._sorted_indexes[position]
            return
        key = row.values[position]
        if key != key:
            return
        keys, rows = index
        at = bisect_left(keys, key)
        stop = bisect_right(keys, key)
        while at < stop:
            if rows[at] == row:
                del keys[at]
                del rows[at]
                return
            at += 1

    def _composite_insert(self, key: tuple[tuple[int, ...], int], row: Row) -> None:
        """Maintain one composite index across an insert."""
        positions, order_position = key
        index = self._composite_indexes[key]
        order_key = row.values[order_position]
        if order_key != order_key:  # NaN rows never enter composite buckets
            return
        bucket_key = row.project(positions)
        bucket = index.get(bucket_key)
        if bucket is None:
            if bucket_key in index:
                return  # bucket already degraded to the hash fallback
            index[bucket_key] = ([order_key], [row])
            return
        keys, rows = bucket
        try:
            at = bisect_right(keys, order_key)
        except TypeError:
            # The new value is incomparable within its bucket: that
            # bucket can no longer serve composite probes.
            index[bucket_key] = None
            return
        keys.insert(at, order_key)
        rows.insert(at, row)

    def _composite_remove(self, key: tuple[tuple[int, ...], int], row: Row) -> None:
        """Maintain one composite index across a delete."""
        positions, order_position = key
        index = self._composite_indexes[key]
        bucket_key = row.project(positions)
        bucket = index.get(bucket_key)
        if bucket is None:
            if bucket_key in index:
                # A delete can remove the offending mixed-type value;
                # drop the index and let the next probe retry the build.
                del self._composite_indexes[key]
            return
        order_key = row.values[order_position]
        if order_key != order_key:
            return
        keys, rows = bucket
        try:
            at = bisect_left(keys, order_key)
            stop = bisect_right(keys, order_key)
        except TypeError:  # defensive: sorted buckets are comparable
            del self._composite_indexes[key]
            return
        while at < stop:
            if rows[at] == row:
                del keys[at]
                del rows[at]
                break
            at += 1
        if not keys:
            del index[bucket_key]

    def insert_many(
        self, rows: Iterable[Sequence[Any]], enforce_key: bool = True
    ) -> list[Row]:
        """Batch insert.

        Semantically ``[insert(r) for r in rows]``.  When the batch is
        large relative to the current extension, cached secondary indexes
        (aggregate and per-shard) are dropped up front instead of being
        updated row by row — they rebuild lazily on the next probe — and
        statistics are accumulated in one bulk update per column instead
        of one dict update per (row, column) pair, so large loads (and
        :meth:`Database.copy`) skip all per-row maintenance.
        """
        if _sanitizer._active:
            _sanitizer.check_mutation(self._owner or self)
        batch = [values for values in rows]
        if len(batch) <= max(64, len(self._rows)):
            return [
                self.insert(values, enforce_key=enforce_key)
                for values in batch
            ]
        self._indexes.clear()
        self._sorted_indexes.clear()
        self._composite_indexes.clear()
        for shard in self._shards:
            shard.clear_indexes()
        out: list[Row] = []
        fresh_values: list[tuple[Any, ...]] = []
        fresh_shards: list[list[tuple[Row, int]]] = [
            [] for __ in range(self._nshards)
        ]
        try:
            for values in batch:
                row = self._validated_row(values)
                out.append(row)
                if row in self._rows:
                    continue
                if enforce_key and self.schema.key:
                    key_value = row.project(self._key_positions)
                    existing = self._key_index.get(key_value)
                    if existing is not None:
                        raise KeyViolationError(
                            f"duplicate key {key_value!r} in relation "
                            f"{self.schema.name!r}: existing row "
                            f"{existing!r}, new row {row!r}"
                        )
                ordinal = self._next_ordinal
                self._next_ordinal += 1
                self._rows[row] = ordinal
                if self._key_positions is not None:
                    self._key_index[row.project(self._key_positions)] = row
                fresh_values.append(row.values)
                if self._nshards > 1:
                    fresh_shards[self._shard_of(row, ordinal)].append(
                        (row, ordinal)
                    )
        finally:
            # Also runs on a mid-batch constraint violation: rows
            # accepted before the offending one stay applied, exactly
            # like the per-row loop, so their statistics must land too.
            if fresh_values:
                self.stats.add_rows(fresh_values)
                for shard, pairs in zip(self._shards, fresh_shards):
                    if pairs:
                        shard.bulk_load(pairs)
                self._note_mutation(len(fresh_values))
        return out

    def delete(self, row: Row) -> bool:
        """Remove a row; returns True if it was present."""
        if _sanitizer._active:
            _sanitizer.check_mutation(self._owner or self)
        if row not in self._rows:
            return False
        ordinal = self._rows.pop(row)
        self.stats.remove_row(row.values)
        if self._key_positions is not None:
            self._key_index.pop(row.project(self._key_positions), None)
        for positions, index in self._indexes.items():
            bucket = index.get(row.project(positions))
            if bucket is not None:
                bucket.remove(row)
                if not bucket:
                    del index[row.project(positions)]
        for position in list(self._sorted_indexes):
            self._sorted_remove(position, row)
        for key in list(self._composite_indexes):
            self._composite_remove(key, row)
        if self._nshards > 1:
            self._shards[self._shard_of(row, ordinal)].remove(row)
        self._note_mutation(1)
        return True

    # -- access ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: Row) -> bool:
        return row in self._rows

    def rows(self) -> list[Row]:
        """All rows, in insertion order."""
        return list(self._rows)

    def lookup_key(self, key_value: tuple[Any, ...]) -> Row | None:
        """Primary-key point lookup."""
        return self._key_index.get(key_value)

    def ensure_index(self, positions: tuple[int, ...]) -> None:
        """Build (and cache) the hash index on ``positions`` now.

        :meth:`lookup` does this lazily on first probe; the parallel
        executor warms indexes up front so concurrent shard workers never
        race to build the same one.
        """
        if positions and positions not in self._indexes:
            index: dict[tuple[Any, ...], list[Row]] = {}
            for row in self._rows:
                index.setdefault(row.project(positions), []).append(row)
            self._indexes[positions] = index

    def lookup(self, positions: tuple[int, ...], values: tuple[Any, ...]) -> list[Row]:
        """Rows whose projection on ``positions`` equals ``values``.

        Builds (and caches) a hash index on ``positions`` on first use.
        """
        if not positions:
            return self.rows()
        self.ensure_index(positions)
        return list(self._indexes[positions].get(values, ()))

    def ensure_sorted_index(self, position: int) -> SortedIndex | None:
        """Build (and cache) the sorted index on ``position`` now.

        Returns the index, or ``None`` (also cached) when the column
        mixes incomparable types.  :meth:`range_lookup` builds lazily;
        the parallel executor warms indexes up front so shard workers
        never race to build the same one.
        """
        if position not in self._sorted_indexes:
            self._sorted_indexes[position] = build_sorted_index(
                self._rows, lambda row: row.values[position]
            )
        return self._sorted_indexes[position]

    def range_lookup(self, position: int, interval: Interval) -> list[Row] | None:
        """Rows whose ``position`` value lies inside ``interval``.

        Served from the sorted secondary index via bisect, in key order
        (insertion order among equal keys).  Returns ``None`` when the
        ordered path cannot serve the probe — mixed-type column, or
        interval bounds incomparable with the keys — so the caller can
        fall back to a scan plus residual filters.
        """
        index = self.ensure_sorted_index(position)
        if index is None:
            return None
        return sorted_index_slice(index, interval)

    def ensure_composite_index(
        self, positions: tuple[int, ...], order_position: int
    ) -> CompositeIndex:
        """Build (and cache) the composite index ``positions`` × ``order_position``.

        :meth:`composite_lookup` builds lazily; the parallel executor
        warms composite indexes up front so shard workers never race to
        build the same one.
        """
        key = (positions, order_position)
        index = self._composite_indexes.get(key)
        if index is None:
            index = build_composite_index(
                self._rows,
                lambda row: row.project(positions),
                lambda row: row.values[order_position],
            )
            self._composite_indexes[key] = index
        return index

    def composite_lookup(
        self,
        positions: tuple[int, ...],
        values: tuple[Any, ...],
        order_position: int,
        interval: Interval,
    ) -> list[Row] | None:
        """Rows matching ``positions = values`` with ``order_position``
        inside ``interval`` — one hash probe plus one bisect.

        Served in order-key order (insertion order among equal keys).
        Returns ``None`` when the composite path cannot serve the probe
        (mixed-type bucket, or interval bounds incomparable with the
        bucket's keys) so the caller can fall back to the plain hash
        index plus residual re-checks.
        """
        index = self.ensure_composite_index(positions, order_position)
        return composite_index_slice(index, values, interval)

    def _load_trusted(self, rows: Iterable[Sequence[Any]]) -> None:
        """Adopt already-validated value tuples (worker-side rebuilds).

        Used by :meth:`Database.from_projection` to reconstruct a plan
        suffix's relations inside a process-pool worker from shipped
        value tuples.  The values came out of a validated instance, so
        arity/domain/key checks, key indexes and statistics are all
        skipped — the rebuilt instance serves plan execution (scans and
        index probes) only.
        """
        for values in rows:
            self._rows[Row(self.schema.name, values)] = self._next_ordinal
            self._next_ordinal += 1

    def __repr__(self) -> str:
        return f"RelationInstance({self.schema.name!r}, {len(self)} rows)"


class Database:
    """A database instance over a fixed schema.

    ``shards`` partitions every relation's storage into that many
    :class:`RelationShard` slices (see :class:`RelationInstance`);
    ``shards=1`` — the default — is the plain unsharded layout.
    """

    def __init__(self, schema: Schema, shards: int = 1) -> None:
        schema.validate()
        self.schema = schema
        self.shards = max(1, shards)
        self._stats_version = 0
        self._instances: dict[str, RelationInstance] = {
            rel.name: RelationInstance(rel, shards=self.shards, owner=self)
            for rel in schema
        }

    # -- access ---------------------------------------------------------------

    def relation(self, name: str) -> RelationInstance:
        """The instance of relation ``name``."""
        try:
            return self._instances[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._instances

    def relations(self) -> Iterator[RelationInstance]:
        return iter(self._instances.values())

    def total_rows(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(instance) for instance in self._instances.values())

    @property
    def stats_version(self) -> int:
        """Monotone counter over all mutations; plan caches key on this.

        Maintained incrementally (each effective insert/delete bumps it
        through the owning instance) rather than summed over every
        relation's statistics on each read — it is consulted on every
        plan-cache, rewriting-cache and subplan-memo lookup.
        """
        return self._stats_version

    def _note_stats_mutations(self, count: int) -> None:
        """Called by owned instances after each effective mutation."""
        self._stats_version += count

    def reshard(self, shards: int) -> None:
        """Repartition every relation into ``shards`` storage shards.

        The data (and therefore every planner estimate and cached plan)
        is unchanged; only the partition-local structures are rebuilt.
        """
        shards = max(1, int(shards))
        if shards == self.shards:
            return
        self.shards = shards
        for instance in self._instances.values():
            instance.reshard(shards)

    def project_for_plan(self, plan: Any, from_step: int = 0) -> dict[str, list[tuple[Any, ...]]]:
        """Extensions of only the base relations a plan suffix touches.

        ``plan`` is a :class:`~repro.cq.plan.QueryPlan`; the projection
        covers ``plan.steps[from_step:]`` and maps relation name to the
        rows' value tuples in insertion order.  The parallel executor
        ships this — instead of a pickled copy of the whole database —
        to process-pool workers, which rebuild it with
        :meth:`from_projection`.
        """
        names = {
            step.atom.relation
            for step in plan.steps[from_step:]
            if not step.virtual
        }
        return {
            name: [row.values for row in self._instances[name]]
            for name in names
        }

    @classmethod
    def from_projection(
        cls, schema: Schema, relations: dict[str, list[tuple[Any, ...]]]
    ) -> "Database":
        """Rebuild a worker-side database from projected extensions.

        The inverse of :meth:`project_for_plan`: the values were already
        validated by the parent's instances, so constraint checks, key
        indexes and statistics are skipped — the result serves plan
        execution (scans and index probes) only.
        """
        db = cls(schema)
        for name, rows in relations.items():
            db._instances[name]._load_trusted(rows)
        return db

    # -- mutation ---------------------------------------------------------------

    def insert(self, relation: str, *values: Any) -> Row:
        """Insert a tuple into ``relation``."""
        return self.relation(relation).insert(values)

    def insert_all(self, relation: str, rows: Iterable[Sequence[Any]]) -> list[Row]:
        """Bulk insert; returns the stored rows."""
        return self.relation(relation).insert_many(rows)

    def insert_batch(
        self, batches: dict[str, Iterable[Sequence[Any]]]
    ) -> dict[str, list[Row]]:
        """Bulk insert into several relations at once.

        Loaders and benchmark generators use this to populate an instance
        in one call; each relation goes through :meth:`RelationInstance
        .insert_many`, so large loads skip per-row index maintenance.
        """
        return {
            relation: self.relation(relation).insert_many(rows)
            for relation, rows in batches.items()
        }

    def delete(self, relation: str, *values: Any) -> bool:
        """Delete a tuple from ``relation``; returns True if present."""
        return self.relation(relation).delete(Row(relation, values))

    # -- integrity ---------------------------------------------------------------

    def check_foreign_keys(self) -> None:
        """Validate every foreign key across the whole instance.

        Foreign keys are checked in bulk (not per-insert) so data can be
        loaded in any order; generators and loaders call this once at the
        end of loading.
        """
        for instance in self._instances.values():
            for fk in instance.schema.foreign_keys:
                source_positions = tuple(
                    instance.schema.position(col) for col in fk.columns
                )
                target = self.relation(fk.ref_relation)
                for row in instance:
                    key_value = row.project(source_positions)
                    if target.lookup_key(key_value) is None:
                        raise ForeignKeyViolationError(
                            f"{instance.schema.name} row {row!r}: {fk} — "
                            f"no matching key {key_value!r} in {fk.ref_relation}"
                        )

    def copy(self) -> "Database":
        """Deep-enough copy: fresh instances sharing immutable rows.

        Each relation is rebuilt through the bulk :meth:`RelationInstance
        .insert_many` path, so copying pays one statistics update per
        column instead of per-row index/statistics maintenance.  The
        clone keeps the source's shard count.
        """
        clone = Database(self.schema, shards=self.shards)
        for name, instance in self._instances.items():
            clone.relation(name).insert_many(
                [row.values for row in instance], enforce_key=False
            )
        return clone

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}={len(inst)}" for name, inst in self._instances.items()
        )
        return f"Database({sizes})"
