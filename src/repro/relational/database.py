"""In-memory database instances with integrity enforcement.

A :class:`Database` holds one :class:`RelationInstance` per relation of its
:class:`~repro.relational.schema.Schema`.  Instances enforce arity, domain,
primary-key, and (on demand) foreign-key constraints, and maintain hash
indexes over primary keys and requested attribute sets to keep conjunctive-
query evaluation near-linear on laptop-scale data.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

from repro.errors import (
    ArityError,
    ForeignKeyViolationError,
    KeyViolationError,
    UnknownRelationError,
)
from repro.relational.schema import RelationSchema, Schema
from repro.relational.statistics import Interval, RelationStatistics
from repro.relational.tuples import Row
from repro.relational.types import check_value

#: A sorted secondary index over one column: the sorted key list and the
#: rows aligned with it (stable, so equal keys keep insertion order).
SortedIndex = tuple[list[Any], list[Any]]

#: A composite secondary index: a hash index over the equality-bound
#: positions whose buckets are kept sorted on one ordered position, so a
#: single probe is a hash lookup plus a bisect range narrowing.  A
#: ``None`` bucket records a mixed-type (unsortable) bucket — probes of
#: that bucket fall back to the plain hash index; other buckets keep
#: serving composite probes.
CompositeIndex = dict[tuple[Any, ...], "SortedIndex | None"]


def build_sorted_index(
    rows: Iterable[Any], key_of: Callable[[Any], Any]
) -> SortedIndex | None:
    """Sort ``rows`` by ``key_of`` into a bisectable secondary index.

    Returns ``None`` when the column mixes incomparable types (ordered
    access paths then degrade to a scan plus residual re-checks — never a
    raised ``TypeError``).  NaN-keyed rows are dropped: no range
    predicate can match a NaN, and leaving them in would silently corrupt
    the sort order (NaN comparisons are all false).
    """
    pairs = []
    for row in rows:
        key = key_of(row)
        if key != key:  # NaN
            continue
        pairs.append((key, row))
    try:
        pairs.sort(key=lambda pair: pair[0])
    except TypeError:
        return None
    return [key for key, __ in pairs], [row for __, row in pairs]


def build_composite_index(
    rows: Iterable[Any],
    hash_key_of: Callable[[Any], tuple[Any, ...]],
    order_key_of: Callable[[Any], Any],
) -> CompositeIndex:
    """Group ``rows`` by ``hash_key_of``, sorting each bucket on ``order_key_of``.

    Buckets degrade *individually*: a bucket mixing incomparable order
    keys is stored as ``None`` (probes of it fall back to the hash
    index) while the other buckets keep serving composite probes.
    NaN-keyed rows are dropped from buckets exactly like in
    :func:`build_sorted_index` — no range predicate matches NaN, and the
    residual re-check rejects such rows either way.
    """
    groups: dict[tuple[Any, ...], list[Any]] = {}
    for row in rows:
        groups.setdefault(hash_key_of(row), []).append(row)
    return {
        bucket_key: build_sorted_index(bucket_rows, order_key_of)
        for bucket_key, bucket_rows in groups.items()
    }


def composite_index_slice(
    index: CompositeIndex, values: tuple[Any, ...], interval: Interval
) -> list[Any] | None:
    """Rows of one composite bucket whose order key lies inside ``interval``.

    An absent bucket means no row matches the hash probe (``[]``);
    ``None`` means the composite path cannot serve this probe — the
    bucket is mixed-type, or the interval's bounds are incomparable with
    the bucket's keys — and the caller should fall back to the plain
    hash index plus residual re-checks.
    """
    bucket = index.get(values)
    if bucket is None:
        return [] if values not in index else None
    return sorted_index_slice(bucket, interval)


def sorted_index_slice(index: SortedIndex, interval: Interval) -> list[Any] | None:
    """Rows of a sorted index whose key falls inside ``interval``.

    Bisects both endpoints; ``None`` bounds are unbounded.  Returns
    ``None`` when the interval's bounds are incomparable with the index
    keys (mixed-type probe) so callers can fall back to a scan instead of
    surfacing the ``TypeError``.
    """
    keys, rows = index
    start, stop = 0, len(keys)
    try:
        if interval.lo is not None:
            start = (
                bisect_right(keys, interval.lo)
                if interval.lo_open
                else bisect_left(keys, interval.lo)
            )
        if interval.hi is not None:
            stop = (
                bisect_left(keys, interval.hi)
                if interval.hi_open
                else bisect_right(keys, interval.hi)
            )
    except TypeError:
        return None
    return rows[start:stop]


class RelationInstance:
    """The extension of one relation: an insertion-ordered set of rows."""

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self.stats = RelationStatistics(schema.arity)
        self._rows: dict[Row, None] = {}
        self._key_index: dict[tuple[Any, ...], Row] = {}
        # Secondary hash indexes, built lazily: positions -> {values: [rows]}
        self._indexes: dict[tuple[int, ...], dict[tuple[Any, ...], list[Row]]] = {}
        # Sorted secondary indexes for range probes, built lazily:
        # position -> (sorted keys, aligned rows).  A cached ``None``
        # records a mixed-type (unsortable) column.
        self._sorted_indexes: dict[int, SortedIndex | None] = {}
        # Composite secondary indexes for combined equality+range probes,
        # built lazily: (hash positions, ordered position) -> buckets.
        self._composite_indexes: dict[
            tuple[tuple[int, ...], int], CompositeIndex
        ] = {}

    # -- mutation -------------------------------------------------------------

    def insert(self, values: Sequence[Any], enforce_key: bool = True) -> Row:
        """Insert a tuple, returning the stored :class:`Row`.

        Raises :class:`ArityError` / :class:`TypeMismatchError` /
        :class:`KeyViolationError` on constraint violations.  Re-inserting an
        identical row is a no-op (set semantics).
        """
        if len(values) != self.schema.arity:
            raise ArityError(self.schema.name, self.schema.arity, len(values))
        for attr, value in zip(self.schema.attributes, values):
            check_value(value, attr.domain, f"{self.schema.name}.{attr.name}")
        row = Row(self.schema.name, values)
        if row in self._rows:
            return row
        if enforce_key and self.schema.key:
            key_value = row.project(self.schema.key_positions())
            existing = self._key_index.get(key_value)
            if existing is not None:
                raise KeyViolationError(
                    f"duplicate key {key_value!r} in relation {self.schema.name!r}: "
                    f"existing row {existing!r}, new row {row!r}"
                )
        self._rows[row] = None
        self.stats.add_row(row.values)
        if self.schema.key:
            self._key_index[row.project(self.schema.key_positions())] = row
        for positions, index in self._indexes.items():
            index.setdefault(row.project(positions), []).append(row)
        for position in list(self._sorted_indexes):
            self._sorted_insert(position, row)
        for key in self._composite_indexes:
            self._composite_insert(key, row)
        return row

    def _sorted_insert(self, position: int, row: Row) -> None:
        """Maintain one sorted index across an insert."""
        index = self._sorted_indexes[position]
        if index is None:
            return
        key = row.values[position]
        if key != key:  # NaN rows never enter sorted indexes
            return
        keys, rows = index
        try:
            at = bisect_right(keys, key)
        except TypeError:
            # The new value is incomparable with the column: the index
            # can no longer serve ordered probes.
            self._sorted_indexes[position] = None
            return
        keys.insert(at, key)
        rows.insert(at, row)

    def _sorted_remove(self, position: int, row: Row) -> None:
        """Maintain one sorted index across a delete."""
        index = self._sorted_indexes[position]
        if index is None:
            # A delete can remove the offending mixed-type value; let the
            # next range probe retry the build.
            del self._sorted_indexes[position]
            return
        key = row.values[position]
        if key != key:
            return
        keys, rows = index
        at = bisect_left(keys, key)
        stop = bisect_right(keys, key)
        while at < stop:
            if rows[at] == row:
                del keys[at]
                del rows[at]
                return
            at += 1

    def _composite_insert(self, key: tuple[tuple[int, ...], int], row: Row) -> None:
        """Maintain one composite index across an insert."""
        positions, order_position = key
        index = self._composite_indexes[key]
        order_key = row.values[order_position]
        if order_key != order_key:  # NaN rows never enter composite buckets
            return
        bucket_key = row.project(positions)
        bucket = index.get(bucket_key)
        if bucket is None:
            if bucket_key in index:
                return  # bucket already degraded to the hash fallback
            index[bucket_key] = ([order_key], [row])
            return
        keys, rows = bucket
        try:
            at = bisect_right(keys, order_key)
        except TypeError:
            # The new value is incomparable within its bucket: that
            # bucket can no longer serve composite probes.
            index[bucket_key] = None
            return
        keys.insert(at, order_key)
        rows.insert(at, row)

    def _composite_remove(self, key: tuple[tuple[int, ...], int], row: Row) -> None:
        """Maintain one composite index across a delete."""
        positions, order_position = key
        index = self._composite_indexes[key]
        bucket_key = row.project(positions)
        bucket = index.get(bucket_key)
        if bucket is None:
            if bucket_key in index:
                # A delete can remove the offending mixed-type value;
                # drop the index and let the next probe retry the build.
                del self._composite_indexes[key]
            return
        order_key = row.values[order_position]
        if order_key != order_key:
            return
        keys, rows = bucket
        try:
            at = bisect_left(keys, order_key)
            stop = bisect_right(keys, order_key)
        except TypeError:  # defensive: sorted buckets are comparable
            del self._composite_indexes[key]
            return
        while at < stop:
            if rows[at] == row:
                del keys[at]
                del rows[at]
                break
            at += 1
        if not keys:
            del index[bucket_key]

    def insert_many(
        self, rows: Iterable[Sequence[Any]], enforce_key: bool = True
    ) -> list[Row]:
        """Batch insert.

        Semantically ``[insert(r) for r in rows]``, but when the batch is
        large relative to the current extension, cached secondary indexes
        are dropped up front instead of being updated row by row — they
        rebuild lazily on the next :meth:`lookup`, which is a single pass
        instead of one dict update per (row, index) pair.
        """
        batch = [values for values in rows]
        if (
            self._indexes or self._sorted_indexes or self._composite_indexes
        ) and len(batch) > max(64, len(self._rows)):
            self._indexes.clear()
            self._sorted_indexes.clear()
            self._composite_indexes.clear()
        return [self.insert(values, enforce_key=enforce_key) for values in batch]

    def delete(self, row: Row) -> bool:
        """Remove a row; returns True if it was present."""
        if row not in self._rows:
            return False
        del self._rows[row]
        self.stats.remove_row(row.values)
        if self.schema.key:
            self._key_index.pop(row.project(self.schema.key_positions()), None)
        for positions, index in self._indexes.items():
            bucket = index.get(row.project(positions))
            if bucket is not None:
                bucket.remove(row)
                if not bucket:
                    del index[row.project(positions)]
        for position in list(self._sorted_indexes):
            self._sorted_remove(position, row)
        for key in list(self._composite_indexes):
            self._composite_remove(key, row)
        return True

    # -- access ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: Row) -> bool:
        return row in self._rows

    def rows(self) -> list[Row]:
        """All rows, in insertion order."""
        return list(self._rows)

    def lookup_key(self, key_value: tuple[Any, ...]) -> Row | None:
        """Primary-key point lookup."""
        return self._key_index.get(key_value)

    def ensure_index(self, positions: tuple[int, ...]) -> None:
        """Build (and cache) the hash index on ``positions`` now.

        :meth:`lookup` does this lazily on first probe; the parallel
        executor warms indexes up front so concurrent shard workers never
        race to build the same one.
        """
        if positions and positions not in self._indexes:
            index: dict[tuple[Any, ...], list[Row]] = {}
            for row in self._rows:
                index.setdefault(row.project(positions), []).append(row)
            self._indexes[positions] = index

    def lookup(self, positions: tuple[int, ...], values: tuple[Any, ...]) -> list[Row]:
        """Rows whose projection on ``positions`` equals ``values``.

        Builds (and caches) a hash index on ``positions`` on first use.
        """
        if not positions:
            return self.rows()
        self.ensure_index(positions)
        return list(self._indexes[positions].get(values, ()))

    def ensure_sorted_index(self, position: int) -> SortedIndex | None:
        """Build (and cache) the sorted index on ``position`` now.

        Returns the index, or ``None`` (also cached) when the column
        mixes incomparable types.  :meth:`range_lookup` builds lazily;
        the parallel executor warms indexes up front so shard workers
        never race to build the same one.
        """
        if position not in self._sorted_indexes:
            self._sorted_indexes[position] = build_sorted_index(
                self._rows, lambda row: row.values[position]
            )
        return self._sorted_indexes[position]

    def range_lookup(self, position: int, interval: Interval) -> list[Row] | None:
        """Rows whose ``position`` value lies inside ``interval``.

        Served from the sorted secondary index via bisect, in key order
        (insertion order among equal keys).  Returns ``None`` when the
        ordered path cannot serve the probe — mixed-type column, or
        interval bounds incomparable with the keys — so the caller can
        fall back to a scan plus residual filters.
        """
        index = self.ensure_sorted_index(position)
        if index is None:
            return None
        return sorted_index_slice(index, interval)

    def ensure_composite_index(
        self, positions: tuple[int, ...], order_position: int
    ) -> CompositeIndex:
        """Build (and cache) the composite index ``positions`` × ``order_position``.

        :meth:`composite_lookup` builds lazily; the parallel executor
        warms composite indexes up front so shard workers never race to
        build the same one.
        """
        key = (positions, order_position)
        index = self._composite_indexes.get(key)
        if index is None:
            index = build_composite_index(
                self._rows,
                lambda row: row.project(positions),
                lambda row: row.values[order_position],
            )
            self._composite_indexes[key] = index
        return index

    def composite_lookup(
        self,
        positions: tuple[int, ...],
        values: tuple[Any, ...],
        order_position: int,
        interval: Interval,
    ) -> list[Row] | None:
        """Rows matching ``positions = values`` with ``order_position``
        inside ``interval`` — one hash probe plus one bisect.

        Served in order-key order (insertion order among equal keys).
        Returns ``None`` when the composite path cannot serve the probe
        (mixed-type bucket, or interval bounds incomparable with the
        bucket's keys) so the caller can fall back to the plain hash
        index plus residual re-checks.
        """
        index = self.ensure_composite_index(positions, order_position)
        return composite_index_slice(index, values, interval)

    def __repr__(self) -> str:
        return f"RelationInstance({self.schema.name!r}, {len(self)} rows)"


class Database:
    """A database instance over a fixed schema."""

    def __init__(self, schema: Schema) -> None:
        schema.validate()
        self.schema = schema
        self._instances: dict[str, RelationInstance] = {
            rel.name: RelationInstance(rel) for rel in schema
        }

    # -- access ---------------------------------------------------------------

    def relation(self, name: str) -> RelationInstance:
        """The instance of relation ``name``."""
        try:
            return self._instances[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._instances

    def relations(self) -> Iterator[RelationInstance]:
        return iter(self._instances.values())

    def total_rows(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(instance) for instance in self._instances.values())

    @property
    def stats_version(self) -> int:
        """Monotone counter over all mutations; plan caches key on this."""
        return sum(inst.stats.version for inst in self._instances.values())

    # -- mutation ---------------------------------------------------------------

    def insert(self, relation: str, *values: Any) -> Row:
        """Insert a tuple into ``relation``."""
        return self.relation(relation).insert(values)

    def insert_all(self, relation: str, rows: Iterable[Sequence[Any]]) -> list[Row]:
        """Bulk insert; returns the stored rows."""
        return self.relation(relation).insert_many(rows)

    def insert_batch(
        self, batches: dict[str, Iterable[Sequence[Any]]]
    ) -> dict[str, list[Row]]:
        """Bulk insert into several relations at once.

        Loaders and benchmark generators use this to populate an instance
        in one call; each relation goes through :meth:`RelationInstance
        .insert_many`, so large loads skip per-row index maintenance.
        """
        return {
            relation: self.relation(relation).insert_many(rows)
            for relation, rows in batches.items()
        }

    def delete(self, relation: str, *values: Any) -> bool:
        """Delete a tuple from ``relation``; returns True if present."""
        return self.relation(relation).delete(Row(relation, values))

    # -- integrity ---------------------------------------------------------------

    def check_foreign_keys(self) -> None:
        """Validate every foreign key across the whole instance.

        Foreign keys are checked in bulk (not per-insert) so data can be
        loaded in any order; generators and loaders call this once at the
        end of loading.
        """
        for instance in self._instances.values():
            for fk in instance.schema.foreign_keys:
                source_positions = tuple(
                    instance.schema.position(col) for col in fk.columns
                )
                target = self.relation(fk.ref_relation)
                for row in instance:
                    key_value = row.project(source_positions)
                    if target.lookup_key(key_value) is None:
                        raise ForeignKeyViolationError(
                            f"{instance.schema.name} row {row!r}: {fk} — "
                            f"no matching key {key_value!r} in {fk.ref_relation}"
                        )

    def copy(self) -> "Database":
        """Deep-enough copy: fresh instances sharing immutable rows."""
        clone = Database(self.schema)
        for name, instance in self._instances.items():
            for row in instance:
                clone.relation(name).insert(row.values, enforce_key=False)
        return clone

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}={len(inst)}" for name, inst in self._instances.items()
        )
        return f"Database({sizes})"
