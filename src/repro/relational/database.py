"""In-memory database instances with integrity enforcement.

A :class:`Database` holds one :class:`RelationInstance` per relation of its
:class:`~repro.relational.schema.Schema`.  Instances enforce arity, domain,
primary-key, and (on demand) foreign-key constraints, and maintain hash
indexes over primary keys and requested attribute sets to keep conjunctive-
query evaluation near-linear on laptop-scale data.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.errors import (
    ArityError,
    ForeignKeyViolationError,
    KeyViolationError,
    UnknownRelationError,
)
from repro.relational.schema import RelationSchema, Schema
from repro.relational.statistics import RelationStatistics
from repro.relational.tuples import Row
from repro.relational.types import check_value


class RelationInstance:
    """The extension of one relation: an insertion-ordered set of rows."""

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self.stats = RelationStatistics(schema.arity)
        self._rows: dict[Row, None] = {}
        self._key_index: dict[tuple[Any, ...], Row] = {}
        # Secondary hash indexes, built lazily: positions -> {values: [rows]}
        self._indexes: dict[tuple[int, ...], dict[tuple[Any, ...], list[Row]]] = {}

    # -- mutation -------------------------------------------------------------

    def insert(self, values: Sequence[Any], enforce_key: bool = True) -> Row:
        """Insert a tuple, returning the stored :class:`Row`.

        Raises :class:`ArityError` / :class:`TypeMismatchError` /
        :class:`KeyViolationError` on constraint violations.  Re-inserting an
        identical row is a no-op (set semantics).
        """
        if len(values) != self.schema.arity:
            raise ArityError(self.schema.name, self.schema.arity, len(values))
        for attr, value in zip(self.schema.attributes, values):
            check_value(value, attr.domain, f"{self.schema.name}.{attr.name}")
        row = Row(self.schema.name, values)
        if row in self._rows:
            return row
        if enforce_key and self.schema.key:
            key_value = row.project(self.schema.key_positions())
            existing = self._key_index.get(key_value)
            if existing is not None:
                raise KeyViolationError(
                    f"duplicate key {key_value!r} in relation {self.schema.name!r}: "
                    f"existing row {existing!r}, new row {row!r}"
                )
        self._rows[row] = None
        self.stats.add_row(row.values)
        if self.schema.key:
            self._key_index[row.project(self.schema.key_positions())] = row
        for positions, index in self._indexes.items():
            index.setdefault(row.project(positions), []).append(row)
        return row

    def insert_many(
        self, rows: Iterable[Sequence[Any]], enforce_key: bool = True
    ) -> list[Row]:
        """Batch insert.

        Semantically ``[insert(r) for r in rows]``, but when the batch is
        large relative to the current extension, cached secondary indexes
        are dropped up front instead of being updated row by row — they
        rebuild lazily on the next :meth:`lookup`, which is a single pass
        instead of one dict update per (row, index) pair.
        """
        batch = [values for values in rows]
        if self._indexes and len(batch) > max(64, len(self._rows)):
            self._indexes.clear()
        return [self.insert(values, enforce_key=enforce_key) for values in batch]

    def delete(self, row: Row) -> bool:
        """Remove a row; returns True if it was present."""
        if row not in self._rows:
            return False
        del self._rows[row]
        self.stats.remove_row(row.values)
        if self.schema.key:
            self._key_index.pop(row.project(self.schema.key_positions()), None)
        for positions, index in self._indexes.items():
            bucket = index.get(row.project(positions))
            if bucket is not None:
                bucket.remove(row)
                if not bucket:
                    del index[row.project(positions)]
        return True

    # -- access ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: Row) -> bool:
        return row in self._rows

    def rows(self) -> list[Row]:
        """All rows, in insertion order."""
        return list(self._rows)

    def lookup_key(self, key_value: tuple[Any, ...]) -> Row | None:
        """Primary-key point lookup."""
        return self._key_index.get(key_value)

    def ensure_index(self, positions: tuple[int, ...]) -> None:
        """Build (and cache) the hash index on ``positions`` now.

        :meth:`lookup` does this lazily on first probe; the parallel
        executor warms indexes up front so concurrent shard workers never
        race to build the same one.
        """
        if positions and positions not in self._indexes:
            index: dict[tuple[Any, ...], list[Row]] = {}
            for row in self._rows:
                index.setdefault(row.project(positions), []).append(row)
            self._indexes[positions] = index

    def lookup(self, positions: tuple[int, ...], values: tuple[Any, ...]) -> list[Row]:
        """Rows whose projection on ``positions`` equals ``values``.

        Builds (and caches) a hash index on ``positions`` on first use.
        """
        if not positions:
            return self.rows()
        self.ensure_index(positions)
        return list(self._indexes[positions].get(values, ()))

    def __repr__(self) -> str:
        return f"RelationInstance({self.schema.name!r}, {len(self)} rows)"


class Database:
    """A database instance over a fixed schema."""

    def __init__(self, schema: Schema) -> None:
        schema.validate()
        self.schema = schema
        self._instances: dict[str, RelationInstance] = {
            rel.name: RelationInstance(rel) for rel in schema
        }

    # -- access ---------------------------------------------------------------

    def relation(self, name: str) -> RelationInstance:
        """The instance of relation ``name``."""
        try:
            return self._instances[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._instances

    def relations(self) -> Iterator[RelationInstance]:
        return iter(self._instances.values())

    def total_rows(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(instance) for instance in self._instances.values())

    @property
    def stats_version(self) -> int:
        """Monotone counter over all mutations; plan caches key on this."""
        return sum(inst.stats.version for inst in self._instances.values())

    # -- mutation ---------------------------------------------------------------

    def insert(self, relation: str, *values: Any) -> Row:
        """Insert a tuple into ``relation``."""
        return self.relation(relation).insert(values)

    def insert_all(self, relation: str, rows: Iterable[Sequence[Any]]) -> list[Row]:
        """Bulk insert; returns the stored rows."""
        return self.relation(relation).insert_many(rows)

    def insert_batch(
        self, batches: dict[str, Iterable[Sequence[Any]]]
    ) -> dict[str, list[Row]]:
        """Bulk insert into several relations at once.

        Loaders and benchmark generators use this to populate an instance
        in one call; each relation goes through :meth:`RelationInstance
        .insert_many`, so large loads skip per-row index maintenance.
        """
        return {
            relation: self.relation(relation).insert_many(rows)
            for relation, rows in batches.items()
        }

    def delete(self, relation: str, *values: Any) -> bool:
        """Delete a tuple from ``relation``; returns True if present."""
        return self.relation(relation).delete(Row(relation, values))

    # -- integrity ---------------------------------------------------------------

    def check_foreign_keys(self) -> None:
        """Validate every foreign key across the whole instance.

        Foreign keys are checked in bulk (not per-insert) so data can be
        loaded in any order; generators and loaders call this once at the
        end of loading.
        """
        for instance in self._instances.values():
            for fk in instance.schema.foreign_keys:
                source_positions = tuple(
                    instance.schema.position(col) for col in fk.columns
                )
                target = self.relation(fk.ref_relation)
                for row in instance:
                    key_value = row.project(source_positions)
                    if target.lookup_key(key_value) is None:
                        raise ForeignKeyViolationError(
                            f"{instance.schema.name} row {row!r}: {fk} — "
                            f"no matching key {key_value!r} in {fk.ref_relation}"
                        )

    def copy(self) -> "Database":
        """Deep-enough copy: fresh instances sharing immutable rows."""
        clone = Database(self.schema)
        for name, instance in self._instances.items():
            for row in instance:
                clone.relation(name).insert(row.values, enforce_key=False)
        return clone

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}={len(inst)}" for name, inst in self._instances.items()
        )
        return f"Database({sizes})"
