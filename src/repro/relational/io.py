"""Loading and dumping databases: CSV directories and JSON project files.

Real repositories keep data in files; the CLI and examples use these
helpers.  Two formats:

- **CSV directory** — one ``<Relation>.csv`` per relation, first row is
  the header (must match the schema's attribute names);
- **JSON project file** — a single document carrying the schema, the
  data, and (optionally) citation-view definitions, e.g.::

    {
      "schema": {
        "Family": {"attributes": ["FID", "FName", "Type"], "key": ["FID"]},
        ...
      },
      "data": {"Family": [["11", "Calcitonin", "gpcr"], ...], ...},
      "views": [
        {"view": "lambda F. V1(F,N,Ty) :- Family(F,N,Ty)",
         "citation_query": "lambda F. CV1(F,N,Pn) :- ...",
         "labels": ["ID", "Name", "Committee"]}
      ]
    }
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.schema import ForeignKey, RelationSchema, Schema


def dump_csv(db: Database, directory: str | Path) -> None:
    """Write one ``<Relation>.csv`` per relation (header + rows)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    for instance in db.relations():
        target = path / f"{instance.schema.name}.csv"
        with open(target, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(instance.schema.attribute_names)
            for row in instance:
                writer.writerow(row.values)


def load_csv(schema: Schema, directory: str | Path) -> Database:
    """Load a database from a CSV directory (all values read as strings)."""
    path = Path(directory)
    db = Database(schema)
    for relation in schema:
        source = path / f"{relation.name}.csv"
        if not source.exists():
            continue
        with open(source, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue
            if tuple(header) != relation.attribute_names:
                raise SchemaError(
                    f"{source}: header {header} does not match schema "
                    f"attributes {relation.attribute_names}"
                )
            for row in reader:
                db.insert(relation.name, *row)
    db.check_foreign_keys()
    return db


# ---------------------------------------------------------------------------
# JSON project files
# ---------------------------------------------------------------------------


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """Serialize a schema to the project-file layout."""
    result: dict[str, Any] = {}
    for relation in schema:
        entry: dict[str, Any] = {
            "attributes": list(relation.attribute_names),
        }
        if relation.key:
            entry["key"] = list(relation.key)
        if relation.foreign_keys:
            entry["foreign_keys"] = [
                {
                    "columns": list(fk.columns),
                    "references": fk.ref_relation,
                    "ref_columns": list(fk.ref_columns),
                }
                for fk in relation.foreign_keys
            ]
        result[relation.name] = entry
    return result


def schema_from_dict(payload: dict[str, Any]) -> Schema:
    """Parse the project-file schema layout."""
    relations = []
    for name, entry in payload.items():
        foreign_keys = [
            ForeignKey(
                tuple(fk["columns"]),
                fk["references"],
                tuple(fk["ref_columns"]),
            )
            for fk in entry.get("foreign_keys", [])
        ]
        relations.append(RelationSchema(
            name,
            entry["attributes"],
            key=entry.get("key", ()),
            foreign_keys=foreign_keys,
        ))
    return Schema(relations)


def dump_project(
    db: Database,
    path: str | Path,
    views: list[dict[str, Any]] | None = None,
) -> None:
    """Write a JSON project file (schema + data + view definitions)."""
    payload: dict[str, Any] = {
        "schema": schema_to_dict(db.schema),
        "data": {
            instance.schema.name: [list(row.values) for row in instance]
            for instance in db.relations()
        },
    }
    if views:
        payload["views"] = views
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)


def load_project(path: str | Path) -> tuple[Database, list[dict[str, Any]]]:
    """Load a JSON project file; returns ``(database, view_specs)``.

    View specs are returned raw (dicts with ``view``, ``citation_query``,
    optional ``labels``/``description``); build them with
    :meth:`repro.views.CitationView.from_strings`.
    """
    with open(path) as handle:
        payload = json.load(handle)
    schema = schema_from_dict(payload["schema"])
    db = Database(schema)
    for relation, rows in payload.get("data", {}).items():
        for row in rows:
            db.insert(relation, *row)
    db.check_foreign_keys()
    return db, payload.get("views", [])
