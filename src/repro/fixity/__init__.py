"""Fixity and versioning (paper, Section 4).

"Data may evolve over time, and citations should bring back the data as
seen at the time it was cited.  Thus data sources must support versioning,
and citations must include timestamps or version numbers."

:class:`~repro.fixity.versioned.VersionedDatabase` keeps an append-only
change log with named versions and reconstructs any past state;
:class:`~repro.fixity.versioned.VersionedCitationEngine` generates
citations against a chosen version and stamps them with it.
"""

from repro.fixity.versioned import (
    Version,
    VersionedDatabase,
    VersionedCitationEngine,
)
from repro.fixity.temporal import (
    VTAG,
    TemporalCitationEngine,
    lift_schema,
    lift_database,
    lift_view,
    lift_registry,
    tag_query,
)

__all__ = [
    "Version",
    "VersionedDatabase",
    "VersionedCitationEngine",
    "VTAG",
    "TemporalCitationEngine",
    "lift_schema",
    "lift_database",
    "lift_view",
    "lift_registry",
    "tag_query",
]
