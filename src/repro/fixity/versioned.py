"""Versioned databases and version-stamped citations.

Implementation: an append-only log of ``insert``/``delete`` events.  A
:class:`Version` marks a prefix of the log; :meth:`VersionedDatabase.as_of`
replays the prefix into a fresh :class:`~repro.relational.database.Database`
(reconstructed states are cached).  This favours simplicity and perfect
fidelity over storage cleverness — exactly what the fixity requirement
needs at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.citation.generator import CitationEngine, CitationResult, Record
from repro.citation.policy import CitationPolicy
from repro.cq.evaluation import evaluate_query
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlan
from repro.cq.query import ConjunctiveQuery
from repro.errors import VersionError
from repro.relational.database import Database
from repro.relational.schema import Schema
from repro.views.registry import ViewRegistry


@dataclass(frozen=True)
class Version:
    """A named, ordered version of the database."""

    number: int
    tag: str
    log_length: int

    def __str__(self) -> str:
        return self.tag


@dataclass(frozen=True)
class _Event:
    operation: str  # "insert" | "delete"
    relation: str
    values: tuple[Any, ...]


class VersionedDatabase:
    """A database with an append-only change log and named versions.

    Mutations apply to the *working state*; :meth:`commit` freezes them
    into a new version.  ``as_of`` reconstructs any committed version.
    """

    def __init__(self, schema: Schema, initial_tag: str = "v0") -> None:
        self.schema = schema
        self._log: list[_Event] = []
        self._versions: list[Version] = [Version(0, initial_tag, 0)]
        self._working = Database(schema)
        # Reconstructed snapshots are whole databases, so keep only a
        # handful: FIFO-bounded, replays rebuild evicted versions.
        self._cache: dict[int, Database] = {}
        self._cache_max = 8

    # -- mutation --------------------------------------------------------------

    def insert(self, relation: str, *values: Any) -> None:
        """Insert into the working state (logged)."""
        self._working.insert(relation, *values)
        self._log.append(_Event("insert", relation, tuple(values)))

    def delete(self, relation: str, *values: Any) -> None:
        """Delete from the working state (logged); missing rows error."""
        if not self._working.delete(relation, *values):
            raise VersionError(
                f"cannot delete absent tuple {values!r} from {relation!r}"
            )
        self._log.append(_Event("delete", relation, tuple(values)))

    def commit(self, tag: str | None = None) -> Version:
        """Freeze the working state as a new version."""
        number = len(self._versions)
        version = Version(number, tag or f"v{number}", len(self._log))
        self._versions.append(version)
        return version

    # -- access ---------------------------------------------------------------

    @property
    def versions(self) -> tuple[Version, ...]:
        return tuple(self._versions)

    @property
    def latest(self) -> Version:
        return self._versions[-1]

    def resolve(self, version: Version | str | int | None) -> Version:
        """Resolve a version reference (tag, number, or None = latest)."""
        if version is None:
            return self.latest
        if isinstance(version, Version):
            return version
        for candidate in self._versions:
            if candidate.tag == version or candidate.number == version:
                return candidate
        raise VersionError(f"unknown version: {version!r}")

    def current(self) -> Database:
        """The live working state (mutations visible immediately)."""
        return self._working

    def as_of(self, version: Version | str | int | None = None) -> Database:
        """Reconstruct the database as of a committed version."""
        resolved = self.resolve(version)
        cached = self._cache.get(resolved.number)
        if cached is not None:
            return cached
        db = Database(self.schema)
        for event in self._log[: resolved.log_length]:
            if event.operation == "insert":
                db.relation(event.relation).insert(
                    event.values, enforce_key=False
                )
            else:
                db.delete(event.relation, *event.values)
        self._cache[resolved.number] = db
        if len(self._cache) > self._cache_max:
            self._cache.pop(next(iter(self._cache)))
        return db


class VersionedCitationEngine:
    """Citations over a :class:`VersionedDatabase`, stamped with versions.

    Per Section 4, every citation record gains a ``Version`` field so the
    cited data can be brought back exactly as it was seen.
    """

    def __init__(
        self,
        versioned: VersionedDatabase,
        registry: ViewRegistry,
        policy: CitationPolicy | None = None,
    ) -> None:
        self.versioned = versioned
        self.registry = registry
        self.policy = policy
        self._engines: dict[int, CitationEngine] = {}

    def _engine_for(self, version: Version) -> CitationEngine:
        engine = self._engines.get(version.number)
        if engine is None:
            db = self.versioned.as_of(version)
            engine = CitationEngine(db, self.registry, policy=self.policy)
            self._engines[version.number] = engine
        return engine

    # -- planned evaluation ---------------------------------------------------

    def plan(
        self,
        query: ConjunctiveQuery | str,
        version: Version | str | int | None = None,
    ) -> QueryPlan:
        """The cached cost-based plan for ``query`` as of a version.

        Each committed version keeps its own warm
        :class:`~repro.citation.generator.CitationEngine` (and hence its
        own :class:`~repro.cq.plan.QueryPlanner` over the reconstructed
        state), so plans are naturally keyed by ``(query, version)`` and
        costed against that version's statistics.
        """
        if isinstance(query, str):
            query = parse_query(query)
        resolved = self.versioned.resolve(version)
        return self._engine_for(resolved).planner.plan(query)

    def evaluate(
        self,
        query: ConjunctiveQuery | str,
        version: Version | str | int | None = None,
        parallelism: int = 1,
        use_processes: bool = False,
    ) -> list[tuple[Any, ...]]:
        """Evaluate a query against a committed version, planned.

        Results match evaluating against ``versioned.as_of(version)``
        directly; repeated evaluation of the same query at the same
        version hits the per-version plan cache.
        """
        if isinstance(query, str):
            query = parse_query(query)
        resolved = self.versioned.resolve(version)
        engine = self._engine_for(resolved)
        return evaluate_query(
            query,
            engine.db,
            planner=engine.planner,
            parallelism=parallelism,
            use_processes=use_processes,
        )

    def explain(
        self,
        query: ConjunctiveQuery | str,
        version: Version | str | int | None = None,
    ) -> str:
        """EXPLAIN for the version-pinned plan."""
        resolved = self.versioned.resolve(version)
        return (
            f"as of version {resolved.tag!r}: "
            + self.plan(query, resolved).explain()
        )

    def cite(
        self,
        query: ConjunctiveQuery | str,
        version: Version | str | int | None = None,
    ) -> CitationResult:
        """Cite a query against a committed version (default: latest)."""
        resolved = self.versioned.resolve(version)
        result = self._engine_for(resolved).cite(query)
        stamp = {"Version": resolved.tag}
        result.records = [
            self._stamped(record, stamp) for record in result.records
        ]
        result.database_citation = [
            self._stamped(record, stamp)
            for record in result.database_citation
        ]
        for tuple_citation in result.tuples.values():
            tuple_citation.records = [
                self._stamped(record, stamp)
                for record in tuple_citation.records
            ]
        return result

    @staticmethod
    def _stamped(record: Record, stamp: Record) -> Record:
        merged = dict(record)
        merged.update(stamp)
        return merged
