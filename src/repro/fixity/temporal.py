"""Temporal citation views: timestamps as λ-parameters (Section 4).

Besides log-based versioning (:mod:`repro.fixity.versioned`), the paper
sketches a second fixity mechanism:

    "This may be captured in our model by including a 'timestamp'
    attribute in base relations, with lambda variables in views
    corresponding to this attribute.  Then, citations could vary across
    timestamps, and our algebraic operators may be used to aggregate (or
    choose some out of) these citations."

This module implements exactly that lifting:

- :func:`lift_schema` adds a trailing ``VTag`` (version-tag) attribute to
  every relation;
- :func:`lift_database` copies a snapshot into the lifted schema under a
  given tag (several snapshots coexist in one database);
- :func:`lift_view` rewrites a citation view so every body atom carries a
  shared timestamp variable that becomes an *additional λ-parameter* —
  instantiating the lifted view at ``(..., tag)`` yields the view as of
  that tag, and the citation query credits the curators recorded then.

Because the timestamp is an ordinary λ-parameter, the whole citation
pipeline (rewriting, absorption, orders) applies unchanged: a query that
pins ``VTag = "2016.2"`` gets the comparison absorbed into the lifted
view's λ-term exactly like ``Ty = "gpcr"`` in Example 2.2.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.cq.atoms import RelationalAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Variable
from repro.relational.database import Database
from repro.relational.schema import Attribute, RelationSchema, Schema
from repro.relational.types import STRING
from repro.util.naming import fresh_variable_name
from repro.views.citation_view import CitationView
from repro.views.registry import ViewRegistry

#: Name of the injected version-tag attribute.
VTAG = "VTag"


def lift_schema(schema: Schema) -> Schema:
    """Add a trailing ``VTag`` attribute (part of every key) per relation.

    Foreign keys are dropped in the lifted schema: cross-version
    referential integrity is the versioning layer's concern, and keys now
    include the tag so the same logical row may appear in many versions.
    """
    lifted = []
    for relation in schema:
        attributes = list(relation.attributes) + [Attribute(VTAG, STRING)]
        key = list(relation.key) + [VTAG] if relation.key else []
        lifted.append(RelationSchema(relation.name, attributes, key=key))
    return Schema(lifted)


def lift_database(
    snapshots: Sequence[tuple[str, Database]],
    lifted_schema: Schema | None = None,
) -> Database:
    """Merge tagged snapshots into one temporal database.

    ``snapshots`` is a sequence of ``(tag, database)`` pairs over the same
    (unlifted) schema; every row is copied with the tag appended.
    """
    if not snapshots:
        raise ValueError("need at least one (tag, database) snapshot")
    base_schema = snapshots[0][1].schema
    if lifted_schema is None:
        lifted_schema = lift_schema(base_schema)
    temporal = Database(lifted_schema)
    for tag, db in snapshots:
        for instance in db.relations():
            for row in instance:
                temporal.insert(instance.schema.name, *row.values, tag)
    return temporal


def _lift_query(
    query: ConjunctiveQuery, timestamp: Variable
) -> ConjunctiveQuery:
    """Append the shared timestamp variable to every body atom."""
    atoms = [
        RelationalAtom(atom.relation, list(atom.terms) + [timestamp])
        for atom in query.atoms
    ]
    head = list(query.head) + [timestamp]
    parameters = list(query.parameters) + [timestamp]
    return ConjunctiveQuery(
        query.name, head, atoms, query.comparisons, parameters
    )


def lift_view(view: CitationView) -> CitationView:
    """Lift a citation view to the temporal schema.

    The lifted view gains a trailing head column and λ-parameter ``T``
    (fresh) shared by every body atom of both the view definition and the
    citation query, so one instantiation reads one version consistently.
    """
    used = {v.name for v in view.view.variables()}
    used.update(v.name for v in view.citation_query.variables())
    timestamp = Variable(fresh_variable_name(used, hint="T"))
    return CitationView(
        _lift_query(view.view, timestamp),
        _lift_query(view.citation_query, timestamp),
        view.citation_function,
        labels=tuple(view.labels) + (VTAG,),
        description=(view.description + " (temporal)").strip(),
    )


def lift_registry(
    registry: ViewRegistry, lifted_schema: Schema | None = None
) -> ViewRegistry:
    """Lift every view of a registry onto the lifted schema."""
    if lifted_schema is None:
        lifted_schema = lift_schema(registry.schema)
    return ViewRegistry(
        lifted_schema, [lift_view(view) for view in registry]
    )


def tag_query(query: ConjunctiveQuery, tag: Any) -> ConjunctiveQuery:
    """Rewrite a user query to read one version of the temporal database.

    Every body atom gets a shared fresh timestamp variable pinned to
    ``tag`` by an inline constant — which the rewriting engine then
    absorbs into the lifted views' timestamp λ-parameters, yielding
    version-stamped citations through the ordinary machinery.
    """
    from repro.cq.terms import Constant

    atoms = [
        RelationalAtom(atom.relation, list(atom.terms) + [Constant(tag)])
        for atom in query.atoms
    ]
    return ConjunctiveQuery(
        query.name, query.head, atoms, query.comparisons, query.parameters
    )
