"""Temporal citation views: timestamps as λ-parameters (Section 4).

Besides log-based versioning (:mod:`repro.fixity.versioned`), the paper
sketches a second fixity mechanism:

    "This may be captured in our model by including a 'timestamp'
    attribute in base relations, with lambda variables in views
    corresponding to this attribute.  Then, citations could vary across
    timestamps, and our algebraic operators may be used to aggregate (or
    choose some out of) these citations."

This module implements exactly that lifting:

- :func:`lift_schema` adds a trailing ``VTag`` (version-tag) attribute to
  every relation;
- :func:`lift_database` copies a snapshot into the lifted schema under a
  given tag (several snapshots coexist in one database);
- :func:`lift_view` rewrites a citation view so every body atom carries a
  shared timestamp variable that becomes an *additional λ-parameter* —
  instantiating the lifted view at ``(..., tag)`` yields the view as of
  that tag, and the citation query credits the curators recorded then.

Because the timestamp is an ordinary λ-parameter, the whole citation
pipeline (rewriting, absorption, orders) applies unchanged: a query that
pins ``VTag = "2016.2"`` gets the comparison absorbed into the lifted
view's λ-term exactly like ``Ty = "gpcr"`` in Example 2.2.

:class:`TemporalCitationEngine` keeps the lifted database warm behind the
cost-based planner: queries pinned to a snapshot tag plan once per
``(query, tag)`` — the tag rides in the query as an ordinary constant, so
the α-equivalence plan cache separates tags without any bespoke keying —
and snapshot registration invalidates every cached plan through the same
``stats_version`` signal ordinary mutations use.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.cq.atoms import RelationalAtom
from repro.cq.evaluation import evaluate_query
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlan, QueryPlanner
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Variable
from repro.errors import VersionError
from repro.relational.database import Database
from repro.relational.schema import Attribute, RelationSchema, Schema
from repro.relational.types import STRING
from repro.util.naming import fresh_variable_name
from repro.views.citation_view import CitationView
from repro.views.registry import ViewRegistry

#: Name of the injected version-tag attribute.
VTAG = "VTag"


def lift_schema(schema: Schema) -> Schema:
    """Add a trailing ``VTag`` attribute (part of every key) per relation.

    Foreign keys are dropped in the lifted schema: cross-version
    referential integrity is the versioning layer's concern, and keys now
    include the tag so the same logical row may appear in many versions.
    """
    lifted = []
    for relation in schema:
        attributes = list(relation.attributes) + [Attribute(VTAG, STRING)]
        key = list(relation.key) + [VTAG] if relation.key else []
        lifted.append(RelationSchema(relation.name, attributes, key=key))
    return Schema(lifted)


def lift_database(
    snapshots: Sequence[tuple[str, Database]],
    lifted_schema: Schema | None = None,
) -> Database:
    """Merge tagged snapshots into one temporal database.

    ``snapshots`` is a sequence of ``(tag, database)`` pairs over the same
    (unlifted) schema; every row is copied with the tag appended.
    """
    if not snapshots:
        raise ValueError("need at least one (tag, database) snapshot")
    base_schema = snapshots[0][1].schema
    if lifted_schema is None:
        lifted_schema = lift_schema(base_schema)
    temporal = Database(lifted_schema)
    for tag, db in snapshots:
        for instance in db.relations():
            for row in instance:
                temporal.insert(instance.schema.name, *row.values, tag)
    return temporal


def _lift_query(
    query: ConjunctiveQuery, timestamp: Variable
) -> ConjunctiveQuery:
    """Append the shared timestamp variable to every body atom."""
    atoms = [
        RelationalAtom(atom.relation, list(atom.terms) + [timestamp])
        for atom in query.atoms
    ]
    head = list(query.head) + [timestamp]
    parameters = list(query.parameters) + [timestamp]
    return ConjunctiveQuery(
        query.name, head, atoms, query.comparisons, parameters
    )


def lift_view(view: CitationView) -> CitationView:
    """Lift a citation view to the temporal schema.

    The lifted view gains a trailing head column and λ-parameter ``T``
    (fresh) shared by every body atom of both the view definition and the
    citation query, so one instantiation reads one version consistently.
    """
    used = {v.name for v in view.view.variables()}
    used.update(v.name for v in view.citation_query.variables())
    timestamp = Variable(fresh_variable_name(used, hint="T"))
    return CitationView(
        _lift_query(view.view, timestamp),
        _lift_query(view.citation_query, timestamp),
        view.citation_function,
        labels=tuple(view.labels) + (VTAG,),
        description=(view.description + " (temporal)").strip(),
    )


def lift_registry(
    registry: ViewRegistry, lifted_schema: Schema | None = None
) -> ViewRegistry:
    """Lift every view of a registry onto the lifted schema."""
    if lifted_schema is None:
        lifted_schema = lift_schema(registry.schema)
    return ViewRegistry(
        lifted_schema, [lift_view(view) for view in registry]
    )


def tag_query(query: ConjunctiveQuery, tag: Any) -> ConjunctiveQuery:
    """Rewrite a user query to read one version of the temporal database.

    Every body atom gets a shared fresh timestamp variable pinned to
    ``tag`` by an inline constant — which the rewriting engine then
    absorbs into the lifted views' timestamp λ-parameters, yielding
    version-stamped citations through the ordinary machinery.
    """
    from repro.cq.terms import Constant

    atoms = [
        RelationalAtom(atom.relation, list(atom.terms) + [Constant(tag)])
        for atom in query.atoms
    ]
    return ConjunctiveQuery(
        query.name, query.head, atoms, query.comparisons, query.parameters
    )


class TemporalCitationEngine:
    """Snapshot-pinned queries over one warm, planner-backed temporal DB.

    Snapshots of a base-schema database register under a tag
    (:meth:`register_snapshot`); user queries over the base schema pin a
    tag and run against the merged temporal database through a shared
    :class:`~repro.cq.plan.QueryPlanner`.  The plan cache is *version
    aware* for free: :func:`tag_query` embeds the tag as a constant in
    every atom, so two tags yield two canonical keys — one plan per
    ``(query, tag)`` — and registering a new snapshot bumps the temporal
    database's ``stats_version``, lazily invalidating every cached plan
    exactly like an ordinary bulk load would.

    With a ``registry`` (over the *unlifted* base schema) the engine also
    serves version-stamped citations: the registry is lifted
    (:func:`lift_registry`) and a :class:`~repro.citation.generator
    .CitationEngine` over the temporal database answers :meth:`cite`,
    with its own shared planner and materialized lifted views.
    """

    def __init__(
        self,
        base_schema: Schema,
        registry: ViewRegistry | None = None,
        snapshots: Sequence[tuple[str, Database]] = (),
        **engine_options: Any,
    ) -> None:
        self.base_schema = base_schema
        self.lifted_schema = lift_schema(base_schema)
        self.db = Database(self.lifted_schema)
        #: Shared plan cache for snapshot-pinned evaluation; one entry
        #: per (query structure, tag) because the tag is a constant.
        self.planner = QueryPlanner(self.db)
        self._tags: dict[str, None] = {}
        self._engine: Any = None
        if registry is not None:
            from repro.citation.generator import CitationEngine

            self._engine = CitationEngine(
                self.db,
                lift_registry(registry, self.lifted_schema),
                **engine_options,
            )
        elif engine_options:
            raise TypeError("engine options need a registry")
        for tag, snapshot in snapshots:
            self.register_snapshot(tag, snapshot)

    # -- snapshots -----------------------------------------------------------

    @property
    def tags(self) -> tuple[str, ...]:
        """Registered snapshot tags, in registration order."""
        return tuple(self._tags)

    def register_snapshot(self, tag: str, snapshot: Database) -> int:
        """Copy a base-schema snapshot into the temporal DB under ``tag``.

        Returns the number of rows loaded.  Loading bumps the temporal
        database's ``stats_version``, so every cached plan (this
        engine's and the citation engine's) is invalidated — the same
        signal PR 5 uses for ordinary mutations.
        """
        if tag in self._tags:
            raise VersionError(f"snapshot tag already registered: {tag!r}")
        loaded = 0
        for instance in snapshot.relations():
            for row in instance:
                self.db.insert(instance.schema.name, *row.values, tag)
                loaded += 1
        self._tags[tag] = None
        if self._engine is not None:
            # Materialized lifted views are cached per engine; new data
            # must drop them (plans invalidate via stats_version anyway).
            self._engine.refresh()
        return loaded

    def _check_tag(self, tag: str) -> None:
        if tag not in self._tags:
            raise VersionError(f"unknown snapshot tag: {tag!r}")

    def tagged(self, query: ConjunctiveQuery | str, tag: str) -> ConjunctiveQuery:
        """The base-schema query pinned to one registered snapshot."""
        self._check_tag(tag)
        if isinstance(query, str):
            query = parse_query(query)
        return tag_query(query, tag)

    # -- planned evaluation ---------------------------------------------------

    def plan(self, query: ConjunctiveQuery | str, tag: str) -> QueryPlan:
        """The cached cost-based plan for ``query`` as of ``tag``."""
        return self.planner.plan(self.tagged(query, tag))

    def evaluate(
        self,
        query: ConjunctiveQuery | str,
        tag: str,
        parallelism: int = 1,
        use_processes: bool = False,
    ) -> list[tuple[Any, ...]]:
        """Evaluate a base-schema query against one snapshot, planned.

        Results are identical to evaluating the query against the
        original snapshot database directly.
        """
        return evaluate_query(
            self.tagged(query, tag),
            self.db,
            planner=self.planner,
            parallelism=parallelism,
            use_processes=use_processes,
        )

    def explain(self, query: ConjunctiveQuery | str, tag: str) -> str:
        """EXPLAIN for the snapshot-pinned plan."""
        return (
            f"as of {tag!r}: " + self.plan(query, tag).explain()
        )

    # -- citations ------------------------------------------------------------

    @property
    def citation_engine(self) -> Any:
        """The lifted-registry citation engine (requires a registry)."""
        if self._engine is None:
            raise VersionError(
                "no registry: construct with registry=... to cite"
            )
        return self._engine

    def cite(self, query: ConjunctiveQuery | str, tag: str) -> Any:
        """Cite a base-schema query as of one snapshot.

        The pinned tag constants are absorbed into the lifted views'
        timestamp λ-parameters by the ordinary rewriting machinery, so
        citation records carry the snapshot tag.
        """
        return self.citation_engine.cite(self.tagged(query, tag))
