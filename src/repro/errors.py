"""Exception hierarchy for the ``repro`` data-citation library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The hierarchy mirrors the package
layout: schema/instance errors from the relational substrate, query errors
from the conjunctive-query layer, view errors from the citation-view layer,
rewriting errors from the rewriting engine, and citation errors from the
citation algebra.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


# ---------------------------------------------------------------------------
# Relational substrate
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """A relation schema or database schema is ill-formed."""


class UnknownRelationError(SchemaError):
    """A relation name was referenced that is not part of the schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class ArityError(SchemaError):
    """A tuple or atom has the wrong number of fields for its relation."""

    def __init__(self, relation: str, expected: int, got: int) -> None:
        super().__init__(
            f"relation {relation!r} has arity {expected}, got {got} fields"
        )
        self.relation = relation
        self.expected = expected
        self.got = got


class IntegrityError(ReproError):
    """A database update violated a key or foreign-key constraint."""


class KeyViolationError(IntegrityError):
    """Inserting a tuple would duplicate a primary-key value."""


class ForeignKeyViolationError(IntegrityError):
    """A tuple references a key value that does not exist."""


class TypeMismatchError(ReproError):
    """A value does not belong to the declared attribute domain."""


# ---------------------------------------------------------------------------
# Conjunctive queries
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """A conjunctive query is ill-formed."""


class UnsafeQueryError(QueryError):
    """A head/comparison variable does not occur in any relational atom."""


class ParseError(QueryError):
    """A query string could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class UnsatisfiableQueryError(QueryError):
    """The comparison predicates of a query are contradictory."""


class MixedTypeComparisonWarning(ReproError, UserWarning):
    """A comparison mixed incomparable types and was treated as false.

    Evaluation treats ``TypeError`` from a comparison (e.g. ``int < str``)
    as "binding does not satisfy the atom" — sound for set semantics, but
    a query whose comparisons *always* mix types silently returns an
    empty result.  The executor emits this warning once per query
    execution so such queries are debuggable.
    """

    def __init__(
        self,
        query_name: str,
        comparison: str,
        left_type: str,
        right_type: str,
    ) -> None:
        super().__init__(
            f"query {query_name!r}: comparison {comparison} mixes "
            f"incomparable types ({left_type} vs {right_type}); treating "
            "it as false"
        )
        self.query_name = query_name
        self.comparison = comparison
        self.left_type = left_type
        self.right_type = right_type


# ---------------------------------------------------------------------------
# Citation views
# ---------------------------------------------------------------------------


class ViewError(ReproError):
    """A citation view definition is ill-formed."""


class DuplicateViewError(ViewError):
    """Two views with the same name were registered."""


class ParameterError(ViewError):
    """View λ-parameters are inconsistent or a wrong valuation was given."""


# ---------------------------------------------------------------------------
# Rewriting
# ---------------------------------------------------------------------------


class RewritingError(ReproError):
    """The rewriting engine was used incorrectly."""


class NoRewritingError(RewritingError):
    """No rewriting satisfying the requested constraints exists."""


# ---------------------------------------------------------------------------
# Citation algebra
# ---------------------------------------------------------------------------


class CitationError(ReproError):
    """Citation construction failed."""


class PolicyError(CitationError):
    """A citation policy is ill-formed or incompatible with the request."""


class FormattingError(CitationError):
    """A citation function could not format its input."""


# ---------------------------------------------------------------------------
# Fixity / versioning
# ---------------------------------------------------------------------------


class VersionError(ReproError):
    """A versioned-database operation referenced an unknown version."""
