"""Command-line interface: cite queries against a project file.

A *project file* (see :mod:`repro.relational.io`) bundles a schema, its
data, and the owner's citation views.  The CLI covers the owner/user loop
end to end:

.. code-block:: bash

    python -m repro.cli init-demo gtopdb.json       # write a demo project
    python -m repro.cli views gtopdb.json           # list citation views
    python -m repro.cli rewrite gtopdb.json 'Q(N) :- Family(F,N,Ty), Ty = "gpcr"'
    python -m repro.cli cite gtopdb.json 'Q(N) :- Family(F,N,Ty), Ty = "gpcr"'
    python -m repro.cli cite gtopdb.json --sql "SELECT FName FROM Family" \
        --policy comprehensive --format text
    python -m repro.cli plan gtopdb.json 'Q(N) :- Family(F,N,Ty), Ty = "gpcr"'
    python -m repro.cli plan gtopdb.json 'Q(N) :- Family(F,N,Ty), F < "F0020"'
    python -m repro.cli analyze gtopdb.json 'Q(N) :- Family(F,N,Ty), Ty = "x", Ty = "y"'
    python -m repro.cli cite-batch gtopdb.json queries.txt --stats
    python -m repro.cli cite-batch gtopdb.json queries.txt --parallelism 4
    python -m repro.cli serve --db gtopdb.json --port 8747 --shards 4
    python -m repro.cli replay --url http://127.0.0.1:8747 queries.txt

``serve`` starts the long-running asyncio citation service
(:mod:`repro.service`): one warm engine whose plan cache, rewriting
cache, sub-plan memo, and indexes amortize across all HTTP traffic;
``replay`` drives a query file against a live server and reports the
server-side cache hits the traffic earned.

Exit codes: 0 on success, 1 on usage errors, 2 on processing errors,
3 when static analysis proves the query can never return a row (the
``QA2xx`` diagnostics of :mod:`repro.analysis.diagnostics`, reported by
``analyze`` and by ``plan``/``cite`` on such queries; the service
answers HTTP 422 for the same condition).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.citation.formatting import (
    render_bibtex,
    render_json,
    render_text,
    render_xml,
)
from repro.citation.generator import CitationEngine
from repro.citation.policy import (
    compact_policy,
    comprehensive_policy,
    focused_policy,
)
from repro.errors import ReproError
from repro.relational.io import dump_project, load_project
from repro.rewriting.engine import enumerate_rewritings
from repro.views.citation_view import CitationView
from repro.views.registry import ViewRegistry

_POLICIES = {
    "comprehensive": lambda registry: comprehensive_policy(),
    "focused": focused_policy,
    "compact": compact_policy,
}

_FORMATS = {
    "json": render_json,
    "text": render_text,
    "xml": render_xml,
    "bibtex": render_bibtex,
}


def _load(path: str) -> tuple[Any, ViewRegistry]:
    db, view_specs = load_project(path)
    views = [
        CitationView.from_strings(
            view=spec["view"],
            citation_query=spec["citation_query"],
            labels=spec.get("labels"),
            description=spec.get("description", ""),
        )
        for spec in view_specs
    ]
    return db, ViewRegistry(db.schema, views)


def _build_engine(db: Any, registry: ViewRegistry,
                  policy_name: str) -> CitationEngine:
    try:
        policy_factory = _POLICIES[policy_name]
    except KeyError:
        raise ReproError(
            f"unknown policy {policy_name!r}; choose from "
            f"{sorted(_POLICIES)}"
        ) from None
    return CitationEngine(db, registry, policy=policy_factory(registry))


def cmd_init_demo(args: argparse.Namespace) -> int:
    """Write the paper's GtoPdb instance + views V1-V5 as a project file."""
    from repro.gtopdb.sample import paper_database

    db = paper_database()
    views = [
        {
            "view": "lambda F. V1(F, N, Ty) :- Family(F, N, Ty)",
            "citation_query": (
                "lambda F. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), "
                "Person(C, Pn, A)"
            ),
            "labels": ["ID", "Name", "Committee"],
        },
        {
            "view": "lambda F. V2(F, Tx) :- FamilyIntro(F, Tx)",
            "citation_query": (
                "lambda F. CV2(F, N, Tx, Pn) :- Family(F, N, Ty), "
                "FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A)"
            ),
            "labels": ["ID", "Name", "Text", "Contributors"],
        },
        {
            "view": "V3(F, N, Ty) :- Family(F, N, Ty)",
            "citation_query": (
                'CV3(X1, X2) :- MetaData(T1, X1), T1 = "Owner", '
                'MetaData(T2, X2), T2 = "URL"'
            ),
            "labels": ["Owner", "URL"],
        },
        {
            "view": "lambda Ty. V4(F, N, Ty) :- Family(F, N, Ty)",
            "citation_query": (
                "lambda Ty. CV4(Ty, N, Pn) :- Family(F, N, Ty), FC(F, C), "
                "Person(C, Pn, A)"
            ),
            "labels": ["Type", "Name", "Committee"],
        },
        {
            "view": (
                "lambda Ty. V5(F, N, Ty, Tx) :- Family(F, N, Ty), "
                "FamilyIntro(F, Tx)"
            ),
            "citation_query": (
                "lambda Ty. CV5(N, Ty, Tx, Pn) :- Family(F, N, Ty), "
                "FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A)"
            ),
            "labels": ["Name", "Type", "Text", "Contributors"],
        },
    ]
    dump_project(db, args.project, views=views)
    print(f"wrote demo project to {args.project}")
    return 0


def cmd_views(args: argparse.Namespace) -> int:
    """List the project's citation views."""
    __, registry = _load(args.project)
    for view in registry:
        lambda_part = ""
        if view.is_parameterized:
            names = ", ".join(p.name for p in view.parameters)
            lambda_part = f" [λ {names}]"
        print(f"{view.name}{lambda_part}: {view.view}")
        if view.description:
            print(f"    {view.description}")
    return 0


def cmd_rewrite(args: argparse.Namespace) -> int:
    """Show the Def 2.2 rewritings of a query."""
    from repro.cq.parser import parse_query

    db, registry = _load(args.project)
    query = parse_query(args.query)
    rewritings = enumerate_rewritings(query, registry)
    if not rewritings:
        print("no rewritings (unsatisfiable query?)")
        return 0
    for rewriting in rewritings:
        kind = "total" if rewriting.is_total else "partial"
        print(f"[{kind}, {rewriting.view_count} view(s)] {rewriting.query}")
    return 0


def _is_union_text(text: str) -> bool:
    """True when Datalog text stacks more than one rule (a UCQ)."""
    rules = [
        chunk for chunk in text.replace(";", "\n").splitlines()
        if chunk.strip()
    ]
    return len(rules) > 1


def _parse_for_analysis(text: str, db: Any, sql: bool) -> Any:
    """The query object behind CLI text: a CQ, or a UnionQuery."""
    if sql:
        from repro.cq.sql_parser import parse_sql

        return parse_sql(text, db.schema)
    if _is_union_text(text):
        from repro.cq.ucq import parse_union_query

        return parse_union_query(text)
    from repro.cq.parser import parse_query

    return parse_query(text)


def _analyze(query: Any, db: Any) -> list:
    """Diagnostics for a parsed CQ or union (see ``repro analyze``)."""
    from repro.analysis import analyze_query, analyze_union
    from repro.cq.ucq import UnionQuery

    if isinstance(query, UnionQuery):
        return analyze_union(query, db)
    return analyze_query(query, db)


def _report_empty_query(diagnostics: list) -> int:
    """Print the error-severity findings; exit status 3 (provably empty)."""
    for finding in diagnostics:
        if finding.severity == "error":
            print(f"error: {finding.describe()}", file=sys.stderr)
    return 3


def cmd_analyze(args: argparse.Namespace) -> int:
    """Run static analysis on a query and print the QA findings.

    ``QA1xx`` findings are warnings (legal but suspicious query shapes:
    cartesian products, subsumed union disjuncts, dangling atoms,
    mixed-type comparison risks); ``QA2xx`` findings are errors — the
    query can provably never return a row — and set exit status 3.

    ``--lint`` additionally runs the repo-invariant lint
    (:mod:`repro.analysis.lint`, the ``RL1xx`` codes) over the
    installed ``repro`` sources and prints any findings after the QA
    diagnostics; RL findings alone set exit status 1.
    """
    from repro.analysis import has_errors, render_diagnostics

    db, __ = _load(args.project)
    query = _parse_for_analysis(args.query, db, args.sql)
    diagnostics = _analyze(query, db)
    print(render_diagnostics(diagnostics))
    lint_findings = []
    if args.lint:
        from pathlib import Path

        import repro
        from repro.analysis.lint import run_lint

        lint_findings = run_lint([Path(repro.__file__).parent])
        if lint_findings:
            print()
            for finding in lint_findings:
                print(finding.describe())
            print(f"{len(lint_findings)} RL finding(s)")
        else:
            print("\nrepro lint: clean")
    if has_errors(diagnostics):
        return 3
    return 1 if lint_findings else 0


def cmd_cite(args: argparse.Namespace) -> int:
    """Cite a query (Datalog by default, SQL with --sql).

    Multi-rule Datalog text (rules separated by ``;`` or newlines) is
    cited as a union of conjunctive queries: per-tuple citations combine
    with ``+`` across the disjuncts that produce the tuple.

    A query that static analysis proves empty (contradictory equalities,
    an empty range interval, a false ground comparison) is reported with
    its QA diagnostic on stderr and exit status 3 instead of an empty
    citation.
    """
    from repro.analysis import has_errors

    db, registry = _load(args.project)
    diagnostics = _analyze(
        _parse_for_analysis(args.query, db, args.sql), db
    )
    if has_errors(diagnostics):
        return _report_empty_query(diagnostics)
    engine = _build_engine(db, registry, args.policy)
    if args.sql:
        result = engine.cite_sql(args.query)
    elif _is_union_text(args.query):
        result = engine.cite_union(args.query)
    else:
        result = engine.cite(args.query)
    renderer = _FORMATS[args.format]
    print(renderer(result))
    if args.explain:
        from repro.citation.explain import explain
        print()
        print(explain(result).describe())
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Show the cost-based query plan (EXPLAIN) for a query.

    The rendering lists each step's single chosen access path — hash
    index, ordered index (ranges served by sorted indexes), or
    composite index (equality + range served by one
    hash-lookup-plus-bisect probe) — with the comparisons it absorbs,
    plus per-step residual checks.

    Multi-rule Datalog text plans as a union: one plan per disjunct,
    with the disjuncts' shared join prefixes reserved in a sub-plan
    memo so the EXPLAIN shows which steps would be evaluated once and
    shared (``shared prefix:`` lines).
    """
    from repro.analysis import has_errors
    from repro.cq.plan import plan_query
    from repro.cq.ucq import UnionQuery

    db, __ = _load(args.project)
    query = _parse_for_analysis(args.query, db, args.sql)
    diagnostics = _analyze(query, db)
    if isinstance(query, UnionQuery):
        from repro.cq.subplan import SubplanMemo

        print(query.explain(db, memo=SubplanMemo(),
                            diagnostics=diagnostics))
    else:
        print(plan_query(query, db).explain(diagnostics=diagnostics))
    if has_errors(diagnostics):
        return _report_empty_query(diagnostics)
    return 0


def cmd_cite_batch(args: argparse.Namespace) -> int:
    """Cite a file of queries (one Datalog query per line) as one batch.

    Blank lines and ``#`` comments are skipped.  Plans, rewritings, and
    materialized-view indexes are shared across the whole batch;
    --parallelism N evaluates each query's join pipeline on N workers
    (--processes switches them from threads to a process pool);
    --shards N partitions relation storage into N shards so first-step
    scans/probes fan out per shard and process workers receive only
    their shard's slice; --analyze runs the QA diagnostics over every
    query and folds per-code counters into the report; --stats prints
    the cache-effectiveness report afterwards.
    """
    from repro.workload.runner import run_workload

    db, registry = _load(args.project)
    engine = _build_engine(db, registry, args.policy)
    with open(args.queries, encoding="utf-8") as handle:
        queries = [
            line.strip()
            for line in handle
            if line.strip() and not line.strip().startswith("#")
        ]
    report = run_workload(
        engine,
        queries,
        parallelism=args.parallelism,
        use_processes=args.processes,
        shards=args.shards,
        analyze=args.analyze,
    )
    renderer = _FORMATS[args.format]
    for result in report.results:
        print(renderer(result))
    if args.stats:
        print(report.describe(), file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the asyncio citation service over one shared warm engine.

    Binds an HTTP/1.1 front end (see :mod:`repro.service`) and serves
    ``/cite``, ``/cite-batch``, ``/plan``, ``/analyze``, ``/insert``,
    ``/delete``, and ``/stats`` until SIGTERM/SIGINT, then drains
    gracefully (stops accepting, finishes in-flight requests, exits 0).
    Concurrent single-query ``/cite`` traffic is micro-batched into
    ``cite_batch`` calls so it shares the sub-plan memo across clients.
    """
    import asyncio

    from repro.service.server import CitationService, ServiceConfig

    db, registry = _load(args.db)
    engine = _build_engine(db, registry, args.policy)
    if args.shards is not None:
        db.reshard(args.shards)
    if args.parallelism is not None:
        engine.parallelism = args.parallelism
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        request_timeout_s=args.timeout,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
    )
    if args.verbose:
        import logging

        logging.basicConfig(level=logging.INFO, format="%(message)s")
    service = CitationService(engine, config)

    async def main() -> None:
        await service.start()
        # Parseable by wrappers (the smoke harness reads the port off
        # this line when --port 0 binds an ephemeral one).
        print(
            f"serving {args.db} on http://{config.host}:{service.port} "
            f"(shards={db.shards}, policy={args.policy})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        import signal as signal_module

        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop.wait()
        finally:
            await service.shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a query file against a live citation service.

    POSTs every query (one Datalog query per line; blank lines and
    ``#`` comments skipped) to the server's ``/cite`` endpoint in order
    and prints the replay report: per-status counts, latency, and the
    *server-side* cache-hit deltas the traffic earned — the warm-cache
    amortization a long-running service exists for.  Exits 2 when any
    request failed with a 5xx or transport error.
    """
    from repro.workload.runner import replay_workload

    with open(args.queries, encoding="utf-8") as handle:
        queries = [
            line.strip()
            for line in handle
            if line.strip() and not line.strip().startswith("#")
        ]
    report = replay_workload(args.url, queries, timeout=args.timeout)
    print(report.describe())
    server_errors = sum(
        count for status, count in report.statuses.items()
        if status >= 500
    )
    return 2 if server_errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fine-grained data citation (Davidson et al., CIDR'17)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    init_demo = commands.add_parser(
        "init-demo", help="write the GtoPdb demo project file"
    )
    init_demo.add_argument("project")
    init_demo.set_defaults(func=cmd_init_demo)

    views = commands.add_parser("views", help="list citation views")
    views.add_argument("project")
    views.set_defaults(func=cmd_views)

    rewrite = commands.add_parser(
        "rewrite", help="show rewritings of a query"
    )
    rewrite.add_argument("project")
    rewrite.add_argument("query")
    rewrite.set_defaults(func=cmd_rewrite)

    cite = commands.add_parser("cite", help="cite a query")
    cite.add_argument("project")
    cite.add_argument("query")
    cite.add_argument("--sql", action="store_true",
                      help="interpret the query as SQL")
    cite.add_argument("--policy", default="focused",
                      choices=sorted(_POLICIES))
    cite.add_argument("--format", default="json", choices=sorted(_FORMATS))
    cite.add_argument("--explain", action="store_true",
                      help="append a human-readable explanation")
    cite.set_defaults(func=cmd_cite)

    plan = commands.add_parser(
        "plan", help="show the cost-based query plan (EXPLAIN)"
    )
    plan.add_argument("project")
    plan.add_argument("query")
    plan.add_argument("--sql", action="store_true",
                      help="interpret the query as SQL")
    plan.set_defaults(func=cmd_plan)

    analyze = commands.add_parser(
        "analyze",
        help="static analysis: QA diagnostics for a query "
             "(exit 3 when provably empty)",
    )
    analyze.add_argument("project")
    analyze.add_argument("query")
    analyze.add_argument("--sql", action="store_true",
                         help="interpret the query as SQL")
    analyze.add_argument("--lint", action="store_true",
                         help="also run the RL1xx repo-invariant lint "
                              "over the installed repro sources "
                              "(exit 1 on findings)")
    analyze.set_defaults(func=cmd_analyze)

    cite_batch = commands.add_parser(
        "cite-batch",
        help="cite a file of queries as one batch (shared plans/rewritings)",
    )
    cite_batch.add_argument("project")
    cite_batch.add_argument("queries",
                            help="file with one Datalog query per line")
    cite_batch.add_argument("--policy", default="focused",
                            choices=sorted(_POLICIES))
    cite_batch.add_argument("--format", default="json",
                            choices=sorted(_FORMATS))
    cite_batch.add_argument("--parallelism", type=int, default=1,
                            metavar="N",
                            help="evaluate each query's join pipeline on "
                                 "N parallel workers (default 1: serial)")
    cite_batch.add_argument("--processes", action="store_true",
                            help="with --parallelism, use a process pool "
                                 "instead of threads")
    cite_batch.add_argument("--shards", type=int, default=None,
                            metavar="N",
                            help="partition relation storage into N shards "
                                 "(shard-parallel scans/probes; process "
                                 "workers receive only their shard's slice)")
    cite_batch.add_argument("--stats", action="store_true",
                            help="print cache-effectiveness statistics")
    cite_batch.add_argument("--analyze", action="store_true",
                            help="aggregate per-query QA diagnostics "
                                 "into the --stats report")
    cite_batch.set_defaults(func=cmd_cite_batch)

    serve = commands.add_parser(
        "serve",
        help="run the asyncio citation service (one warm shared engine)",
    )
    serve.add_argument("--db", required=True, metavar="PROJECT",
                       help="project file (schema + data + views)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8747,
                       help="bind port (0 picks an ephemeral port, "
                            "printed on startup)")
    serve.add_argument("--shards", type=int, default=None, metavar="N",
                       help="partition relation storage into N shards")
    serve.add_argument("--parallelism", type=int, default=None,
                       metavar="N",
                       help="shard-and-merge worker count per evaluation")
    serve.add_argument("--policy", default="focused",
                       choices=sorted(_POLICIES))
    serve.add_argument("--timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-request deadline (expiry answers 504)")
    serve.add_argument("--max-pending", type=int, default=64, metavar="N",
                       help="admission-queue bound; beyond it requests "
                            "get 429 + Retry-After")
    serve.add_argument("--max-batch", type=int, default=16, metavar="N",
                       help="largest cross-client micro-batch")
    serve.add_argument("--verbose", action="store_true",
                       help="structured request logging to stderr")
    serve.set_defaults(func=cmd_serve)

    replay = commands.add_parser(
        "replay",
        help="replay a query file against a live citation service",
    )
    replay.add_argument("queries",
                        help="file with one Datalog query per line")
    replay.add_argument("--url", required=True,
                        help="service base URL, e.g. "
                             "http://127.0.0.1:8747")
    replay.add_argument("--timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="client-side timeout per request")
    replay.set_defaults(func=cmd_replay)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
