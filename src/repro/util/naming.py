"""Deterministic fresh-name generation.

Query rewriting and view expansion need fresh variable names that are
guaranteed not to collide with existing ones.  :class:`NameSupply` hands out
names of the form ``prefix_0, prefix_1, ...`` while skipping any name in a
caller-supplied avoid set, so expansion is deterministic and reproducible.
"""

from __future__ import annotations

from collections.abc import Iterable


class NameSupply:
    """A deterministic supply of fresh names.

    Parameters
    ----------
    avoid:
        Names that must never be produced (e.g. variables already used in
        a query).
    prefix:
        Prefix for generated names.
    """

    def __init__(self, avoid: Iterable[str] = (), prefix: str = "_v") -> None:
        self._avoid = set(avoid)
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: str | None = None) -> str:
        """Return a new name, never returned before and not in ``avoid``.

        If ``hint`` is given and unused, the hint itself is returned, which
        keeps expanded queries readable.
        """
        if hint is not None and hint not in self._avoid:
            self._avoid.add(hint)
            return hint
        while True:
            candidate = f"{self._prefix}{self._counter}"
            self._counter += 1
            if candidate not in self._avoid:
                self._avoid.add(candidate)
                return candidate

    def reserve(self, names: Iterable[str]) -> None:
        """Mark additional names as used."""
        self._avoid.update(names)


def fresh_variable_name(avoid: Iterable[str], hint: str = "_v") -> str:
    """Return a single fresh name not contained in ``avoid``."""
    avoid_set = set(avoid)
    if hint not in avoid_set:
        return hint
    counter = 0
    while f"{hint}{counter}" in avoid_set:
        counter += 1
    return f"{hint}{counter}"
