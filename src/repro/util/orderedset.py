"""An insertion-ordered set.

Python's built-in :class:`set` has nondeterministic iteration order across
processes (string hashing is salted), which would make rewriting enumeration
and citation output order flap between runs.  ``OrderedSet`` preserves
insertion order while giving O(1) membership, so every pipeline stage in the
library is deterministic.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, MutableSet
from typing import TypeVar

T = TypeVar("T", bound=Hashable)


class OrderedSet(MutableSet[T]):
    """A set that iterates in insertion order."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._items: dict[T, None] = dict.fromkeys(items)

    # -- core set protocol --------------------------------------------------

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: T) -> None:
        self._items[item] = None

    def discard(self, item: T) -> None:
        self._items.pop(item, None)

    # -- conveniences --------------------------------------------------------

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self.add(item)

    def union(self, other: Iterable[T]) -> "OrderedSet[T]":
        result: OrderedSet[T] = OrderedSet(self)
        result.update(other)
        return result

    def intersection(self, other: Iterable[T]) -> "OrderedSet[T]":
        other_set = set(other)
        return OrderedSet(item for item in self if item in other_set)

    def difference(self, other: Iterable[T]) -> "OrderedSet[T]":
        other_set = set(other)
        return OrderedSet(item for item in self if item not in other_set)

    def copy(self) -> "OrderedSet[T]":
        return OrderedSet(self)

    def __repr__(self) -> str:
        return f"OrderedSet({list(self._items)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __hash__(self) -> int:  # type: ignore[override]
        # Order-insensitive hash so equal sets hash equally.
        return hash(frozenset(self._items))
