"""JSON-record helpers used by citation combiners and formatters.

The paper's Example 3.5 interprets the citation operators over JSON-like
records: ``·`` may be *union of records* (keep both records side by side) or
*join/merge* (factor out common fields and union the rest).  These helpers
implement that record algebra over plain Python dicts/lists.
"""

from __future__ import annotations

import json
from typing import Any


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to a canonical (sorted-key, compact) JSON string.

    Used to hash/compare citation records deterministically.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def union_records(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Union of records: keep every distinct record (Example 3.5, option 1).

    Duplicates (by canonical JSON) are collapsed; order of first occurrence
    is preserved.
    """
    seen: set[str] = set()
    result: list[dict[str, Any]] = []
    for record in records:
        key = canonical_json(record)
        if key not in seen:
            seen.add(key)
            result.append(record)
    return result


def _merge_values(left: Any, right: Any) -> Any:
    """Merge two field values: equal scalars collapse, lists union, dicts merge."""
    if left == right:
        return left
    if isinstance(left, dict) and isinstance(right, dict):
        return merge_records([left, right])
    left_list = left if isinstance(left, list) else [left]
    right_list = right if isinstance(right, list) else [right]
    merged = list(left_list)
    for item in right_list:
        if item not in merged:
            merged.append(item)
    return merged


def merge_records(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Join/merge records: factor out common fields (Example 3.5, option 2).

    Fields present in several records with equal values appear once; fields
    with conflicting values are unioned into a list.  This reproduces the
    paper's merge of the family-11 citations::

        {ID, Name, Committee} . {ID, Name, Text, Contributors}
        ==> {ID, Name, Committee, Text, Contributors}
    """
    result: dict[str, Any] = {}
    for record in records:
        for field, value in record.items():
            if field in result:
                result[field] = _merge_values(result[field], value)
            else:
                result[field] = value
    return result
