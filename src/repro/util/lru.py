"""Shared LRU-bounding arithmetic for the caches.

The rewriting cache, the plan cache, and the sub-plan memo all bound
their ``OrderedDict`` stores the same way: newest at the end, evict from
the front beyond ``max_entries``, count evictions.  These helpers keep
that policy in one place.
"""

from __future__ import annotations

from collections import OrderedDict


def check_max_entries(max_entries: int) -> int:
    """Validate a cache bound (every bounded store requires >= 1)."""
    if max_entries < 1:
        raise ValueError("max_entries must be at least 1")
    return max_entries


def evict_lru(store: OrderedDict, max_entries: int) -> int:
    """Pop least-recently-used entries beyond ``max_entries``.

    Returns the number of evictions so callers can maintain their
    ``evictions`` counters (or ignore it, as the reservation set does).

    Safe under concurrent eviction: ``len`` and ``popitem`` are separate
    operations, so another thread draining the same store can empty it
    between the two — that surfaces as ``popitem`` raising ``KeyError``
    on an empty dict, which just means the other thread finished the
    job.
    """
    evicted = 0
    while len(store) > max_entries:
        try:
            store.popitem(last=False)
        except KeyError:
            break
        evicted += 1
    return evicted
