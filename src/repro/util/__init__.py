"""Small shared utilities: fresh-name supply, ordered sets, JSON helpers."""

from repro.util.naming import NameSupply, fresh_variable_name
from repro.util.orderedset import OrderedSet
from repro.util.jsonutil import canonical_json, merge_records, union_records

__all__ = [
    "NameSupply",
    "fresh_variable_name",
    "OrderedSet",
    "canonical_json",
    "merge_records",
    "union_records",
]
