"""Stable-coded lint diagnostics for conjunctive and union queries.

Where the verifier (:mod:`repro.analysis.verifier`) rejects *plans* that
violate the planning contract, this module flags *queries* that are
legal but almost certainly not what the author meant — the kind of
mistake that silently cites the wrong thing rather than erroring.

Codes are stable (tests and tooling may match on them):

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
QA101     warning   cartesian-product step: a join step probes nothing
QA102     warning   union disjunct subsumed by another disjunct
QA103     warning   dangling atom: shares no variables with the rest
QA104     warning   single-use body variable (possible typo)
QA105     warning   mixed-type comparison risk (from statistics)
QA110     warning   union disjunct is provably empty
QA201     error     contradictory equality comparisons
QA202     error     provably empty range interval
QA203     error     false ground comparison
QA204     error     union provably empty (every disjunct is)
========  ========  =====================================================

``QA1xx`` findings are advisory; ``QA2xx`` findings mean the query can
never return a row, which the CLI (``repro analyze``, and ``plan`` /
``cite`` on such queries) reports with a distinct exit status.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.cq.containment import is_contained_in
from repro.cq.plan import (
    _RANGE_OPS,
    VirtualRelations,
    _EqualityClosure,
    _IntervalClosure,
    _statistics_for_atom,
    plan_query,
)
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.cq.ucq import UnionQuery
from repro.errors import QueryError, ReproError
from repro.relational.database import Database

#: Severity levels, in increasing order of trouble.
WARNING = "warning"
ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a severity, and a located message."""

    code: str
    severity: str
    message: str
    #: 1-based join-step number, when the finding is about a plan step.
    step: int | None = None
    #: 0-based disjunct index, when the finding is about a union member.
    disjunct: int | None = None

    def describe(self) -> str:
        """Render the finding the way ``repro analyze`` prints it."""
        where = ""
        if self.disjunct is not None:
            where += f" [disjunct {self.disjunct}]"
        if self.step is not None:
            where += f" [step {self.step}]"
        return f"{self.code} {self.severity}{where}: {self.message}"

    def located(self, disjunct: int) -> "Diagnostic":
        """The same finding, attributed to a union disjunct."""
        return Diagnostic(
            self.code, self.severity, self.message, self.step, disjunct
        )


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any finding is error-severity (query provably empty)."""
    return any(d.severity == ERROR for d in diagnostics)


def _type_category(value: object) -> str:
    """Coarse comparability class of a value (bool/int/float compare)."""
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return "number"
    return type(value).__name__


def _closure_diagnostics(
    query: ConjunctiveQuery,
) -> tuple[list[Diagnostic], _EqualityClosure, _IntervalClosure]:
    """Replay the planner's pushdown pass; report provable emptiness."""
    findings: list[Diagnostic] = []
    closure = _EqualityClosure()
    range_candidates = []
    for comparison in query.comparisons:
        if comparison.is_ground:
            if not comparison.evaluate_ground():
                findings.append(Diagnostic(
                    "QA203",
                    ERROR,
                    f"ground comparison {comparison!r} is always false: "
                    "the query can never return a row",
                ))
            continue
        if closure.absorb(comparison):
            continue
        if comparison.op in _RANGE_OPS:
            range_candidates.append(comparison)
    if closure.contradiction:
        findings.append(Diagnostic(
            "QA201",
            ERROR,
            "equality comparisons force one variable to two different "
            "constants: the query can never return a row",
        ))
    intervals = _IntervalClosure(closure)
    for comparison in range_candidates:
        intervals.absorb(comparison)
    intervals.finalize()
    if not closure.contradiction and intervals.empty:
        findings.append(Diagnostic(
            "QA202",
            ERROR,
            "range comparisons close an empty interval: the query can "
            "never return a row",
        ))
    return findings, closure, intervals


def _shape_diagnostics(query: ConjunctiveQuery) -> list[Diagnostic]:
    """Syntactic lints: dangling atoms and single-use variables."""
    findings: list[Diagnostic] = []
    head_vars = set(query.head_variables())
    atom_vars = [set(atom.variables()) for atom in query.atoms]
    comparison_vars: set[Variable] = set()
    for comparison in query.comparisons:
        comparison_vars.update(comparison.variables())

    for index, variables in enumerate(atom_vars):
        if len(query.atoms) < 2:
            break  # a single atom is the whole query, not a dangler
        others: set[Variable] = set(head_vars) | comparison_vars
        for other_index, other_vars in enumerate(atom_vars):
            if other_index != index:
                others |= other_vars
        if not (variables & others):
            findings.append(Diagnostic(
                "QA103",
                WARNING,
                f"atom {query.atoms[index]!r} shares no variables with "
                "the head or the rest of the body: it only tests "
                "non-emptiness (and multiplies multiplicities)",
            ))

    occurrences: Counter = Counter()
    for atom in query.atoms:
        occurrences.update(atom.variables())
    for comparison in query.comparisons:
        occurrences.update(comparison.variables())
    for var, count in occurrences.items():
        if var.name.startswith("_"):
            continue  # conventional don't-care spelling
        if count == 1 and var not in head_vars and var not in query.parameters:
            findings.append(Diagnostic(
                "QA104",
                WARNING,
                f"variable {var!r} occurs exactly once and is not "
                "exported through the head: possibly a typo for another "
                "variable",
            ))
    return findings


def _statistics_diagnostics(
    query: ConjunctiveQuery,
    db: Database,
    virtual: VirtualRelations | None,
) -> list[Diagnostic]:
    """QA105: comparisons that statistics show to be mixed-type risks.

    A comparison between a variable and a constant whose column (per the
    maintained statistics) is mixed-type, or holds values of a different
    comparability class than the constant, will raise
    :class:`~repro.errors.MixedTypeComparisonWarning` at run time and
    reject every affected row — legal, but usually a schema
    misunderstanding.
    """
    findings: list[Diagnostic] = []
    positions: dict[Variable, list[tuple[int, int]]] = {}
    for atom_index, atom in enumerate(query.atoms):
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                positions.setdefault(term, []).append((atom_index, position))
    stats_cache: dict[int, object] = {}

    def stats_for(atom_index: int):
        if atom_index not in stats_cache:
            try:
                stats_cache[atom_index] = _statistics_for_atom(
                    query.atoms[atom_index], db, virtual
                )[0]
            except (QueryError, ReproError):
                stats_cache[atom_index] = None
        return stats_cache[atom_index]

    flagged: set[tuple] = set()
    for comparison in query.comparisons:
        if comparison.is_ground or comparison.op not in _RANGE_OPS:
            continue
        left, right = comparison.left, comparison.right
        if isinstance(left, Variable) and isinstance(right, Constant):
            var, const = left, right
        elif isinstance(right, Variable) and isinstance(left, Constant):
            var, const = right, left
        else:
            continue
        for atom_index, position in positions.get(var, ()):
            stats = stats_for(atom_index)
            if stats is None or stats.cardinality == 0:
                continue
            sample = stats.min_value(position)
            if sample is None and stats.histogram(position) is None:
                reason = (
                    f"column {position} of "
                    f"{query.atoms[atom_index].relation!r} mixes value "
                    "types that do not order against each other"
                )
            elif sample is not None and (
                _type_category(sample) != _type_category(const.value)
            ):
                reason = (
                    f"column {position} of "
                    f"{query.atoms[atom_index].relation!r} holds "
                    f"{_type_category(sample)} values but the comparison "
                    f"uses a {_type_category(const.value)} constant"
                )
            else:
                continue
            key = (comparison, atom_index, position)
            if key in flagged:
                continue
            flagged.add(key)
            findings.append(Diagnostic(
                "QA105",
                WARNING,
                f"comparison {comparison!r} risks mixed-type semantics: "
                f"{reason}; affected rows are rejected with a warning at "
                "run time",
            ))
            break
    return findings


def _plan_diagnostics(
    query: ConjunctiveQuery,
    db: Database,
    virtual: VirtualRelations | None,
) -> list[Diagnostic]:
    """QA101: join steps that probe nothing (cartesian products)."""
    findings: list[Diagnostic] = []
    try:
        plan = plan_query(query, db, virtual)
    except QueryError:
        return findings
    if plan.empty:
        return findings
    for number, step in enumerate(plan.steps, start=1):
        if number == 1:
            continue
        if not step.lookup_positions and step.range_position is None:
            findings.append(Diagnostic(
                "QA101",
                WARNING,
                f"step {number} scans {step.atom!r} with no probe: the "
                "join degenerates to a cartesian product (est. "
                f"{step.estimated_bindings:.0f} bindings)",
                step=number,
            ))
    return findings


def analyze_query(
    query: ConjunctiveQuery,
    db: Database | None = None,
    virtual: VirtualRelations | None = None,
) -> list[Diagnostic]:
    """Every finding for one conjunctive query, errors first.

    Without a database only the syntactic and closure-based checks run;
    with one, the statistics-backed lints (QA101 cartesian products,
    QA105 mixed-type risk) run too.
    """
    findings, __, __ = _closure_diagnostics(query)
    findings += _shape_diagnostics(query)
    if db is not None and not query.is_parameterized:
        findings += _statistics_diagnostics(query, db, virtual)
        if not has_errors(findings):
            findings += _plan_diagnostics(query, db, virtual)
    findings.sort(key=lambda d: (d.severity != ERROR, d.code))
    return findings


def analyze_union(
    union: UnionQuery,
    db: Database | None = None,
    virtual: VirtualRelations | None = None,
) -> list[Diagnostic]:
    """Every finding for a union: per-disjunct plus union-level checks.

    Per-disjunct emptiness errors are *demoted* to QA110 warnings — a
    union with one dead disjunct still returns rows — unless every
    disjunct is provably empty, which is the union-level error QA204.
    """
    findings: list[Diagnostic] = []
    empty_disjuncts: list[int] = []
    for index, disjunct in enumerate(union.disjuncts):
        per_disjunct = analyze_query(disjunct, db, virtual)
        if has_errors(per_disjunct):
            empty_disjuncts.append(index)
        for diagnostic in per_disjunct:
            if diagnostic.severity == ERROR:
                findings.append(Diagnostic(
                    "QA110",
                    WARNING,
                    f"disjunct {index} never contributes "
                    f"({diagnostic.code}: {diagnostic.message})",
                    disjunct=index,
                ))
            else:
                findings.append(diagnostic.located(index))

    if len(empty_disjuncts) == len(union.disjuncts):
        findings.append(Diagnostic(
            "QA204",
            ERROR,
            "every disjunct of the union is provably empty: the query "
            "can never return a row",
        ))

    for index, disjunct in enumerate(union.disjuncts):
        if index in empty_disjuncts:
            continue
        for other_index, other in enumerate(union.disjuncts):
            if other_index == index or other_index in empty_disjuncts:
                continue
            if not is_contained_in(disjunct, other):
                continue
            if other_index < index or not is_contained_in(other, disjunct):
                findings.append(Diagnostic(
                    "QA102",
                    WARNING,
                    f"disjunct {index} is subsumed by disjunct "
                    f"{other_index}: it contributes nothing to the union "
                    "(see UnionQuery.minimized())",
                    disjunct=index,
                ))
                break
    findings.sort(key=lambda d: (d.severity != ERROR, d.code))
    return findings


def render_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line rendering used by EXPLAIN and the CLI."""
    if not diagnostics:
        return "no findings"
    return "\n".join(d.describe() for d in diagnostics)
