"""Repo-invariant lint: AST rules for the conventions ruff can't see.

The concurrency sanitizer (:mod:`repro.analysis.sanitizer`) proves the
lane/shard/cache discipline at runtime; this package enforces the same
conventions *statically*, with stable ``RL1xx`` codes, so violations
fail CI before they ever run:

========  ==========================================================
RL101     engine/database mutation awaited directly in ``service/``
          async code instead of queued as an engine-lane job
RL102     cache-named dict attribute constructed without a bound
          (no ``*max*`` sibling attribute in the class)
RL103     lane submission / async engine call whose result is
          discarded (missing ``await`` — the job outcome is lost)
RL104     shard-internal attribute (``_rows``, ``_shards``, index
          structures…) accessed outside the ``relational/`` layer
RL105     bare ``except:``, or a broad ``except`` that only ``pass``es
          (silently swallowing engine failures)
========  ==========================================================

Run it with ``tools/run_repro_lint.py <paths>`` (the CI lint job does,
alongside ruff) or ``repro analyze --lint``; each rule is self-tested
against a fixture file it must flag.
"""

from __future__ import annotations

from repro.analysis.lint.rules import LintFinding, lint_file, run_lint

__all__ = ["LintFinding", "lint_file", "run_lint"]
