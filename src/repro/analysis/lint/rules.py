"""The ``RL1xx`` rule implementations.

Each rule is a visitor pass over one file's AST.  Rules are
deliberately narrow: they encode *this repository's* conventions (the
ones ARCHITECTURE.md's concurrency model documents and the runtime
sanitizer enforces dynamically), not general Python style — ruff owns
that.  Codes are stable: tooling and suppressions may rely on them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

#: Database/engine mutators that must go through the engine lane in
#: service code (RL101).
MUTATOR_NAMES = frozenset({
    "insert",
    "insert_all",
    "insert_batch",
    "insert_many",
    "delete",
    "reshard",
    "invalidate_data",
    "refresh",
})

#: Receiver names that identify the shared engine/database state.
ENGINE_RECEIVERS = frozenset({"engine", "db", "database"})

#: Awaitable lane/engine entry points whose result must not be
#: discarded (RL103).
MUST_USE_NAMES = frozenset({
    "submit",
    "submit_cite",
    "acite_batch",
    "acite_union",
    "wait_bounded",
})

#: Internal storage attributes of the relational layer (RL104).
SHARD_INTERNAL_NAMES = frozenset({
    "_rows",
    "_shards",
    "_indexes",
    "_sorted_indexes",
    "_composite_indexes",
    "_key_index",
    "_next_ordinal",
    "_instances",
})

#: Attribute-name fragments that mark a dict as a cache (RL102).
CACHE_NAME_FRAGMENTS = ("cache", "memo")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation: stable code, message, and location."""

    code: str
    message: str
    path: Path
    line: int

    def describe(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _receiver_names(node: ast.expr) -> set[str]:
    """Every bare name in an attribute chain (``a.b.c`` -> {a, b, c})."""
    names: set[str] = set()
    while isinstance(node, ast.Attribute):
        names.add(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.add(node.id)
    return names


def _is_dict_constructor(node: ast.expr) -> bool:
    if isinstance(node, ast.Dict) and not node.keys:
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"dict", "OrderedDict"} and not node.args
    return False


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: Path) -> None:
        self.path = path
        self.findings: list[LintFinding] = []
        #: Stack of enclosing function nodes (innermost last).
        self._functions: list[ast.AST] = []
        self._in_service = "service" in path.parts

    def _flag(self, code: str, message: str, node: ast.AST) -> None:
        self.findings.append(
            LintFinding(code, message, self.path, node.lineno)
        )

    # -- function nesting ---------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._functions.append(node)
        self.generic_visit(node)
        self._functions.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._functions.append(node)
        self.generic_visit(node)
        self._functions.pop()

    # -- RL101: service mutations outside the lane --------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._in_service
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_NAMES
            and self._functions
            and isinstance(self._functions[-1], ast.AsyncFunctionDef)
            and _receiver_names(node.func.value) & ENGINE_RECEIVERS
        ):
            self._flag(
                "RL101",
                f"engine/database mutation `{node.func.attr}` called "
                "directly from async service code; queue it as an "
                "engine-lane job (a sync closure passed to "
                "`lane.submit`) so writes stay serialized with reads",
                node,
            )
        self.generic_visit(node)

    # -- RL102: unbounded cache construction --------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cache_assigns: list[tuple[str, ast.AST]] = []
        has_bound = False
        for statement in ast.walk(node):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(statement, ast.Assign):
                targets, value = statement.targets, statement.value
            elif isinstance(statement, ast.AnnAssign):
                targets, value = [statement.target], statement.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                name = target.attr.lower()
                if "max" in name:
                    has_bound = True
                elif (
                    any(part in name for part in CACHE_NAME_FRAGMENTS)
                    and value is not None
                    and _is_dict_constructor(value)
                ):
                    cache_assigns.append((target.attr, statement))
        if not has_bound:
            for name, statement in cache_assigns:
                self._flag(
                    "RL102",
                    f"cache attribute `{name}` constructed without any "
                    "`*max*` bound in the class; long-lived engines "
                    "must not accumulate cache entries without limit "
                    "(see repro.util.lru)",
                    statement,
                )
        self.generic_visit(node)

    # -- RL103: discarded lane submissions ----------------------------------

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in MUST_USE_NAMES
        ):
            self._flag(
                "RL103",
                f"result of `{value.func.attr}(...)` discarded; lane "
                "submissions and async engine calls return a "
                "future/coroutine that must be awaited (or stored) or "
                "the job's outcome — including its errors — is lost",
                node,
            )
        self.generic_visit(node)

    # -- RL104: shard-internal access outside relational/ --------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr in SHARD_INTERNAL_NAMES
            and "relational" not in self.path.parts
            and not (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
            )
        ):
            self._flag(
                "RL104",
                f"shard-internal attribute `{node.attr}` accessed "
                "outside the relational layer; use the public "
                "shard/lookup API so storage refactors (and the "
                "sanitizer's mutation hooks) stay airtight",
                node,
            )
        self.generic_visit(node)

    # -- RL105: bare / swallowing excepts ------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(
                "RL105",
                "bare `except:` catches KeyboardInterrupt and "
                "SystemExit; name the exceptions (engine errors derive "
                "from ReproError)",
                node,
            )
        elif (
            isinstance(node.type, ast.Name)
            and node.type.id in {"Exception", "BaseException"}
            and all(isinstance(stmt, ast.Pass) for stmt in node.body)
        ):
            self._flag(
                "RL105",
                f"`except {node.type.id}: pass` silently swallows "
                "engine failures; handle or at least log them",
                node,
            )
        self.generic_visit(node)


def lint_file(path: Path) -> list[LintFinding]:
    """Run every rule over one Python file."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintFinding(
                "RL100",
                f"file does not parse: {exc.msg}",
                path,
                exc.lineno or 1,
            )
        ]
    linter = _FileLinter(path)
    linter.visit(tree)
    return linter.findings


def run_lint(paths: list[Path]) -> list[LintFinding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: list[LintFinding] = []
    for file in files:
        findings.extend(lint_file(file))
    return findings
