"""Runtime concurrency sanitizer: prove the lane/shard/cache
discipline instead of assuming it.

The engine's concurrency correctness rests on conventions no type
checker sees: *all* engine access is serialized through the service's
engine lane; a database is never mutated while a shard fan-out has
worker threads reading it; version-keyed caches re-validate
``stats_version`` and content fingerprints before serving; shard merges
release bindings in strictly increasing insertion-ordinal order; and
nothing blocks the service event loop.  This module checks those
conventions at runtime — the same opt-in sanitizer posture as the plan
verifier (:mod:`repro.analysis.verifier`), extended from plans to
threads, shards and caches.

Enable it with any of:

- ``REPRO_SANITIZE=always`` in the environment (read at import);
- :func:`set_sanitize` (what ``CitationEngine(sanitize="always")``
  calls);
- ``pytest --sanitize`` (the repo conftest flips the switch before any
  test runs, mirroring ``--verify-plans``).

The switch is process-wide, like plan verification: ownership and
fan-out state are global properties of the process, not of one engine.
Disabled (the default), every instrumentation hook is a single module
attribute check — the hot paths pay one branch.

Checks
------

ownership
    :func:`bind_owner` tags a database with its owning context (the
    engine lane binds at start).  Mutations of an owned database are
    only legal under :func:`owner_context` — the thread-local grant the
    lane holds while running a job.  Shards
    (:class:`~repro.relational.database.RelationShard`) are owned
    transitively through their instance's database: every shard
    mutation funnels through the instance mutators this module hooks.
experimental thread affinity
    While a citation pipeline is evaluating
    (:func:`execution_region`), mutations from *other* threads raise —
    the in-flight execution would observe a torn snapshot.
shard fan-out
    Inside :func:`parallel_region` (worker threads are scanning the
    database's shards/indexes) **no** thread may mutate it, not even
    the serial parent.
version-keyed caches
    :func:`check_cache_serve` re-validates, independently of the
    cache's own check, that a served entry's ``stats_version`` tag and
    content fingerprint match the live database — and that the live
    ``stats_version`` agrees with the sanitizer's own shadow count of
    effective mutations (:func:`note_effective_mutations`), so a
    mutation path that forgets to bump the version is caught at the
    first stale serve it would have enabled.
ordinal merges
    :func:`check_ordinal_run` / :func:`monotonic_stream` assert that
    merged shard streams are strictly increasing on the global
    insertion ordinal — the invariant that makes sharded output
    byte-identical to serial output.  :func:`check_shard_partition`
    asserts per-shard statistics still merge exactly to the aggregate.
event-loop blocking
    While active, ``time.sleep`` and blocking ``socket`` operations
    raise when executed on a thread with a *running* asyncio event
    loop (asyncio's own sockets are non-blocking and pass untouched).

Violations raise :class:`ConcurrencySanitizerError` carrying the check
name and, where ownership or a region is involved, the captured stack
of the context's establishment — both sides of the race in one error.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
import weakref
from collections.abc import Callable, Iterable, Iterator
from contextlib import contextmanager
from typing import Any

from repro.errors import ReproError

#: Sanitizer modes, mirroring :data:`repro.cq.plan.VERIFY_MODES`.
MODES = ("off", "always")


class ConcurrencySanitizerError(ReproError):
    """A concurrency-discipline violation caught by the sanitizer.

    Attributes
    ----------
    check:
        Short name of the violated check (``lane-ownership``,
        ``shard-fan-out``, ``stale-cache``, ``version-integrity``,
        ``ordinal-merge``, ``shard-partition``, ``execution-affinity``,
        ``event-loop-blocking``).
    context_stack:
        The captured stack of where the violated context was
        established (owner bound, region entered), when one exists.
    """

    def __init__(
        self,
        check: str,
        message: str,
        context_stack: list[str] | None = None,
    ) -> None:
        self.check = check
        self.context_stack = context_stack
        text = f"[{check}] {message}"
        if context_stack:
            text += (
                "\n-- context established at --\n"
                + "".join(context_stack).rstrip()
            )
        super().__init__(text)


# ---------------------------------------------------------------------------
# mode switch
# ---------------------------------------------------------------------------

#: Process-wide switch; hot-path hooks read this attribute directly so
#: the disabled sanitizer costs one branch per hook.
_active = False
_mode = "off"

_state_lock = threading.Lock()
_local = threading.local()


class _Owner:
    __slots__ = ("label", "stack")

    def __init__(self, label: str, stack: list[str]) -> None:
        self.label = label
        self.stack = stack


class _Region:
    __slots__ = ("thread", "depth", "stack")

    def __init__(self, thread: int, stack: list[str]) -> None:
        self.thread = thread
        self.depth = 1
        self.stack = stack


class _Span:
    __slots__ = ("depth", "stack")

    def __init__(self, stack: list[str]) -> None:
        self.depth = 1
        self.stack = stack


#: id(db) -> (weakref, payload).  Keyed by id with the weakref kept for
#: liveness validation (a recycled id must never inherit a dead
#: database's state) and for removal on collection.
_owners: dict[int, tuple[Any, _Owner]] = {}
_regions: dict[int, tuple[Any, _Region]] = {}
_parallel: dict[int, tuple[Any, _Span]] = {}
#: id(db) -> (weakref, expected stats_version): the shadow count of
#: effective mutations, advanced by :func:`note_effective_mutations`.
_shadow: dict[int, tuple[Any, int]] = {}


def _capture() -> list[str]:
    """The current stack, minus the sanitizer's own frames."""
    return traceback.format_stack()[:-2]


def _describe(obj: Any) -> str:
    return f"{type(obj).__name__} 0x{id(obj):x}"


def _reaper(registry: dict[int, Any], key: int) -> Callable[[Any], None]:
    def _reap(__ref: Any) -> None:
        registry.pop(key, None)

    return _reap


def _entry(registry: dict[int, tuple[Any, Any]], obj: Any) -> Any:
    """The live payload registered for ``obj``, or None."""
    entry = registry.get(id(obj))
    if entry is None:
        return None
    ref, payload = entry
    if ref() is not obj:  # id recycled after collection
        registry.pop(id(obj), None)
        return None
    return payload


def _register(
    registry: dict[int, tuple[Any, Any]], obj: Any, payload: Any
) -> None:
    registry[id(obj)] = (weakref.ref(obj, _reaper(registry, id(obj))), payload)


def _reset_state() -> None:
    _owners.clear()
    _regions.clear()
    _parallel.clear()
    _shadow.clear()


def set_sanitize(mode: str) -> str:
    """Set the process-wide sanitizer mode; returns the previous one.

    ``"always"`` activates every check (and installs the blocking-call
    detectors over ``time.sleep`` and ``socket.socket``); ``"off"``
    restores the originals and drops all tracked state.
    """
    global _active, _mode
    if mode not in MODES:
        raise ValueError(
            f"sanitize mode must be one of {MODES}, got {mode!r}"
        )
    previous = _mode
    _mode = mode
    _active = mode == "always"
    if _active:
        _install_blocking_detectors()
    else:
        _uninstall_blocking_detectors()
        _reset_state()
    return previous


def sanitize_mode() -> str:
    """The current process-wide sanitizer mode."""
    return _mode


def is_active() -> bool:
    """Whether the sanitizer is currently enforcing its checks."""
    return _active


# ---------------------------------------------------------------------------
# ownership and affinity
# ---------------------------------------------------------------------------


def bind_owner(obj: Any, label: str) -> None:
    """Tag ``obj`` (a database) as owned by the context named ``label``.

    Once owned, mutations are only legal under :func:`owner_context`.
    Binding an already-owned object raises — two owners means two
    "serialized" lanes that would interleave on the same state.
    """
    if not _active:
        return
    with _state_lock:
        existing = _entry(_owners, obj)
        if existing is not None:
            raise ConcurrencySanitizerError(
                "lane-ownership",
                f"{_describe(obj)} is already owned by "
                f"{existing.label!r}; binding a second owner "
                f"({label!r}) would let two serialized lanes interleave",
                existing.stack,
            )
        _register(_owners, obj, _Owner(label, _capture()))


def release_owner(obj: Any) -> None:
    """Drop the ownership tag (the lane releases at drain)."""
    with _state_lock:
        _owners.pop(id(obj), None)


@contextmanager
def owner_context(obj: Any) -> Iterator[None]:
    """Grant the current thread mutation rights over owned ``obj``.

    The engine lane wraps each job's thread in this — jobs run via
    ``asyncio.to_thread`` on *varying* executor threads, so the grant
    is a thread-local token, not a thread identity.
    """
    if not _active:
        yield
        return
    grants = getattr(_local, "grants", None)
    if grants is None:
        grants = _local.grants = {}
    key = id(obj)
    grants[key] = grants.get(key, 0) + 1
    try:
        yield
    finally:
        grants[key] -= 1
        if not grants[key]:
            del grants[key]


@contextmanager
def execution_region(obj: Any) -> Iterator[None]:
    """Mark the current thread as evaluating a pipeline over ``obj``.

    Reentrant per thread.  A second *thread* entering concurrently, or
    any other thread mutating ``obj`` while the region is active,
    raises: the in-flight evaluation would observe a torn snapshot.
    """
    if not _active:
        yield
        return
    ident = threading.get_ident()
    with _state_lock:
        region = _entry(_regions, obj)
        if region is not None and region.thread != ident:
            raise ConcurrencySanitizerError(
                "execution-affinity",
                f"two threads are evaluating over {_describe(obj)} "
                "concurrently; engine access must be serialized "
                "(the engine lane, or the engine's execution lock)",
                region.stack,
            )
        if region is not None:
            region.depth += 1
        else:
            _register(_regions, obj, _Region(ident, _capture()))
    try:
        yield
    finally:
        with _state_lock:
            region = _entry(_regions, obj)
            if region is not None:
                region.depth -= 1
                if not region.depth:
                    _regions.pop(id(obj), None)


@contextmanager
def parallel_region(obj: Any) -> Iterator[None]:
    """Mark a shard fan-out over ``obj``: worker threads are reading
    its shards and indexes, so **no** thread may mutate it — not even
    the serial parent — until the last worker joins."""
    if not _active:
        yield
        return
    with _state_lock:
        span = _entry(_parallel, obj)
        if span is not None:
            span.depth += 1
        else:
            _register(_parallel, obj, _Span(_capture()))
    try:
        yield
    finally:
        with _state_lock:
            span = _entry(_parallel, obj)
            if span is not None:
                span.depth -= 1
                if not span.depth:
                    _parallel.pop(id(obj), None)


def check_mutation(obj: Any) -> None:
    """Validate that mutating ``obj`` is legal right now.

    Called from the heads of the database mutators (insert, bulk
    insert, delete).  Ordered most-severe first: a mutation during a
    shard fan-out corrupts concurrent readers outright; one bypassing
    an owning lane breaks write serialization; one from a non-executing
    thread mid-evaluation tears the snapshot.
    """
    if not _active:
        return
    with _state_lock:
        span = _entry(_parallel, obj)
        owner = _entry(_owners, obj)
        region = _entry(_regions, obj)
    if span is not None:
        raise ConcurrencySanitizerError(
            "shard-fan-out",
            f"{_describe(obj)} mutated while a parallel shard fan-out "
            "is reading its shards and indexes; mutations must wait "
            "for the fan-out to join",
            span.stack,
        )
    if owner is not None:
        grants = getattr(_local, "grants", None)
        if not grants or id(obj) not in grants:
            raise ConcurrencySanitizerError(
                "lane-ownership",
                f"{_describe(obj)} is owned by {owner.label!r} but was "
                f"mutated from thread "
                f"{threading.current_thread().name!r} outside a lane "
                "job; route mutations through the lane",
                owner.stack,
            )
    if region is not None and region.thread != threading.get_ident():
        raise ConcurrencySanitizerError(
            "execution-affinity",
            f"{_describe(obj)} mutated from thread "
            f"{threading.current_thread().name!r} while another thread "
            "is evaluating a citation pipeline over it",
            region.stack,
        )


# ---------------------------------------------------------------------------
# version-keyed caches
# ---------------------------------------------------------------------------


def note_effective_mutations(obj: Any, count: int) -> None:
    """Advance the shadow ``stats_version`` expectation for ``obj``.

    Called from :meth:`~repro.relational.database.RelationInstance
    ._note_mutation` *before* the database bumps its own counter, so
    the shadow tracks what the version **should** become.  A mutation
    path that skips the bump desynchronizes the two, and the next
    version-keyed cache serve reports it.
    """
    entry = _shadow.get(id(obj))
    if entry is not None and entry[0]() is obj:
        _shadow[id(obj)] = (entry[0], entry[1] + count)
    else:
        _register(_shadow, obj, None)
        ref = _shadow[id(obj)][0]
        _shadow[id(obj)] = (ref, obj.stats_version + count)


def _check_shadow(label: str, obj: Any, live: int) -> None:
    entry = _shadow.get(id(obj))
    if entry is not None and entry[0]() is obj and entry[1] != live:
        raise ConcurrencySanitizerError(
            "version-integrity",
            f"{label}: the database reports stats_version={live} but "
            f"the sanitizer counted mutations up to {entry[1]} — a "
            "mutation path failed to bump the version, so every "
            "version-keyed cache would serve stale entries",
        )


def check_cache_serve(
    label: str,
    obj: Any,
    stored_version: int,
    stored_token: Any = None,
    current_token: Any = None,
) -> None:
    """Re-validate a version-keyed cache serve, independently.

    ``obj`` is the database whose ``stats_version`` keys the cache;
    ``stored_version``/``stored_token`` are the tags recorded on the
    entry being served, ``current_token`` the fingerprint computed
    against the live state.  Raises when the entry is stale (the
    cache's own validation was bypassed or patched out) or when the
    live version disagrees with the mutation shadow count.
    """
    if not _active:
        return
    live = obj.stats_version
    if stored_version != live:
        raise ConcurrencySanitizerError(
            "stale-cache",
            f"{label} served an entry tagged stats_version="
            f"{stored_version} while the database is at {live}; the "
            "serve path did not re-validate the version",
        )
    if stored_token != current_token:
        raise ConcurrencySanitizerError(
            "stale-cache",
            f"{label} served an entry whose content fingerprint "
            f"{stored_token!r} no longer matches the live fingerprint "
            f"{current_token!r}",
        )
    _check_shadow(label, obj, live)


# ---------------------------------------------------------------------------
# shard merges
# ---------------------------------------------------------------------------


def _ordinal_violation(
    label: str, position: int, ordinal: int, previous: int
) -> ConcurrencySanitizerError:
    return ConcurrencySanitizerError(
        "ordinal-merge",
        f"{label}: merge position {position} yielded ordinal "
        f"{ordinal} after {previous}; the shard merge is out of "
        "order, so sharded output no longer equals serial output",
    )


def check_ordinal_run(
    label: str,
    pairs: Iterable[tuple[int, Any]],
    strict: bool = True,
) -> None:
    """Assert ``(ordinal, ...)`` pairs are monotone on the ordinal.

    Applied to materialized shard merges.  Seed merges carry one pair
    per row, and row ordinals are globally unique, so they must be
    *strictly* increasing; output merges tag every binding with its
    seed's ordinal (one seed can derive many bindings), so they are
    checked non-decreasing (``strict=False``).  Either way, a violation
    means the sharded stream has diverged from serial order.
    """
    if not _active:
        return
    previous: int | None = None
    for position, (ordinal, __) in enumerate(pairs):
        if previous is not None and (
            ordinal < previous or (strict and ordinal == previous)
        ):
            raise _ordinal_violation(label, position, ordinal, previous)
        previous = ordinal


def monotonic_stream(
    label: str,
    stream: Iterable[Any],
    key: Callable[[Any], int],
    strict: bool = True,
) -> Iterator[Any]:
    """Pass ``stream`` through, asserting ``key`` is monotone
    (strictly increasing, or non-decreasing with ``strict=False``)."""
    previous: int | None = None
    for position, item in enumerate(stream):
        ordinal = key(item)
        if previous is not None and (
            ordinal < previous or (strict and ordinal == previous)
        ):
            raise _ordinal_violation(label, position, ordinal, previous)
        previous = ordinal
        yield item


def check_shard_partition(instance: Any) -> None:
    """Assert per-shard statistics still merge to the aggregate.

    ``instance`` is a :class:`~repro.relational.database
    .RelationInstance`; called before a fan-out seeds from its shards,
    because a lost or duplicated row in a shard means the parallel scan
    would not reproduce the serial stream.
    """
    if not _active:
        return
    parts = instance.shard_statistics()
    if len(parts) <= 1:
        return
    if not instance.stats.matches_partition(parts):
        total = sum(part.cardinality for part in parts)
        raise ConcurrencySanitizerError(
            "shard-partition",
            f"relation {instance.schema.name!r}: per-shard statistics "
            f"no longer merge to the aggregate (aggregate cardinality "
            f"{instance.stats.cardinality}, shard sum {total}); shards "
            "have lost or duplicated rows",
        )


# ---------------------------------------------------------------------------
# blocking-call detection
# ---------------------------------------------------------------------------

_real_sleep: Any = None
_real_socket: Any = None


def check_blocking_call(what: str) -> None:
    """Raise when ``what`` (a blocking call) runs on an event-loop thread."""
    if not _active:
        return
    import asyncio

    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return
    raise ConcurrencySanitizerError(
        "event-loop-blocking",
        f"blocking call {what} executed on a thread with a running "
        "asyncio event loop; every request on that loop stalls behind "
        "it — use asyncio primitives or asyncio.to_thread",
    )


def _install_blocking_detectors() -> None:
    global _real_sleep, _real_socket
    if _real_sleep is not None:
        return
    _real_sleep = time.sleep

    def _sanitized_sleep(seconds: float) -> None:
        check_blocking_call(f"time.sleep({seconds!r})")
        _real_sleep(seconds)

    time.sleep = _sanitized_sleep

    _real_socket = socket.socket

    class _SanitizedSocket(_real_socket):  # type: ignore[valid-type, misc]
        """A socket whose blocking operations check for a running loop.

        Only sockets in blocking mode (``gettimeout() != 0``) are
        checked: asyncio's own sockets are non-blocking, so the loop's
        I/O passes untouched.
        """

        def _sanitize_op(self, op: str) -> None:
            try:
                blocking = self.gettimeout() != 0
            except OSError:  # closed/detached: the op will fail anyway
                return
            if blocking:
                check_blocking_call(f"socket.{op}")

        def connect(self, *args: Any) -> Any:
            self._sanitize_op("connect")
            return super().connect(*args)

        def accept(self) -> Any:
            self._sanitize_op("accept")
            return super().accept()

        def recv(self, *args: Any) -> Any:
            self._sanitize_op("recv")
            return super().recv(*args)

        def recv_into(self, *args: Any) -> Any:
            self._sanitize_op("recv_into")
            return super().recv_into(*args)

        def recvfrom(self, *args: Any) -> Any:
            self._sanitize_op("recvfrom")
            return super().recvfrom(*args)

        def send(self, *args: Any) -> Any:
            self._sanitize_op("send")
            return super().send(*args)

        def sendall(self, *args: Any) -> Any:
            self._sanitize_op("sendall")
            return super().sendall(*args)

        def sendto(self, *args: Any) -> Any:
            self._sanitize_op("sendto")
            return super().sendto(*args)

    socket.socket = _SanitizedSocket  # type: ignore[misc]


def _uninstall_blocking_detectors() -> None:
    global _real_sleep, _real_socket
    if _real_sleep is not None:
        time.sleep = _real_sleep
        _real_sleep = None
    if _real_socket is not None:
        socket.socket = _real_socket  # type: ignore[misc]
        _real_socket = None


# Seed from the environment, mirroring REPRO_VERIFY_PLANS: test runs and
# deployments flip the whole process on without touching call sites.
if os.environ.get("REPRO_SANITIZE", "off") == "always":
    set_sanitize("always")
