"""Static and dynamic analysis over the engine.

Three layers, all purely observational (they never change what a query
computes):

- :mod:`repro.analysis.verifier` — a rulebook of structural invariants
  checked against any :class:`~repro.cq.plan.QueryPlan`; violations
  raise :class:`~repro.analysis.verifier.PlanVerificationError` with
  step-indexed messages.  ``QueryPlanner(verify="always")`` (or the
  ``REPRO_VERIFY_PLANS=always`` sanitizer switch) runs it on every plan
  produced, turning the optimizer's implicit correctness contract into
  machine-checked rules.
- :mod:`repro.analysis.diagnostics` — stable-coded lint findings
  (``QA1xx`` warnings, ``QA2xx`` errors) for query shapes that are
  legal but almost certainly wrong: cartesian products, contradictory
  closures, subsumed union disjuncts, dangling atoms, mixed-type
  comparison risk.  Surfaced through ``repro analyze``, EXPLAIN, and
  the workload report.
- :mod:`repro.analysis.sanitizer` — the runtime concurrency sanitizer
  (``REPRO_SANITIZE=always`` / ``pytest --sanitize``): lane-ownership
  and thread-affinity checks on database mutations, independent
  re-validation of version-keyed cache serves, shard ordinal-merge
  monotonicity, and event-loop blocking detection, raising
  :class:`~repro.analysis.sanitizer.ConcurrencySanitizerError` with
  both sides' stacks.  :mod:`repro.analysis.lint` is its static
  counterpart: AST rules with stable ``RL1xx`` codes enforcing the
  same conventions on the source tree (``tools/run_repro_lint.py``,
  ``repro analyze --lint``).

This package is imported lazily (PEP 562): the runtime modules it
instruments (``relational``, ``cq``, ``service``) import
``repro.analysis.sanitizer`` at module top, so this ``__init__`` must
not eagerly pull in the analysis layers that import *them* back.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "Diagnostic": "repro.analysis.diagnostics",
    "analyze_query": "repro.analysis.diagnostics",
    "analyze_union": "repro.analysis.diagnostics",
    "has_errors": "repro.analysis.diagnostics",
    "render_diagnostics": "repro.analysis.diagnostics",
    "PlanVerificationError": "repro.analysis.verifier",
    "check_plan": "repro.analysis.verifier",
    "verify_plan": "repro.analysis.verifier",
    "verify_plans": "repro.analysis.verifier",
    "ConcurrencySanitizerError": "repro.analysis.sanitizer",
    "sanitize_mode": "repro.analysis.sanitizer",
    "set_sanitize": "repro.analysis.sanitizer",
    "LintFinding": "repro.analysis.lint",
    "run_lint": "repro.analysis.lint",
}

_SUBMODULES = ("diagnostics", "lint", "sanitizer", "verifier")

__all__ = sorted([*_EXPORTS, *_SUBMODULES])


def __getattr__(name: str) -> Any:
    import importlib

    if name in _EXPORTS:
        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    if name in _SUBMODULES:
        module = importlib.import_module(f"{__name__}.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
