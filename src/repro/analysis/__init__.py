"""Static analysis over the planning pipeline.

Two layers, both purely observational (they never change what a plan
computes):

- :mod:`repro.analysis.verifier` — a rulebook of structural invariants
  checked against any :class:`~repro.cq.plan.QueryPlan`; violations
  raise :class:`~repro.analysis.verifier.PlanVerificationError` with
  step-indexed messages.  ``QueryPlanner(verify="always")`` (or the
  ``REPRO_VERIFY_PLANS=always`` sanitizer switch) runs it on every plan
  produced, turning the optimizer's implicit correctness contract into
  machine-checked rules.
- :mod:`repro.analysis.diagnostics` — stable-coded lint findings
  (``QA1xx`` warnings, ``QA2xx`` errors) for query shapes that are
  legal but almost certainly wrong: cartesian products, contradictory
  closures, subsumed union disjuncts, dangling atoms, mixed-type
  comparison risk.  Surfaced through ``repro analyze``, EXPLAIN, and
  the workload report.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    analyze_query,
    analyze_union,
    has_errors,
    render_diagnostics,
)
from repro.analysis.verifier import (
    PlanVerificationError,
    check_plan,
    verify_plan,
    verify_plans,
)

__all__ = [
    "Diagnostic",
    "PlanVerificationError",
    "analyze_query",
    "analyze_union",
    "check_plan",
    "has_errors",
    "render_diagnostics",
    "verify_plan",
    "verify_plans",
]
