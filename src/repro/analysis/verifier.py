"""Structural plan verification: a sanitizer for the planning pipeline.

The optimizer stack (access-path selection, predicate pushdown, subplan
memoization, sharded seeding) preserves an implicit contract with the
executor: every probe value is available when the probe fires, every
comparison of the source query is applied exactly once, every access
path is applicable to the position it serves.  Until now only the
end-to-end differential tests (planned ≡ reference) stood between an
optimizer bug and a wrong citation.  :func:`verify_plan` turns that
contract into machine-checked rules:

1. **Boundness** — every variable appearing in a probe term or residual
   comparison is bound by a prior (or, for comparisons, the current)
   step before it is read.
2. **Comparison accounting** — every comparison of the source query is
   accounted for exactly once: pushed into an access path, scheduled as
   a residual, or both where the pushdown discipline demands a re-check
   (variable-variable equalities, all ranges).  No comparison is
   dropped, none is double-applied.
3. **Access-path applicability** — hash probes only on equality-bound
   lookup positions (constants, closure constants, or variables bound
   earlier); ordered/composite bisect only on interval-carrying
   *introduced* positions, never on a position whose equality class is
   forced to a constant (the constant probe is strictly stronger).
4. **Rebind round-trip** — rebinding the plan to its own query through
   the identity renaming reproduces the plan exactly.
5. **Prefix-key suffix independence** — the canonical prefix keys of
   every truncation of the plan agree with the full plan's keys, so the
   subplan memo can never seed a prefix whose key depended on its
   suffix.
6. **Sharded seeding capability** — a first step eligible for
   storage-shard fan-out must target an ordinal-capable source (a base
   relation exposing per-shard ``(ordinal, row)`` pairs), and its probe
   must be all constants.

Violations raise :class:`PlanVerificationError` carrying step-indexed
messages.  The verifier recomputes the equality/interval closures from
the plan's own query — the same ground truth the planner used — so a
plan mutated after planning (swapped steps, dropped residuals,
mislabeled access paths) is rejected rather than rubber-stamped; the
mutation-kill suite in ``tests/analysis`` proves each corruption class
is caught.

Run it everywhere with ``QueryPlanner(verify="always")`` or the
process-wide switch :func:`repro.cq.plan.set_plan_verification`
(``REPRO_VERIFY_PLANS=always`` in the environment seeds the default),
which the test suite's ``--verify-plans`` option flips to sanitize every
plan the entire suite produces.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Sequence
from typing import Any

from repro.cq.plan import (
    _RANGE_OPS,
    QueryPlan,
    _EqualityClosure,
    _IntervalClosure,
    prefix_keys,
)
from repro.cq.terms import Constant, Variable
from repro.errors import ReproError
from repro.relational.database import Database


class PlanVerificationError(ReproError):
    """A plan violates a structural invariant of the planning contract.

    :attr:`violations` lists every step-indexed violation found (the
    verifier checks the whole rulebook before raising, so one pass
    reports every problem, not just the first).
    """

    def __init__(self, plan: QueryPlan, violations: Sequence[str]) -> None:
        self.plan = plan
        self.violations = list(violations)
        details = "\n  ".join(self.violations)
        super().__init__(
            f"plan for {plan.query} failed verification "
            f"({len(self.violations)} violation(s)):\n  {details}"
        )


def _same_value(left: Any, right: Any) -> bool:
    """Value equality that treats NaN as equal to itself.

    The planner carries NaN constants straight from query atoms into
    probe terms; comparing them with ``==`` would flag sound plans.
    """
    if left != left and right != right:
        return True
    return bool(left == right)


def _comparison_key(comparison) -> tuple:
    """Hashable identity of a comparison, modulo orientation and NaN.

    Plans built for the canonical query and rebound to the caller's
    variables may spell ``X1 = X0`` as ``X0 = X1`` (normalization flips
    the orientation), and a NaN constant is unequal to *itself* under
    value equality — both would wreck multiset accounting keyed on the
    atoms themselves.
    """
    normalized = comparison.normalized()

    def term_key(term) -> tuple:
        if isinstance(term, Variable):
            return ("v", term.name)
        value = term.value
        if value != value:
            return ("c", "nan")
        return ("c", value)

    return (
        normalized.op.value,
        term_key(normalized.left),
        term_key(normalized.right),
    )


def _recompute_closures(
    plan: QueryPlan,
) -> tuple[_EqualityClosure, _IntervalClosure, Counter, dict, list[str]]:
    """Replay the planner's pushdown pass over the plan's query.

    Returns the equality and interval closures, the expected residual
    comparison multiset (keyed by :func:`_comparison_key`, with a
    representative atom per key for messages), and any violations found
    while replaying (a false ground comparison on a non-empty plan,
    say).
    """
    violations: list[str] = []
    closure = _EqualityClosure()
    expected_residual: Counter = Counter()
    representatives: dict = {}
    range_candidates = []
    for comparison in plan.query.comparisons:
        if comparison.is_ground:
            if not comparison.evaluate_ground() and not plan.empty:
                violations.append(
                    f"ground comparison {comparison!r} is false but the "
                    "plan is not marked empty"
                )
            continue
        key = _comparison_key(comparison)
        representatives.setdefault(key, comparison)
        if closure.absorb(comparison):
            if closure.needs_recheck(comparison):
                expected_residual[key] += 1
            continue
        expected_residual[key] += 1
        if comparison.op in _RANGE_OPS:
            range_candidates.append(comparison)
    intervals = _IntervalClosure(closure)
    for comparison in range_candidates:
        intervals.absorb(comparison)
    intervals.finalize()
    return closure, intervals, expected_residual, representatives, violations


def _check_empty_reason(
    plan: QueryPlan,
    closure: _EqualityClosure,
    intervals: _IntervalClosure,
) -> list[str]:
    """An empty plan must be *provably* empty for its stated reason."""
    violations: list[str] = []
    if plan.steps:
        violations.append(
            "empty plan carries join steps (empty plans never touch data)"
        )
    reason = plan.empty_reason
    if reason == "false ground comparison":
        if not any(
            c.is_ground and not c.evaluate_ground()
            for c in plan.query.comparisons
        ):
            violations.append(
                "plan claims a false ground comparison but every ground "
                "comparison of the query is true"
            )
    elif reason == "contradictory equality comparisons":
        if not closure.contradiction:
            violations.append(
                "plan claims contradictory equalities but the equality "
                "closure of the query is satisfiable"
            )
    elif reason == "empty range interval":
        if not intervals.empty:
            violations.append(
                "plan claims an empty range interval but the interval "
                "closure of the query is satisfiable"
            )
    else:
        violations.append(f"unknown empty reason {reason!r}")
    return violations


def _check_step_structure(
    plan: QueryPlan,
    closure: _EqualityClosure,
    intervals: _IntervalClosure,
) -> list[str]:
    """Boundness and access-path applicability, step by step."""
    violations: list[str] = []
    query = plan.query
    seen_atoms: Counter = Counter()
    bound: set[Variable] = set()
    for number, step in enumerate(plan.steps, start=1):
        where = f"step {number}"
        atom = step.atom
        if not 0 <= step.atom_index < len(query.atoms):
            violations.append(
                f"{where}: atom_index {step.atom_index} outside the query "
                f"body (0..{len(query.atoms) - 1})"
            )
        elif query.atoms[step.atom_index] != atom:
            violations.append(
                f"{where}: step atom {atom!r} differs from query atom "
                f"{query.atoms[step.atom_index]!r} at index {step.atom_index}"
            )
        seen_atoms[step.atom_index] += 1

        arity = atom.arity
        if len(step.lookup_positions) != len(step.lookup_terms):
            violations.append(
                f"{where}: {len(step.lookup_positions)} lookup positions vs "
                f"{len(step.lookup_terms)} lookup terms"
            )
            continue
        if list(step.lookup_positions) != sorted(set(step.lookup_positions)):
            violations.append(
                f"{where}: lookup positions {step.lookup_positions} are not "
                "strictly increasing"
            )
        lookup_at = dict(zip(step.lookup_positions, step.lookup_terms))
        introduces_at = {position: var for var, position in step.introduces}

        for position, term in lookup_at.items():
            if not 0 <= position < arity:
                violations.append(
                    f"{where}: lookup position {position} outside arity "
                    f"{arity} of {atom!r}"
                )
                continue
            if isinstance(term, Variable) and term not in bound:
                violations.append(
                    f"{where}: probe variable {term!r} at position "
                    f"{position} is not bound by any prior step"
                )

        # Hash probes only on equality-bound positions; free positions
        # never probed.
        for position, term in enumerate(atom.terms):
            probe = lookup_at.get(position)
            if isinstance(term, Constant):
                if probe is None:
                    violations.append(
                        f"{where}: constant position {position} of {atom!r} "
                        "is not part of the probe"
                    )
                elif not isinstance(probe, Constant) or not _same_value(
                    probe.value, term.value
                ):
                    violations.append(
                        f"{where}: position {position} holds constant "
                        f"{term!r} but probes {probe!r}"
                    )
                continue
            constant = closure.constant_for(term)
            if constant is not None:
                if probe is None:
                    # The planner always probes constant-forced positions.
                    violations.append(
                        f"{where}: position {position} is forced to "
                        f"{constant!r} by the equality closure but is not "
                        "probed"
                    )
                elif not isinstance(probe, Constant) or not _same_value(
                    probe.value, constant.value
                ):
                    violations.append(
                        f"{where}: position {position} is forced to "
                        f"{constant!r} but probes {probe!r}"
                    )
                continue
            if probe is None:
                continue
            if isinstance(probe, Constant):
                violations.append(
                    f"{where}: position {position} of {atom!r} probes "
                    f"constant {probe!r} but its equality class carries no "
                    "constant (not an equality-bound position)"
                )
            elif closure.find(probe) != closure.find(term):
                violations.append(
                    f"{where}: position {position} holds {term!r} but "
                    f"probes {probe!r}, which is not in its equality class"
                )

        # Introduced variables: first occurrence, at their own position.
        for var, position in step.introduces:
            if not 0 <= position < arity:
                violations.append(
                    f"{where}: introduced position {position} outside arity "
                    f"{arity} of {atom!r}"
                )
                continue
            if atom.terms[position] != var:
                violations.append(
                    f"{where}: introduces {var!r} at position {position} "
                    f"but the atom holds {atom.terms[position]!r} there"
                )
            if var in bound:
                violations.append(
                    f"{where}: {var!r} is introduced here but already bound "
                    "by a prior step"
                )

        # Every position must be constrained or introduced; a position
        # the step neither probes, introduces, nor equality-checks is
        # one the executor silently ignores (any row value accepted).
        covered = (
            set(lookup_at)
            | set(introduces_at)
            | {second for __, second in step.equal_positions}
        )
        for position in range(arity):
            if position not in covered:
                violations.append(
                    f"{where}: position {position} of {atom!r} is neither "
                    "probed, introduced, nor equality-checked (the "
                    "executor would accept any value there)"
                )

        # Same-row equality checks pair positions of one equality class.
        for first, second in step.equal_positions:
            if not (0 <= first < second < arity):
                violations.append(
                    f"{where}: equal-position pair ({first}, {second}) is "
                    f"not an ordered pair within arity {arity}"
                )
                continue
            left, right = atom.terms[first], atom.terms[second]
            if not (
                isinstance(left, Variable)
                and isinstance(right, Variable)
                and closure.find(left) == closure.find(right)
            ):
                violations.append(
                    f"{where}: equal-position pair ({first}, {second}) "
                    f"relates {left!r} and {right!r}, which are not "
                    "class-mates"
                )

        # Ordered/composite narrowing: interval-carrying introduced
        # positions only, never equality-bound, never constant-forced.
        if (step.range_position is None) != (step.range_interval is None):
            violations.append(
                f"{where}: range_position and range_interval must be set "
                "together "
                f"(got {step.range_position!r} / {step.range_interval!r})"
            )
        elif step.range_position is not None:
            position = step.range_position
            if position in lookup_at:
                violations.append(
                    f"{where}: ordered narrowing on position {position} "
                    "which the hash probe already binds"
                )
            var = introduces_at.get(position)
            if var is None:
                violations.append(
                    f"{where}: ordered narrowing on position {position} "
                    "which this step does not introduce"
                )
            else:
                interval = intervals.interval_for(var)
                if interval is None:
                    if closure.constant_for(var) is not None:
                        violations.append(
                            f"{where}: ordered narrowing on {var!r} whose "
                            "equality class is forced to a constant (the "
                            "constant probe is strictly stronger)"
                        )
                    else:
                        violations.append(
                            f"{where}: ordered narrowing on {var!r} whose "
                            "equality class carries no pushed interval"
                        )
                elif interval != step.range_interval:
                    violations.append(
                        f"{where}: plan interval "
                        f"{step.range_interval.describe()} differs from the "
                        f"closure interval {interval.describe()} for {var!r}"
                    )
            if (
                step.range_interval is not None
                and step.range_interval.is_empty() is True
            ):
                violations.append(
                    f"{where}: ordered narrowing over a provably empty "
                    "interval (the plan should have short-circuited)"
                )

        # Residual comparisons are checkable once this step fires.
        step_bound = bound | {var for var, __ in step.introduces}
        for comparison in step.comparisons:
            unbound = [
                v for v in comparison.variables() if v not in step_bound
            ]
            if unbound:
                names = ", ".join(repr(v) for v in unbound)
                violations.append(
                    f"{where}: residual {comparison!r} reads {names}, "
                    "not bound by this or any prior step"
                )
        bound = step_bound

    for atom_index, count in sorted(seen_atoms.items()):
        if count > 1:
            violations.append(
                f"atom index {atom_index} is evaluated by {count} steps"
            )
    missing = set(range(len(query.atoms))) - set(seen_atoms)
    for atom_index in sorted(missing):
        violations.append(
            f"query atom {query.atoms[atom_index]!r} (index {atom_index}) "
            "is not evaluated by any step"
        )
    return violations


def _check_comparison_accounting(
    plan: QueryPlan,
    closure: _EqualityClosure,
    intervals: _IntervalClosure,
    expected_residual: Counter,
    representatives: dict,
) -> list[str]:
    """Every source comparison lands exactly once (pushed or residual)."""
    violations: list[str] = []
    residual: Counter = Counter()
    locations: dict[tuple, list[int]] = {}
    for number, step in enumerate(plan.steps, start=1):
        for comparison in step.comparisons:
            key = _comparison_key(comparison)
            representatives.setdefault(key, comparison)
            residual[key] += 1
            locations.setdefault(key, []).append(number)

    def ready_step(comparison) -> str:
        """The step whose bindings first cover a comparison's variables."""
        needed = set(comparison.variables())
        bound: set[Variable] = set()
        for number, step in enumerate(plan.steps, start=1):
            bound |= {var for var, __ in step.introduces}
            if needed <= bound:
                return f"step {number}"
        return "no step"

    def at_steps(key: tuple) -> str:
        return ", ".join(f"step {n}" for n in locations.get(key, ()))

    for key, count in expected_residual.items():
        comparison = representatives[key]
        got = residual.get(key, 0)
        if got < count:
            violations.append(
                f"{ready_step(comparison)}: residual comparison "
                f"{comparison!r} dropped (scheduled {got} time(s), the "
                f"query requires {count})"
            )
        elif got > count:
            violations.append(
                f"residual comparison {comparison!r} double-applied at "
                f"{at_steps(key)} (the query requires {count})"
            )
    for key in residual:
        if key not in expected_residual:
            violations.append(
                f"{at_steps(key)}: residual comparison "
                f"{representatives[key]!r} does not belong to the query "
                "(or should have been fully absorbed)"
            )

    expected_pushed = Counter(_comparison_key(c) for c in closure.pushed)
    expected_ranges = Counter(_comparison_key(c) for c in intervals.pushed)
    if Counter(_comparison_key(c) for c in plan.pushed) != expected_pushed:
        violations.append(
            f"pushed equalities {list(plan.pushed)!r} differ from the "
            f"equality closure's {list(closure.pushed)!r}"
        )
    if (
        Counter(_comparison_key(c) for c in plan.pushed_ranges)
        != expected_ranges
    ):
        violations.append(
            f"pushed ranges {list(plan.pushed_ranges)!r} differ from the "
            f"interval closure's {list(intervals.pushed)!r}"
        )
    served = expected_pushed + expected_ranges
    for number, step in enumerate(plan.steps, start=1):
        for comparison in step.pushed:
            if _comparison_key(comparison) not in served:
                violations.append(
                    f"step {number}: attributes pushed comparison "
                    f"{comparison!r} that no closure absorbed"
                )
    return violations


def _check_rebind_roundtrip(plan: QueryPlan) -> list[str]:
    """Rebinding through the identity renaming must reproduce the plan."""
    variables: dict[Variable, Variable] = {
        var: var for var in plan.query.variables()
    }
    for step in plan.steps:
        for term in step.lookup_terms:
            if isinstance(term, Variable):
                variables.setdefault(term, term)
        for var, __ in step.introduces:
            variables.setdefault(var, var)
        for comparison in list(step.comparisons) + list(step.pushed):
            for var in comparison.variables():
                variables.setdefault(var, var)
    try:
        rebound = plan.rebind(plan.query, variables)
    except Exception as error:  # noqa: BLE001 - report, don't mask
        return [f"rebind round-trip raised {type(error).__name__}: {error}"]
    # Compare by repr, not ==: a NaN constant is unequal to itself under
    # value equality, but rebinding must still reproduce it in place.
    if repr(rebound) != repr(plan) or rebound.query != plan.query:
        return [
            "rebind round-trip through the identity renaming does not "
            "reproduce the plan"
        ]
    return []


def _check_prefix_keys(plan: QueryPlan) -> list[str]:
    """Prefix keys must not depend on the suffix of the plan."""
    if not plan.steps:
        return []
    try:
        keys, __ = prefix_keys(plan)
    except Exception as error:  # noqa: BLE001 - report, don't mask
        return [f"prefix_keys raised {type(error).__name__}: {error}"]
    violations = []
    for length in range(1, len(plan.steps)):
        truncated = dataclasses.replace(plan, steps=plan.steps[:length])
        truncated_keys, __ = prefix_keys(truncated)
        if truncated_keys != keys[:length]:
            violations.append(
                f"prefix key of steps 1-{length} changes when the suffix "
                "is dropped (the subplan memo would mis-share it)"
            )
    return violations


def _check_seeding_capability(
    plan: QueryPlan, db: Database | None
) -> list[str]:
    """Sharded first-step seeding must target ordinal-capable sources."""
    if not plan.steps:
        return []
    step = plan.steps[0]
    violations = []
    for term in step.lookup_terms:
        if not isinstance(term, Constant):
            violations.append(
                f"step 1: first-step probe term {term!r} is not a "
                "constant (no prior step can have bound it)"
            )
    if db is None or step.virtual:
        return violations
    try:
        instance = db.relation(step.atom.relation)
    except ReproError as error:
        return violations + [f"step 1: {error}"]
    if not (
        hasattr(instance, "shard_lookup_pairs")
        and getattr(instance, "shard_count", 0) >= 1
    ):
        violations.append(
            f"step 1: relation {step.atom.relation!r} is not "
            "ordinal-capable (sharded seeding could not merge its rows "
            "back into serial order)"
        )
    return violations


def check_plan(plan: QueryPlan, db: Database | None = None) -> list[str]:
    """Run the whole rulebook; return every violation found (no raise)."""
    closure, intervals, expected_residual, representatives, violations = (
        _recompute_closures(plan)
    )
    if plan.empty:
        violations += _check_empty_reason(plan, closure, intervals)
        return violations
    if closure.contradiction:
        violations.append(
            "query has contradictory pushed equalities but the plan is "
            "not marked empty"
        )
    if intervals.empty:
        violations.append(
            "query has a provably empty pushed interval but the plan is "
            "not marked empty"
        )
    violations += _check_step_structure(plan, closure, intervals)
    violations += _check_comparison_accounting(
        plan, closure, intervals, expected_residual, representatives
    )
    violations += _check_rebind_roundtrip(plan)
    violations += _check_prefix_keys(plan)
    violations += _check_seeding_capability(plan, db)
    return violations


def verify_plan(plan: QueryPlan, db: Database | None = None) -> QueryPlan:
    """Raise :class:`PlanVerificationError` unless ``plan`` is sound.

    Returns the plan unchanged, so call sites can verify in passing:
    ``return verify_plan(plan_query(q, db), db)``.
    """
    violations = check_plan(plan, db)
    if violations:
        raise PlanVerificationError(plan, violations)
    return plan


def verify_plans(
    plans: Sequence[QueryPlan], db: Database | None = None
) -> Sequence[QueryPlan]:
    """Verify every plan of a union (or any plan collection)."""
    for plan in plans:
        verify_plan(plan, db)
    return plans
