"""The IUPHAR/BPS Guide to Pharmacology (GtoPdb) substrate.

GtoPdb is the paper's running example: a curated relational database of
drugs and drug targets whose web pages carry hard-coded citations.  This
subpackage reconstructs everything the paper uses:

- :mod:`repro.gtopdb.schema` — the six-relation schema of Example 2.1;
- :mod:`repro.gtopdb.sample` — the exact instance implied by the paper's
  examples (family 11 "Calcitonin", committees, contributors, metadata);
- :mod:`repro.gtopdb.views` — the citation views V1–V5 with their
  citation queries CV1–CV5 and JSON citation functions;
- :mod:`repro.gtopdb.generator` — a deterministic synthetic generator
  scaling the same shape to arbitrary sizes for the benchmarks.
"""

from repro.gtopdb.schema import gtopdb_schema
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import (
    GtoPdbPortal,
    PortalPage,
    paper_registry,
    paper_views,
)
from repro.gtopdb.generator import GtopdbGenerator, generate_database

__all__ = [
    "gtopdb_schema",
    "paper_database",
    "paper_views",
    "paper_registry",
    "GtoPdbPortal",
    "PortalPage",
    "GtopdbGenerator",
    "generate_database",
]
