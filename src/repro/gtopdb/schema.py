"""The simplified GtoPdb schema of Example 2.1.

Relations (keys underlined in the paper)::

    Family(FID, FName, Type)
    FamilyIntro(FID, Text)
    Person(PID, PName, Affiliation)
    FC(FID, PID)    — committee members curating a family page
    FIC(FID, PID)   — contributors who wrote a family's introduction
    MetaData(Type, Value)
"""

from __future__ import annotations

from repro.relational.schema import (
    Attribute,
    ForeignKey,
    RelationSchema,
    Schema,
)
from repro.relational.types import STRING


def gtopdb_schema() -> Schema:
    """Build a fresh GtoPdb schema instance."""
    return Schema([
        RelationSchema(
            "Family",
            [Attribute("FID", STRING), Attribute("FName", STRING),
             Attribute("Type", STRING)],
            key=["FID"],
        ),
        RelationSchema(
            "FamilyIntro",
            [Attribute("FID", STRING), Attribute("Text", STRING)],
            key=["FID"],
            foreign_keys=[ForeignKey(("FID",), "Family", ("FID",))],
        ),
        RelationSchema(
            "Person",
            [Attribute("PID", STRING), Attribute("PName", STRING),
             Attribute("Affiliation", STRING)],
            key=["PID"],
        ),
        RelationSchema(
            "FC",
            [Attribute("FID", STRING), Attribute("PID", STRING)],
            key=["FID", "PID"],
            foreign_keys=[
                ForeignKey(("FID",), "Family", ("FID",)),
                ForeignKey(("PID",), "Person", ("PID",)),
            ],
        ),
        RelationSchema(
            "FIC",
            [Attribute("FID", STRING), Attribute("PID", STRING)],
            key=["FID", "PID"],
            foreign_keys=[
                ForeignKey(("FID",), "FamilyIntro", ("FID",)),
                ForeignKey(("PID",), "Person", ("PID",)),
            ],
        ),
        RelationSchema(
            "MetaData",
            [Attribute("Type", STRING), Attribute("Value", STRING)],
            key=["Type"],
        ),
    ])
