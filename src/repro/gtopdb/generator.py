"""Deterministic synthetic GtoPdb generator for scaling benchmarks.

The paper's instance has a handful of tuples; the benchmarks (E8/E9/E10)
need the same *shape* at 10^2–10^5 tuples.  The generator preserves the
structural properties the citation model is sensitive to:

- family types are skewed (a few large types like "gpcr", many small
  ones), so type-parameterized views (V4/V5) group many families;
- a configurable fraction of families have introduction pages (FK from
  FamilyIntro into Family);
- committees and contributor lists have small, varied sizes drawn from a
  shared person pool (people serve on several committees, as curators do
  in the real GtoPdb);
- a fixed metadata table.

All randomness is seeded; the same parameters always produce the same
database.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.gtopdb.schema import gtopdb_schema
from repro.relational.database import Database

_TYPE_NAMES = [
    "gpcr", "vgic", "lgic", "nhr", "enzyme", "catalytic", "transporter",
    "other-ic", "other-protein", "accessory",
]


@dataclass
class GtopdbGenerator:
    """Seeded generator for synthetic GtoPdb instances.

    Parameters
    ----------
    families:
        Number of Family rows.
    persons:
        Size of the Person pool.
    types:
        Number of distinct family types (capped by the name list, then
        suffixed).  Types are assigned with a Zipf-like skew: type ``i``
        receives weight ``1/(i+1)``.
    intro_fraction:
        Fraction of families that have an introduction page.
    committee_size / contributor_size:
        Inclusive (min, max) bounds for committee and contributor counts.
    seed:
        RNG seed; same inputs produce identical databases.
    """

    families: int = 100
    persons: int = 50
    types: int = 6
    intro_fraction: float = 0.6
    committee_size: tuple[int, int] = (1, 4)
    contributor_size: tuple[int, int] = (1, 3)
    seed: int = 17

    def type_names(self) -> list[str]:
        names = list(_TYPE_NAMES[: self.types])
        index = 0
        while len(names) < self.types:
            names.append(f"type{index}")
            index += 1
        return names

    def build(self) -> Database:
        """Generate the database (foreign keys verified before returning)."""
        rng = random.Random(self.seed)
        db = Database(gtopdb_schema())

        person_ids = [f"p{i}" for i in range(self.persons)]
        for index, pid in enumerate(person_ids):
            db.insert("Person", pid, f"Person{index}", f"Institute{index % 13}")

        type_names = self.type_names()
        weights = [1.0 / (i + 1) for i in range(len(type_names))]

        committee_low, committee_high = self.committee_size
        contributor_low, contributor_high = self.contributor_size

        for index in range(self.families):
            fid = f"f{index}"
            family_type = rng.choices(type_names, weights=weights)[0]
            db.insert("Family", fid, f"Family{index}", family_type)
            committee = rng.sample(
                person_ids,
                min(len(person_ids),
                    rng.randint(committee_low, committee_high)),
            )
            for pid in committee:
                db.insert("FC", fid, pid)
            if rng.random() < self.intro_fraction:
                db.insert("FamilyIntro", fid, f"Introduction to family {index}")
                contributors = rng.sample(
                    person_ids,
                    min(len(person_ids),
                        rng.randint(contributor_low, contributor_high)),
                )
                for pid in contributors:
                    db.insert("FIC", fid, pid)

        db.insert("MetaData", "Owner", "Tony Harmar")
        db.insert("MetaData", "URL", "guidetopharmacology.org")
        db.insert("MetaData", "Version", "23")
        db.check_foreign_keys()
        return db


def generate_database(
    families: int = 100,
    persons: int = 50,
    types: int = 6,
    seed: int = 17,
) -> Database:
    """One-call synthetic database with default shape parameters."""
    return GtopdbGenerator(
        families=families, persons=persons, types=types, seed=seed
    ).build()
