"""The exact database instance implied by the paper's worked examples.

Contents are assembled from every concrete value the paper mentions:

- family 11 "Calcitonin" (gpcr), committee Hay & Poyner (Example 2.1,
  FV1), introduction "The calcitonin peptide family" with contributors
  Brown & Smith (FV2);
- family 12 "Calcium-sensing" (gpcr), committee Bilke, Conigrave &
  Shoback (the V4 citation example);
- family 13 "b" (gpcr) with introduction "Familyb" (Example 3.3);
- family 14 "Orexin" (gpcr) with introduction contributors Alda & Palmer
  (the V5 citation example);
- metadata Owner="Tony Harmar", URL="guidetopharmacology.org",
  Version="23" (Example 2.1);
- one non-gpcr family ("CatSper", vgic) so type selections are selective.

``paper_database(duplicate_calcitonin=True)`` adds a second family named
"Calcitonin" (id 19) to reproduce Example 3.2's multiple-bindings case.
"""

from __future__ import annotations

from repro.gtopdb.schema import gtopdb_schema
from repro.relational.database import Database

_FAMILIES = [
    ("11", "Calcitonin", "gpcr"),
    ("12", "Calcium-sensing", "gpcr"),
    ("13", "b", "gpcr"),
    ("14", "Orexin", "gpcr"),
    ("20", "CatSper", "vgic"),
]

_FAMILY_INTROS = [
    ("11", "The calcitonin peptide family"),
    ("13", "Familyb"),
    ("14", "The orexin receptor family"),
]

_PERSONS = [
    ("p1", "Hay", "U. Auckland"),
    ("p2", "Poyner", "Aston U."),
    ("p3", "Brown", "U. Cambridge"),
    ("p4", "Smith", "U. Edinburgh"),
    ("p5", "Bilke", "Karolinska"),
    ("p6", "Conigrave", "U. Sydney"),
    ("p7", "Shoback", "UCSF"),
    ("p8", "Nichols", "Washington U."),
    ("p9", "Palmer", "U. Bristol"),
    ("p10", "Alda", "Dalhousie U."),
    ("p11", "Clapham", "HHMI"),
]

_FC = [  # family-page committees
    ("11", "p1"), ("11", "p2"),
    ("12", "p5"), ("12", "p6"), ("12", "p7"),
    ("13", "p8"),
    ("14", "p9"),
    ("20", "p11"),
]

_FIC = [  # introduction contributors
    ("11", "p3"), ("11", "p4"),
    ("13", "p8"), ("13", "p9"),
    ("14", "p10"), ("14", "p9"),
]

_METADATA = [
    ("Owner", "Tony Harmar"),
    ("URL", "guidetopharmacology.org"),
    ("Version", "23"),
]


def paper_database(duplicate_calcitonin: bool = False) -> Database:
    """Build the paper's running-example instance.

    Parameters
    ----------
    duplicate_calcitonin:
        Add a second gpcr family named "Calcitonin" (id 19, with an
        introduction), reproducing the shared-name situation of
        Example 3.2 where one output tuple has multiple bindings.
    """
    db = Database(gtopdb_schema())
    db.insert_all("Family", _FAMILIES)
    db.insert_all("FamilyIntro", _FAMILY_INTROS)
    db.insert_all("Person", _PERSONS)
    db.insert_all("FC", _FC)
    db.insert_all("FIC", _FIC)
    db.insert_all("MetaData", _METADATA)
    if duplicate_calcitonin:
        db.insert("Family", "19", "Calcitonin", "gpcr")
        db.insert("FamilyIntro", "19", "The second calcitonin family")
        db.insert("FC", "19", "p1")
        db.insert("FIC", "19", "p4")
    db.check_foreign_keys()
    return db
