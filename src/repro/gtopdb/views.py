"""The paper's citation views V1–V5 with citation queries CV1–CV5.

Definitions follow Example 2.1 verbatim.  Citation functions produce the
JSON records shown in the paper:

- ``FV1``: ``{ID, Name, Committee: [...]}``
- ``FV2``: ``{ID, Name, Text, Contributors: [...]}``
- ``FV3``: ``{Owner, URL}``
- ``FV4``: ``{Type, Contributors: [{Name, Committee: [...]}, ...]}``
- ``FV5``: like FV4 but crediting introduction contributors.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.gtopdb.schema import gtopdb_schema
from repro.relational.schema import Schema
from repro.views.citation_view import CitationView, RecordCitationFunction
from repro.views.registry import ViewRegistry


def nested_family_citation(
    outer_label: str,
    group_index: int,
    member_index: int,
    outer_index: int,
) -> Any:
    """Build an ``F_V`` producing the paper's nested V4/V5-style records.

    Rows are grouped by the value at ``group_index`` (the family name);
    each group becomes ``{Name: ..., Committee: [members]}``, and groups
    are listed under ``outer_label`` next to the grouping attribute taken
    from ``outer_index`` (the family type).
    """

    def function(
        rows: list[tuple[Any, ...]],
        labels: Sequence[str],
        params: Mapping[str, Any],
    ) -> dict:
        record: dict[str, Any] = {}
        if rows:
            record[labels[outer_index]] = rows[0][outer_index]
        elif params:
            # Empty instance: still identify the parameter value.
            record[labels[outer_index]] = next(iter(params.values()))
        groups: dict[Any, list[Any]] = {}
        for row in rows:
            groups.setdefault(row[group_index], []).append(row[member_index])
        record[outer_label] = [
            {"Name": name, "Committee": sorted(set(members))}
            for name, members in sorted(groups.items())
        ]
        return record

    return function


def paper_views() -> list[CitationView]:
    """Construct V1–V5 exactly as in Example 2.1."""
    v1 = CitationView.from_strings(
        view="lambda F. V1(F, N, Ty) :- Family(F, N, Ty)",
        citation_query=(
            "lambda F. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), "
            "Person(C, Pn, A)"
        ),
        citation_function=RecordCitationFunction(list_fields=("Committee",)),
        labels=("ID", "Name", "Committee"),
        description="One family page, cited with its committee of experts.",
    )
    v2 = CitationView.from_strings(
        view="lambda F. V2(F, Tx) :- FamilyIntro(F, Tx)",
        citation_query=(
            "lambda F. CV2(F, N, Tx, Pn) :- Family(F, N, Ty), "
            "FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A)"
        ),
        citation_function=RecordCitationFunction(
            list_fields=("Contributors",)
        ),
        labels=("ID", "Name", "Text", "Contributors"),
        description=(
            "One family's detailed introduction page, cited with the "
            "contributors who wrote it."
        ),
    )
    v3 = CitationView.from_strings(
        view="V3(F, N, Ty) :- Family(F, N, Ty)",
        citation_query=(
            'CV3(X1, X2) :- MetaData(T1, X1), T1 = "Owner", '
            'MetaData(T2, X2), T2 = "URL"'
        ),
        labels=("Owner", "URL"),
        description=(
            "The whole Family table; a single database-level citation."
        ),
    )
    v4 = CitationView.from_strings(
        view="lambda Ty. V4(F, N, Ty) :- Family(F, N, Ty)",
        citation_query=(
            "lambda Ty. CV4(Ty, N, Pn) :- Family(F, N, Ty), FC(F, C), "
            "Person(C, Pn, A)"
        ),
        citation_function=nested_family_citation(
            "Contributors", group_index=1, member_index=2, outer_index=0
        ),
        labels=("Type", "Name", "Committee"),
        description=(
            "All families of one type, cited with every family's committee."
        ),
    )
    v5 = CitationView.from_strings(
        view=(
            "lambda Ty. V5(F, N, Ty, Tx) :- Family(F, N, Ty), "
            "FamilyIntro(F, Tx)"
        ),
        citation_query=(
            "lambda Ty. CV5(N, Ty, Tx, Pn) :- Family(F, N, Ty), "
            "FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A)"
        ),
        citation_function=nested_family_citation(
            "Contributors", group_index=0, member_index=3, outer_index=1
        ),
        labels=("Name", "Type", "Text", "Contributors"),
        description=(
            "Introductions of all families of one type, cited with the "
            "contributors who wrote them."
        ),
    )
    return [v1, v2, v3, v4, v5]


def paper_registry(schema: Schema | None = None) -> ViewRegistry:
    """A :class:`ViewRegistry` holding V1–V5 over the GtoPdb schema."""
    return ViewRegistry(schema or gtopdb_schema(), paper_views())
