"""The paper's citation views V1–V5 with citation queries CV1–CV5.

Definitions follow Example 2.1 verbatim.  Citation functions produce the
JSON records shown in the paper:

- ``FV1``: ``{ID, Name, Committee: [...]}``
- ``FV2``: ``{ID, Name, Text, Contributors: [...]}``
- ``FV3``: ``{Owner, URL}``
- ``FV4``: ``{Type, Contributors: [{Name, Committee: [...]}, ...]}``
- ``FV5``: like FV4 but crediting introduction contributors.

:class:`GtoPdbPortal` is the portal path over those views: every page
render (view instance + citation record) routes through one warm
:class:`~repro.citation.generator.CitationEngine`, so repeated
instantiations of the same page shape hit the shared plan cache.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.gtopdb.schema import gtopdb_schema
from repro.relational.schema import Schema
from repro.views.citation_view import CitationView, RecordCitationFunction
from repro.views.registry import ViewRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.citation.generator import CitationEngine, CitationResult
    from repro.relational.database import Database


def nested_family_citation(
    outer_label: str,
    group_index: int,
    member_index: int,
    outer_index: int,
) -> Any:
    """Build an ``F_V`` producing the paper's nested V4/V5-style records.

    Rows are grouped by the value at ``group_index`` (the family name);
    each group becomes ``{Name: ..., Committee: [members]}``, and groups
    are listed under ``outer_label`` next to the grouping attribute taken
    from ``outer_index`` (the family type).
    """

    def function(
        rows: list[tuple[Any, ...]],
        labels: Sequence[str],
        params: Mapping[str, Any],
    ) -> dict:
        record: dict[str, Any] = {}
        if rows:
            record[labels[outer_index]] = rows[0][outer_index]
        elif params:
            # Empty instance: still identify the parameter value.
            record[labels[outer_index]] = next(iter(params.values()))
        groups: dict[Any, list[Any]] = {}
        for row in rows:
            groups.setdefault(row[group_index], []).append(row[member_index])
        record[outer_label] = [
            {"Name": name, "Committee": sorted(set(members))}
            for name, members in sorted(groups.items())
        ]
        return record

    return function


def paper_views() -> list[CitationView]:
    """Construct V1–V5 exactly as in Example 2.1."""
    v1 = CitationView.from_strings(
        view="lambda F. V1(F, N, Ty) :- Family(F, N, Ty)",
        citation_query=(
            "lambda F. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), "
            "Person(C, Pn, A)"
        ),
        citation_function=RecordCitationFunction(list_fields=("Committee",)),
        labels=("ID", "Name", "Committee"),
        description="One family page, cited with its committee of experts.",
    )
    v2 = CitationView.from_strings(
        view="lambda F. V2(F, Tx) :- FamilyIntro(F, Tx)",
        citation_query=(
            "lambda F. CV2(F, N, Tx, Pn) :- Family(F, N, Ty), "
            "FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A)"
        ),
        citation_function=RecordCitationFunction(
            list_fields=("Contributors",)
        ),
        labels=("ID", "Name", "Text", "Contributors"),
        description=(
            "One family's detailed introduction page, cited with the "
            "contributors who wrote it."
        ),
    )
    v3 = CitationView.from_strings(
        view="V3(F, N, Ty) :- Family(F, N, Ty)",
        citation_query=(
            'CV3(X1, X2) :- MetaData(T1, X1), T1 = "Owner", '
            'MetaData(T2, X2), T2 = "URL"'
        ),
        labels=("Owner", "URL"),
        description=(
            "The whole Family table; a single database-level citation."
        ),
    )
    v4 = CitationView.from_strings(
        view="lambda Ty. V4(F, N, Ty) :- Family(F, N, Ty)",
        citation_query=(
            "lambda Ty. CV4(Ty, N, Pn) :- Family(F, N, Ty), FC(F, C), "
            "Person(C, Pn, A)"
        ),
        citation_function=nested_family_citation(
            "Contributors", group_index=1, member_index=2, outer_index=0
        ),
        labels=("Type", "Name", "Committee"),
        description=(
            "All families of one type, cited with every family's committee."
        ),
    )
    v5 = CitationView.from_strings(
        view=(
            "lambda Ty. V5(F, N, Ty, Tx) :- Family(F, N, Ty), "
            "FamilyIntro(F, Tx)"
        ),
        citation_query=(
            "lambda Ty. CV5(N, Ty, Tx, Pn) :- Family(F, N, Ty), "
            "FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A)"
        ),
        citation_function=nested_family_citation(
            "Contributors", group_index=0, member_index=3, outer_index=1
        ),
        labels=("Name", "Type", "Text", "Contributors"),
        description=(
            "Introductions of all families of one type, cited with the "
            "contributors who wrote them."
        ),
    )
    return [v1, v2, v3, v4, v5]


def paper_registry(schema: Schema | None = None) -> ViewRegistry:
    """A :class:`ViewRegistry` holding V1–V5 over the GtoPdb schema."""
    return ViewRegistry(schema or gtopdb_schema(), paper_views())


@dataclass(frozen=True)
class PortalPage:
    """One rendered portal page: a view instantiation plus its citation."""

    view_name: str
    params: tuple[Any, ...]
    rows: tuple[tuple[Any, ...], ...]
    citation: dict = field(compare=False)


class GtoPdbPortal:
    """The GtoPdb web portal, served from one warm citation engine.

    Each page of the portal is a view instantiation — a family landing
    page is ``V1(F)``, an introduction page ``V2(F)``, a type listing
    ``V4(Ty)`` — and every render needs both the view instance (the
    page's rows) and its citation record (the ``F_V`` output).  The
    portal holds a single :class:`~repro.citation.generator
    .CitationEngine` and routes both evaluations through the engine's
    shared :class:`~repro.cq.plan.QueryPlanner`: the first page of a
    view shape plans its (instantiated) view and citation queries, and
    every later page of the same shape hits the α-equivalence plan
    cache.  General queries against the portal delegate to the engine's
    rewriting-based citation pipeline, sharing the same planner and
    materialized views.
    """

    def __init__(
        self,
        db: "Database",
        registry: ViewRegistry | None = None,
        engine: "CitationEngine | None" = None,
        **engine_options: Any,
    ) -> None:
        from repro.citation.generator import CitationEngine

        if engine is None:
            if registry is None:
                registry = paper_registry(db.schema)
            engine = CitationEngine(db, registry, **engine_options)
        elif engine_options:
            raise TypeError(
                "pass engine options or a prebuilt engine, not both"
            )
        self.engine = engine
        self.db = engine.db
        self.registry = engine.registry

    @property
    def planner(self) -> Any:
        """The engine's shared plan cache (exposed for inspection)."""
        return self.engine.planner

    # -- page rendering ------------------------------------------------------

    def page(
        self, view_name: str, params: Sequence[Any] = ()
    ) -> PortalPage:
        """Render one page: instantiate the view and cite it.

        Both the view instance and the citation query run through the
        engine's shared planner.
        """
        view = self.registry.get(view_name)
        params_tuple = tuple(params)
        rows = view.instance(
            self.db,
            params=list(params_tuple) if params_tuple else None,
            planner=self.engine.planner,
        )
        citation = view.citation_for(
            self.db, params_tuple, planner=self.engine.planner
        )
        return PortalPage(view_name, params_tuple, tuple(rows), citation)

    def page_valuations(self, view_name: str) -> tuple[tuple[Any, ...], ...]:
        """Every existing λ-valuation of a view (one page each).

        The unparameterized extension is evaluated through the shared
        planner and projected onto the parameter positions — how a site
        generator enumerates the pages it must render.
        """
        view = self.registry.get(view_name)
        if not view.is_parameterized:
            return ((),)
        positions = view.parameter_positions()
        valuations: dict[tuple[Any, ...], None] = {}
        for row in view.instance(self.db, planner=self.engine.planner):
            valuations.setdefault(tuple(row[i] for i in positions))
        return tuple(valuations)

    def render_all(self, view_name: str) -> list[PortalPage]:
        """Render every page of one view shape (site-generator mode)."""
        return [
            self.page(view_name, valuation)
            for valuation in self.page_valuations(view_name)
        ]

    # -- general queries ------------------------------------------------------

    def cite(self, query: Any) -> "CitationResult":
        """Cite a general query through the engine's rewriting pipeline."""
        return self.engine.cite(query)

    def refresh(self) -> None:
        """Propagate database updates (drops plans and cached records)."""
        self.engine.refresh()
