"""Query logs: recorded usage of the database.

A :class:`QueryLog` is an ordered multiset of conjunctive queries with
frequencies — the raw material for deciding which citation views to
declare (Section 4's "using logs to understand database usage").
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery


@dataclass(frozen=True)
class LogEntry:
    """A logged query with its observed frequency."""

    query: ConjunctiveQuery
    frequency: int = 1


class QueryLog:
    """An ordered collection of logged queries."""

    def __init__(self, entries: Iterable[LogEntry | ConjunctiveQuery] = ()) -> None:
        self._entries: list[LogEntry] = []
        for entry in entries:
            self.record(entry)

    def record(
        self,
        query: LogEntry | ConjunctiveQuery | str,
        frequency: int = 1,
    ) -> None:
        """Append a query (CQ object, Datalog string, or prepared entry)."""
        if isinstance(query, LogEntry):
            self._entries.append(query)
            return
        if isinstance(query, str):
            query = parse_query(query)
        self._entries.append(LogEntry(query, frequency))

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_frequency(self) -> int:
        return sum(entry.frequency for entry in self._entries)

    def queries(self) -> list[ConjunctiveQuery]:
        """The logged queries, in order, ignoring frequencies."""
        return [entry.query for entry in self._entries]

    def __repr__(self) -> str:
        return f"QueryLog({len(self._entries)} entries)"
