"""Query-log analysis: the statistics behind view suggestion.

Section 4 proposes "using logs to understand database usage".  The
:class:`LogAnalyzer` computes the usage statistics a database owner would
inspect before (or instead of) automatic suggestion:

- relation access frequencies (weighted by query frequency);
- join-pattern frequencies (which relation pairs are joined, over which
  column positions);
- selection profiles (which relation positions are filtered, with which
  constants) — these are the λ-parameter candidates;
- projection profiles (which positions actually reach query heads).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.workload.logs import QueryLog


@dataclass
class JoinPattern:
    """Two relation occurrences sharing a variable at given positions."""

    left_relation: str
    left_position: int
    right_relation: str
    right_position: int

    def key(self) -> tuple:
        # Canonical orientation for counting.
        left = (self.left_relation, self.left_position)
        right = (self.right_relation, self.right_position)
        return tuple(sorted((left, right)))

    def __str__(self) -> str:
        return (f"{self.left_relation}[{self.left_position}] ⋈ "
                f"{self.right_relation}[{self.right_position}]")


@dataclass
class LogProfile:
    """Aggregated usage statistics of a query log."""

    total_queries: int = 0
    total_frequency: int = 0
    relation_counts: Counter = field(default_factory=Counter)
    join_counts: Counter = field(default_factory=Counter)
    selection_counts: Counter = field(default_factory=Counter)
    selection_constants: dict[tuple[str, int], Counter] = field(
        default_factory=dict
    )
    projection_counts: Counter = field(default_factory=Counter)

    def top_relations(self, k: int = 5) -> list[tuple[str, int]]:
        return self.relation_counts.most_common(k)

    def top_joins(self, k: int = 5) -> list[tuple[tuple, int]]:
        return self.join_counts.most_common(k)

    def top_selections(self, k: int = 5) -> list[tuple[tuple[str, int], int]]:
        """Most-filtered (relation, position) pairs — λ candidates."""
        return self.selection_counts.most_common(k)

    def describe(self) -> str:
        lines = [
            f"{self.total_queries} queries, "
            f"{self.total_frequency} executions",
            "relations: " + ", ".join(
                f"{name}×{count}"
                for name, count in self.relation_counts.most_common()
            ),
        ]
        if self.join_counts:
            lines.append("joins: " + ", ".join(
                f"{left[0]}[{left[1]}]~{right[0]}[{right[1]}]×{count}"
                for (left, right), count in self.join_counts.most_common(5)
            ))
        if self.selection_counts:
            lines.append("selections (λ candidates): " + ", ".join(
                f"{relation}[{position}]×{count}"
                for (relation, position), count
                in self.selection_counts.most_common(5)
            ))
        return "\n".join(lines)


class LogAnalyzer:
    """Computes a :class:`LogProfile` from a :class:`QueryLog`."""

    def analyze(self, log: QueryLog) -> LogProfile:
        profile = LogProfile()
        for entry in log:
            profile.total_queries += 1
            profile.total_frequency += entry.frequency
            self._analyze_query(entry.query, entry.frequency, profile)
        return profile

    def _analyze_query(
        self,
        query: ConjunctiveQuery,
        weight: int,
        profile: LogProfile,
    ) -> None:
        # Relation accesses.
        for atom in query.atoms:
            profile.relation_counts[atom.relation] += weight

        # Variable occurrence sites: variable -> [(relation, position)].
        sites: dict[Variable, list[tuple[str, int]]] = {}
        for atom in query.atoms:
            for position, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    sites.setdefault(term, []).append(
                        (atom.relation, position)
                    )
                else:
                    # Inline constants are selections.
                    key = (atom.relation, position)
                    profile.selection_counts[key] += weight
                    profile.selection_constants.setdefault(
                        key, Counter()
                    )[term.value] += weight

        # Join patterns: every pair of distinct sites of a shared var.
        for occurrences in sites.values():
            for i in range(len(occurrences)):
                for j in range(i + 1, len(occurrences)):
                    left, right = occurrences[i], occurrences[j]
                    pattern = JoinPattern(
                        left[0], left[1], right[0], right[1]
                    )
                    profile.join_counts[pattern.key()] += weight

        # Comparison selections: var op const.
        for comparison in query.comparisons:
            for var_side, const_side in (
                (comparison.left, comparison.right),
                (comparison.right, comparison.left),
            ):
                if isinstance(var_side, Variable) and isinstance(
                        const_side, Constant):
                    for site in sites.get(var_side, ()):
                        profile.selection_counts[site] += weight
                        profile.selection_constants.setdefault(
                            site, Counter()
                        )[const_side.value] += weight

        # Projections: which sites reach the head.
        for term in query.head:
            if isinstance(term, Variable):
                for site in sites.get(term, ()):
                    profile.projection_counts[site] += weight


def analyze_log(log: QueryLog) -> LogProfile:
    """One-call analysis."""
    return LogAnalyzer().analyze(log)
