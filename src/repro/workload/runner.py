"""Batch execution of citation workloads — in-process or over HTTP.

The paper's target deployment is a repository front-end issuing heavy,
repetitive query traffic.  :func:`run_workload` drives a
:class:`~repro.citation.generator.CitationEngine` over a
:class:`~repro.workload.logs.QueryLog` (or any sequence of queries)
through :meth:`~repro.citation.generator.CitationEngine.cite_batch`, and
reports how much work the shared caches — rewriting enumeration, query
plans, materialized-view indexes — actually saved.

:func:`replay_workload` is the client-side twin: it replays the same
workload against a *live* citation service (``repro serve``) over HTTP
and reports per-status counts, client-side latency, and the delta of
the server's cache counters across the run — the measurement the
service's "one warm process amortizes all traffic" claim rests on.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.citation.generator import CitationEngine, CitationResult
from repro.cq.query import ConjunctiveQuery
from repro.cq.ucq import UnionQuery
from repro.workload.logs import QueryLog


def _is_union_text(text: str) -> bool:
    """True when a Datalog string stacks more than one rule."""
    rules = [
        chunk for chunk in text.replace(";", "\n").splitlines()
        if chunk.strip()
    ]
    return len(rules) > 1


@dataclass
class WorkloadReport:
    """Results and cache effectiveness of one batch run."""

    results: list[CitationResult] = field(default_factory=list)
    queries_run: int = 0
    elapsed_seconds: float = 0.0
    rewriting_hits: int = 0
    rewriting_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    subplan_hits: int = 0
    subplan_misses: int = 0
    parallelism: int = 1
    shards: int = 1
    #: Queries run per class ("cq", "ucq"); absent classes are omitted.
    per_class: dict[str, int] = field(default_factory=dict)
    #: Diagnostic findings per QA code across the workload (populated by
    #: ``run_workload(..., analyze=True)``); empty when analysis is off.
    diagnostics: dict[str, int] = field(default_factory=dict)

    @property
    def rewriting_hit_rate(self) -> float:
        total = self.rewriting_hits + self.rewriting_misses
        return self.rewriting_hits / total if total else 0.0

    @property
    def plan_hit_rate(self) -> float:
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0

    @property
    def subplan_hit_rate(self) -> float:
        total = self.subplan_hits + self.subplan_misses
        return self.subplan_hits / total if total else 0.0

    def describe(self) -> str:
        suffix = ""
        if self.parallelism > 1:
            suffix = f", parallelism={self.parallelism}"
        if self.shards > 1:
            suffix += f", shards={self.shards}"
        caches = (
            f"rewriting cache {self.rewriting_hits}/"
            f"{self.rewriting_hits + self.rewriting_misses} hits, "
            f"plan cache {self.plan_hits}/"
            f"{self.plan_hits + self.plan_misses} hits"
        )
        if self.subplan_hits or self.subplan_misses:
            caches += (
                f", subplan memo {self.subplan_hits}/"
                f"{self.subplan_hits + self.subplan_misses} hits"
            )
        if len(self.per_class) > 1:
            breakdown = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.per_class.items())
            )
            suffix += f" [{breakdown}]"
        if self.diagnostics:
            findings = ", ".join(
                f"{code}={count}"
                for code, count in sorted(self.diagnostics.items())
            )
            suffix += f"; diagnostics: {findings}"
        if self.elapsed_seconds <= 0:
            # Coarse clocks can measure a successful run as zero elapsed
            # time; keep the counts and cache effectiveness, drop only
            # the unreportable q/s figure.
            return f"{self.queries_run} queries; {caches}{suffix}"
        return (
            f"{self.queries_run} queries in {self.elapsed_seconds:.3f}s "
            f"({self.queries_run / self.elapsed_seconds:.1f} q/s); "
            f"{caches}{suffix}"
        )


def run_workload(
    engine: CitationEngine,
    workload: QueryLog | Sequence[ConjunctiveQuery | UnionQuery | str],
    repeat_frequencies: bool = False,
    parallelism: int | None = None,
    use_processes: bool | None = None,
    shards: int | None = None,
    analyze: bool = False,
) -> WorkloadReport:
    """Cite every query of a workload through the batch pipeline.

    This drives :meth:`~repro.citation.generator.CitationEngine
    .cite_batch` — i.e. ``cite(D, Q, V)`` (Defs 3.1–3.4) for every query
    of the workload — and measures what the shared caches saved.

    Workloads may mix query classes: :class:`~repro.cq.ucq.UnionQuery`
    entries (or multi-rule Datalog strings) route through
    :meth:`~repro.citation.generator.CitationEngine.cite_union`, plain
    conjunctive queries batch through ``cite_batch``; results come back
    in workload order either way, and the report counts queries per
    class in :attr:`WorkloadReport.per_class`.

    Parameters
    ----------
    engine:
        The citation engine (its caches are warmed and reused).
    workload:
        A :class:`QueryLog` or a plain sequence of queries / union
        queries / Datalog strings (multi-rule strings parse as unions).
    repeat_frequencies:
        When the workload is a log and this is True, each entry is cited
        ``frequency`` times — simulating the raw traffic rather than the
        distinct-query set, which is how cache hit rates should be read.
    parallelism:
        When given, the shard-and-merge worker count for every rewriting
        evaluation in the batch (:mod:`repro.cq.parallel`); forwarded to
        ``cite_batch`` and persisted on the engine.
    use_processes:
        When given, use a process pool instead of threads.
    shards:
        When given, repartitions the engine database's relation storage
        into that many shards before the batch (shard-parallel scans
        and probes, shard-sliced process payloads); forwarded to
        ``cite_batch`` and persisted on the database.
    analyze:
        When True, run static analysis
        (:mod:`repro.analysis.diagnostics`) over every workload query
        and aggregate findings per QA code into
        :attr:`WorkloadReport.diagnostics` — a cheap way to audit a
        whole query log for contradictions, cartesian products, and
        subsumed disjuncts in one pass.

    Returns
    -------
    WorkloadReport
        The per-query :class:`~repro.citation.generator.CitationResult`
        list (in workload order, identical at any parallelism) plus
        timing and cache-effectiveness counters.
    """
    queries: list[ConjunctiveQuery | UnionQuery | str] = []
    if isinstance(workload, QueryLog):
        for entry in workload:
            repeats = entry.frequency if repeat_frequencies else 1
            queries.extend([entry.query] * repeats)
    else:
        queries = list(workload)

    def class_of(query: ConjunctiveQuery | UnionQuery | str) -> str:
        if isinstance(query, UnionQuery):
            return "ucq"
        if isinstance(query, str) and _is_union_text(query):
            return "ucq"
        return "cq"

    classes = [class_of(query) for query in queries]
    per_class: dict[str, int] = {}
    for name in classes:
        per_class[name] = per_class.get(name, 0) + 1

    planner = engine.planner
    # Force the cite_batch rewriting-cache upgrade *before* snapshotting,
    # so the before/after counters always come from the engine object the
    # batch actually uses.  (Snapshotting first and re-reading after the
    # run compares counters across two different objects whenever the
    # upgrade swaps the engine mid-run, skewing hits/misses.)
    rewriter = engine.ensure_rewriting_cache()
    memo = engine.subplan_memo
    hits_before = rewriter.hits
    misses_before = rewriter.misses
    plan_hits_before = planner.hits
    plan_misses_before = planner.misses
    subplan_hits_before = memo.hits
    subplan_misses_before = memo.misses

    started = time.perf_counter()
    conjunctive = [
        query
        for query, name in zip(queries, classes)
        if name == "cq"
    ]
    # One cite_batch over every CQ entry (maximal cross-query sharing),
    # then unions through cite_union in place; both pipelines share the
    # same planner, memo, and rewriting cache, so order of execution
    # does not affect results — only which call warms which entry first.
    batch_results = iter(
        engine.cite_batch(
            conjunctive,
            parallelism=parallelism,
            use_processes=use_processes,
            shards=shards,
        )
    )
    results = [
        engine.cite_union(query) if name == "ucq" else next(batch_results)
        for query, name in zip(queries, classes)
    ]
    elapsed = time.perf_counter() - started

    diagnostics: dict[str, int] = {}
    if analyze:
        from repro.analysis import analyze_query, analyze_union
        from repro.cq.parser import parse_query
        from repro.cq.ucq import parse_union_query

        for query, name in zip(queries, classes):
            if isinstance(query, str):
                query = (
                    parse_union_query(query)
                    if name == "ucq"
                    else parse_query(query)
                )
            findings = (
                analyze_union(query, engine.db)
                if isinstance(query, UnionQuery)
                else analyze_query(query, engine.db)
            )
            for finding in findings:
                diagnostics[finding.code] = (
                    diagnostics.get(finding.code, 0) + 1
                )

    return WorkloadReport(
        results=results,
        queries_run=len(queries),
        elapsed_seconds=elapsed,
        rewriting_hits=rewriter.hits - hits_before,
        rewriting_misses=rewriter.misses - misses_before,
        plan_hits=planner.hits - plan_hits_before,
        plan_misses=planner.misses - plan_misses_before,
        subplan_hits=memo.hits - subplan_hits_before,
        subplan_misses=memo.misses - subplan_misses_before,
        parallelism=engine.parallelism,
        shards=engine.db.shards,
        per_class=per_class,
        diagnostics=diagnostics,
    )


# ---------------------------------------------------------------------------
# HTTP replay: the same workload against a live citation service
# ---------------------------------------------------------------------------


@dataclass
class ReplayReport:
    """One workload replayed against a live service, with the server's
    cache-counter deltas across the run.

    The server-side counters come from ``GET /stats`` before and after
    the replay, so they measure exactly what *this* traffic hit — the
    cross-request amortization the warm service exists for.
    """

    queries_run: int = 0
    elapsed_seconds: float = 0.0
    #: HTTP status → count across the replay.
    statuses: dict[int, int] = field(default_factory=dict)
    mean_latency_ms: float = 0.0
    max_latency_ms: float = 0.0
    #: Server-side cache deltas (hits gained during the replay).
    plan_hits: int = 0
    plan_misses: int = 0
    rewriting_hits: int = 0
    rewriting_misses: int = 0
    subplan_hits: int = 0
    subplan_misses: int = 0
    #: Server-side micro-batches executed for this traffic.
    batches_executed: int = 0

    @property
    def ok_count(self) -> int:
        return sum(
            count for status, count in self.statuses.items()
            if 200 <= status < 300
        )

    @property
    def error_count(self) -> int:
        return self.queries_run - self.ok_count

    def describe(self) -> str:
        status_part = ", ".join(
            f"{status}={count}"
            for status, count in sorted(self.statuses.items())
        )
        caches = (
            f"server caches: plan +{self.plan_hits}/"
            f"{self.plan_hits + self.plan_misses} hits, "
            f"rewriting +{self.rewriting_hits}/"
            f"{self.rewriting_hits + self.rewriting_misses} hits, "
            f"subplan +{self.subplan_hits}/"
            f"{self.subplan_hits + self.subplan_misses} hits"
        )
        timing = ""
        if self.elapsed_seconds > 0:
            timing = (
                f" in {self.elapsed_seconds:.3f}s "
                f"({self.queries_run / self.elapsed_seconds:.1f} req/s, "
                f"mean {self.mean_latency_ms:.1f}ms, "
                f"max {self.max_latency_ms:.1f}ms)"
            )
        return (
            f"{self.queries_run} requests{timing} [{status_part}]; "
            f"{caches}; {self.batches_executed} server batches"
        )


def _counter(stats: dict, *path: str) -> int:
    """A counter out of a nested ``/stats`` payload; 0 when absent."""
    node: Any = stats
    for key in path:
        if not isinstance(node, dict):
            return 0
        node = node.get(key)
    return node if isinstance(node, int) else 0


def replay_workload(
    url: str,
    workload: QueryLog | Sequence[ConjunctiveQuery | UnionQuery | str],
    repeat_frequencies: bool = False,
    timeout: float = 60.0,
) -> ReplayReport:
    """Replay a workload against a live citation service over HTTP.

    Every entry is POSTed to ``/cite`` (query objects are rendered back
    to Datalog text; multi-rule strings cite as unions server-side), in
    order, on one keep-alive connection — the sequential-client shape
    of the service benchmark.  Responses are *not* parsed into
    :class:`~repro.citation.generator.CitationResult` objects; the
    report carries status counts and latencies instead, plus the deltas
    of the server's cache counters (from ``GET /stats`` before/after),
    so cross-request plan-cache and sub-plan-memo amortization is
    directly visible.

    Parameters
    ----------
    url:
        Service base URL, e.g. ``http://127.0.0.1:8747``.
    workload:
        Same shapes as :func:`run_workload`.
    repeat_frequencies:
        As in :func:`run_workload`: replay each log entry ``frequency``
        times (raw traffic) instead of once (distinct-query set).
    timeout:
        Client-side socket timeout per request, in seconds.
    """
    from repro.service.client import ServiceClient

    texts: list[str] = []
    if isinstance(workload, QueryLog):
        for entry in workload:
            repeats = entry.frequency if repeat_frequencies else 1
            text = (
                entry.query if isinstance(entry.query, str)
                else repr(entry.query)
            )
            texts.extend([text] * repeats)
    else:
        texts = [
            query if isinstance(query, str) else repr(query)
            for query in workload
        ]

    statuses: dict[int, int] = {}
    latencies: list[float] = []
    with ServiceClient(url=url, timeout=timeout) as client:
        before = client.stats()
        started = time.perf_counter()
        for text in texts:
            sent = time.perf_counter()
            reply = client.cite(text)
            latencies.append((time.perf_counter() - sent) * 1000.0)
            statuses[reply.status] = statuses.get(reply.status, 0) + 1
        elapsed = time.perf_counter() - started
        after = client.stats()

    def delta(*path: str) -> int:
        return _counter(after, *path) - _counter(before, *path)

    return ReplayReport(
        queries_run=len(texts),
        elapsed_seconds=elapsed,
        statuses=statuses,
        mean_latency_ms=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        max_latency_ms=max(latencies, default=0.0),
        plan_hits=delta("engine", "plan_cache", "hits"),
        plan_misses=delta("engine", "plan_cache", "misses"),
        rewriting_hits=delta("engine", "rewriting_cache", "hits"),
        rewriting_misses=delta("engine", "rewriting_cache", "misses"),
        subplan_hits=delta("engine", "subplan_memo", "hits"),
        subplan_misses=delta("engine", "subplan_memo", "misses"),
        batches_executed=delta(
            "service", "batching", "batches_executed"
        ),
    )
