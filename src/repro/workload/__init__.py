"""Workloads, query logs, and log-driven view suggestion (Section 4).

The paper lists "using logs to understand database usage and decide what
citation views should be specified" among its open problems.  This
subpackage provides:

- :mod:`repro.workload.queries` — a seeded random conjunctive-query
  generator over any schema (used by the scaling benchmarks);
- :mod:`repro.workload.logs` — query logs with frequencies;
- :mod:`repro.workload.suggest` — a greedy view-suggestion algorithm that
  mines frequent join patterns from a log and proposes citation views
  maximizing rewriting coverage.
"""

from repro.workload.queries import QueryGenerator
from repro.workload.logs import QueryLog, LogEntry
from repro.workload.suggest import suggest_views, coverage_of_views
from repro.workload.analyzer import LogAnalyzer, LogProfile, analyze_log
from repro.workload.runner import (
    ReplayReport,
    WorkloadReport,
    replay_workload,
    run_workload,
)

__all__ = [
    "QueryGenerator",
    "QueryLog",
    "LogEntry",
    "suggest_views",
    "coverage_of_views",
    "LogAnalyzer",
    "LogProfile",
    "analyze_log",
    "ReplayReport",
    "WorkloadReport",
    "replay_workload",
    "run_workload",
]
