"""Seeded random conjunctive-query generation.

The generator walks a schema's foreign-key graph so that generated joins
are *meaningful* (they follow real key relationships, like users' queries
would), then projects a random subset of variables and optionally adds a
selection on a value sampled from the database (so selections are
satisfiable).  Everything is deterministic under a seed.
"""

from __future__ import annotations

import random

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.relational.database import Database
from repro.relational.expressions import ComparisonOp
from repro.relational.schema import Schema


class QueryGenerator:
    """Generates random safe conjunctive queries over a schema.

    Parameters
    ----------
    schema:
        The schema to generate against.
    db:
        Optional database used to sample selection constants that actually
        occur (non-empty results make benchmarks meaningful).
    seed:
        RNG seed.
    max_atoms:
        Maximum number of relational atoms per query.
    selection_probability:
        Chance of adding one equality selection with a sampled constant.
    range_probability:
        Chance of adding one range selection (``<=`` or ``>``) with a
        sampled constant — workloads exercising the planner's ordered
        access paths (range pushdown) set this above zero.
    """

    def __init__(
        self,
        schema: Schema,
        db: Database | None = None,
        seed: int = 7,
        max_atoms: int = 3,
        selection_probability: float = 0.7,
        range_probability: float = 0.0,
    ) -> None:
        self.schema = schema
        self.db = db
        self.max_atoms = max_atoms
        self.selection_probability = selection_probability
        self.range_probability = range_probability
        self._rng = random.Random(seed)
        self._joins = self._join_edges()

    def _join_edges(self) -> list[tuple[str, str, str, str]]:
        """FK-derived join edges: (relation, column, relation, column)."""
        edges = []
        for relation in self.schema:
            for fk in relation.foreign_keys:
                for column, ref_column in zip(fk.columns, fk.ref_columns):
                    edges.append(
                        (relation.name, column, fk.ref_relation, ref_column)
                    )
        return edges

    def _sample_constant(self, relation: str, position: int) -> object | None:
        if self.db is None:
            return None
        rows = self.db.relation(relation).rows()
        if not rows:
            return None
        return self._rng.choice(rows)[position]

    def generate(self, name: str = "Q") -> ConjunctiveQuery:
        """Generate one random query."""
        rng = self._rng
        atom_count = rng.randint(1, self.max_atoms)
        counter = 0

        def fresh(prefix: str) -> Variable:
            nonlocal counter
            counter += 1
            return Variable(f"{prefix}{counter}")

        relations = list(self.schema.relation_names)
        first = rng.choice(relations)
        atoms: list[RelationalAtom] = []
        variables_of: dict[int, list[Variable]] = {}

        def add_atom(relation: str) -> int:
            rel_schema = self.schema.relation(relation)
            terms = [fresh("X") for __ in range(rel_schema.arity)]
            atoms.append(RelationalAtom(relation, terms))
            variables_of[len(atoms) - 1] = terms
            return len(atoms) - 1

        add_atom(first)
        while len(atoms) < atom_count:
            # Prefer FK joins touching an existing atom; fall back to a
            # self-contained extra atom.
            candidates = []
            for index, atom in enumerate(atoms):
                for left_rel, left_col, right_rel, right_col in self._joins:
                    if atom.relation == left_rel:
                        candidates.append(
                            (index, left_col, right_rel, right_col)
                        )
                    if atom.relation == right_rel:
                        candidates.append(
                            (index, right_col, left_rel, left_col)
                        )
            if not candidates:
                add_atom(rng.choice(relations))
                continue
            index, column, other_relation, other_column = rng.choice(
                candidates
            )
            existing_schema = self.schema.relation(atoms[index].relation)
            shared = variables_of[index][existing_schema.position(column)]
            new_index = add_atom(other_relation)
            other_schema = self.schema.relation(other_relation)
            other_position = other_schema.position(other_column)
            terms = list(atoms[new_index].terms)
            terms[other_position] = shared
            atoms[new_index] = RelationalAtom(other_relation, terms)
            variables_of[new_index] = list(terms)

        comparisons: list[ComparisonAtom] = []
        if rng.random() < self.selection_probability:
            target_index = rng.randrange(len(atoms))
            relation = atoms[target_index].relation
            rel_schema = self.schema.relation(relation)
            position = rng.randrange(rel_schema.arity)
            constant = self._sample_constant(relation, position)
            if constant is not None:
                term = atoms[target_index].terms[position]
                if isinstance(term, Variable):
                    comparisons.append(
                        ComparisonAtom(
                            term, ComparisonOp.EQ, Constant(constant)
                        )
                    )
        if rng.random() < self.range_probability:
            # Range selections feed the planner's ordered access paths;
            # sampling the bound from stored values keeps them selective
            # but satisfiable, like the equality selections above.
            target_index = rng.randrange(len(atoms))
            relation = atoms[target_index].relation
            rel_schema = self.schema.relation(relation)
            position = rng.randrange(rel_schema.arity)
            constant = self._sample_constant(relation, position)
            if constant is not None and constant == constant:
                term = atoms[target_index].terms[position]
                if isinstance(term, Variable):
                    op = rng.choice((ComparisonOp.LE, ComparisonOp.GT))
                    comparisons.append(
                        ComparisonAtom(term, op, Constant(constant))
                    )

        all_variables: list[Variable] = []
        for atom in atoms:
            for var in atom.variables():
                if var not in all_variables:
                    all_variables.append(var)
        head_size = rng.randint(1, min(3, len(all_variables)))
        head = rng.sample(all_variables, head_size)
        query = ConjunctiveQuery(name, head, atoms, comparisons)
        query.check_safety()
        return query

    def generate_many(
        self, count: int, prefix: str = "Q"
    ) -> list[ConjunctiveQuery]:
        """Generate ``count`` queries named ``prefix0..prefixN``."""
        return [self.generate(f"{prefix}{i}") for i in range(count)]
