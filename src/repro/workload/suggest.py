"""Greedy citation-view suggestion from a query log.

Section 4 lists deciding "what citation views should be specified" from
usage logs as an open problem.  This module implements a pragmatic greedy
algorithm:

1. **Candidate mining**: every connected sub-conjunction (of bounded size)
   of a logged query becomes a candidate view; variables shared with the
   rest of the query or the head become distinguished, and variables pinned
   by equality selections become λ-parameters (so the view generalizes the
   selection, as the paper's ``V4`` generalizes ``Ty = "gpcr"``).
2. **Scoring**: a candidate's utility is the total frequency of log
   queries it can help rewrite (a coverage descriptor exists).
3. **Greedy selection**: repeatedly pick the candidate with the highest
   marginal utility (queries not yet covered by chosen views) until ``k``
   views are chosen or nothing improves.

Suggested views get the view definition itself as citation query (head =
the view's head) — owners then refine ``C_V``/``F_V`` by hand, which is
exactly the paper's division of labour.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.containment import normalize_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.rewriting.descriptors import descriptors_for
from repro.views.citation_view import CitationView
from repro.views.registry import ViewRegistry
from repro.workload.logs import QueryLog


def _connected_subsets(
    query: ConjunctiveQuery, max_size: int
) -> list[tuple[int, ...]]:
    """Indices of connected sub-conjunctions of the query's atoms."""
    atoms = query.atoms
    subsets: list[tuple[int, ...]] = []
    for size in range(1, min(max_size, len(atoms)) + 1):
        for combo in itertools.combinations(range(len(atoms)), size):
            if _is_connected(atoms, combo):
                subsets.append(combo)
    return subsets


def _is_connected(
    atoms: Sequence[RelationalAtom], indices: tuple[int, ...]
) -> bool:
    if len(indices) == 1:
        return True
    remaining = set(indices[1:])
    reached_vars = set(atoms[indices[0]].variables())
    while remaining:
        expanded = {
            index for index in remaining
            if reached_vars & set(atoms[index].variables())
        }
        if not expanded:
            return False
        for index in expanded:
            reached_vars.update(atoms[index].variables())
        remaining -= expanded
    return True


def _candidate_from_subset(
    query: ConjunctiveQuery,
    indices: tuple[int, ...],
    name: str,
) -> ConjunctiveQuery | None:
    """Generalize a sub-conjunction into a parameterized view definition."""
    atoms = [query.atoms[i] for i in indices]

    # Generalize inline constants into λ-parameters, so a logged selection
    # like Family(F, N, "gpcr") suggests the paper's λTy-style view rather
    # than one hard-wired to "gpcr".
    generalized: dict[Constant, Variable] = {}
    lifted_atoms: list[RelationalAtom] = []
    used_names = {v.name for v in query.variables()}
    for atom in atoms:
        terms = []
        for term in atom.terms:
            if isinstance(term, Constant):
                param = generalized.get(term)
                if param is None:
                    index = len(generalized)
                    name_candidate = f"P{index}"
                    while name_candidate in used_names:
                        name_candidate = f"P{index}_{len(used_names)}"
                    param = Variable(name_candidate)
                    used_names.add(name_candidate)
                    generalized[term] = param
                terms.append(param)
            else:
                terms.append(term)
        lifted_atoms.append(RelationalAtom(atom.relation, terms))
    atoms = lifted_atoms

    inside_vars: set[Variable] = set()
    for atom in atoms:
        inside_vars.update(atom.variables())
    outside_vars: set[Variable] = set(query.head_variables())
    for index, atom in enumerate(query.atoms):
        if index not in indices:
            outside_vars.update(atom.variables())

    # Variables pinned by equality selections become λ-parameters.
    parameters: list[Variable] = list(generalized.values())
    for comparison in query.comparisons:
        if not isinstance(comparison, ComparisonAtom):
            continue
        left, right = comparison.left, comparison.right
        if (isinstance(left, Variable) and left in inside_vars
                and isinstance(right, Constant)
                and left not in parameters):
            parameters.append(left)

    head: list[Variable] = []
    for atom in atoms:
        for var in atom.variables():
            if var in head:
                continue
            if var in outside_vars or var in parameters:
                head.append(var)
    if not head:
        # Fully existential sub-conjunction: export everything instead.
        head = [v for atom in atoms for v in atom.variables()]
        head = list(dict.fromkeys(head))
    try:
        candidate = ConjunctiveQuery(name, head, atoms, (), parameters)
        candidate.check_safety()
    except Exception:
        return None
    return candidate


def _canonical_key(view: ConjunctiveQuery) -> tuple:
    """Renaming-invariant key to deduplicate candidate views."""
    renaming: dict[str, str] = {}

    def canon(term: object) -> str:
        if isinstance(term, Variable):
            if term.name not in renaming:
                renaming[term.name] = f"v{len(renaming)}"
            return renaming[term.name]
        return repr(term)

    atom_keys = tuple(
        (atom.relation, tuple(canon(t) for t in atom.terms))
        for atom in view.atoms
    )
    head_key = tuple(canon(t) for t in view.head)
    param_key = tuple(canon(p) for p in view.parameters)
    return (atom_keys, head_key, param_key)


def _covers(view: CitationView, query: ConjunctiveQuery) -> bool:
    """Can the view participate in rewriting the query at all?"""
    normalized, satisfiable = normalize_query(query)
    if not satisfiable:
        return False
    return bool(descriptors_for(normalized, view))


def coverage_of_views(
    views: Sequence[CitationView], log: QueryLog
) -> float:
    """Fraction of log frequency touchable by at least one view."""
    total = log.total_frequency
    if total == 0:
        return 0.0
    covered = sum(
        entry.frequency
        for entry in log
        if any(_covers(view, entry.query) for view in views)
    )
    return covered / total


def suggest_views(
    log: QueryLog,
    registry: ViewRegistry,
    k: int = 3,
    max_view_atoms: int = 2,
    name_prefix: str = "SV",
) -> list[CitationView]:
    """Greedily suggest up to ``k`` citation views for a query log.

    ``registry`` supplies the schema (suggested views are *not* added to
    it — the owner reviews them first).  Suggested views use their own
    definition as citation query; refine ``C_V``/``F_V`` afterwards.
    """
    candidates: dict[tuple, ConjunctiveQuery] = {}
    for entry in log:
        normalized, satisfiable = normalize_query(entry.query)
        if not satisfiable:
            continue
        for indices in _connected_subsets(normalized, max_view_atoms):
            candidate = _candidate_from_subset(
                normalized, indices, "candidate"
            )
            if candidate is None:
                continue
            candidates.setdefault(_canonical_key(candidate), candidate)

    # Wrap candidates as citation views for descriptor-based scoring.
    wrapped: list[CitationView] = []
    for index, definition in enumerate(candidates.values()):
        name = f"{name_prefix}{index}"
        named = definition.with_name(name)
        citation_query = named.with_name(f"C{name}")
        try:
            wrapped.append(CitationView(named, citation_query))
        except Exception:
            continue

    chosen: list[CitationView] = []
    uncovered = list(log)
    while len(chosen) < k and wrapped:
        def marginal(view: CitationView) -> int:
            return sum(
                entry.frequency for entry in uncovered
                if _covers(view, entry.query)
            )

        best = max(wrapped, key=marginal)
        gain = marginal(best)
        if gain == 0:
            break
        chosen.append(best)
        wrapped.remove(best)
        uncovered = [
            entry for entry in uncovered if not _covers(best, entry.query)
        ]
    # Rename deterministically in selection order.
    renamed: list[CitationView] = []
    for index, view in enumerate(chosen):
        name = f"{name_prefix}{index}"
        renamed.append(
            CitationView(
                view.view.with_name(name),
                view.citation_query.with_name(f"C{name}"),
                view.citation_function,
                view.labels,
                description="suggested from query log",
            )
        )
    return renamed
