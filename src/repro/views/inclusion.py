"""View inclusion — the "best fit" order of Example 3.8.

The paper prefers citing a view ``V1`` over ``V2`` when ``V1`` is included
in ``V2``: the finer view is a better fit than the very general one.  Two
notions combine here:

- **extension inclusion**: every tuple ever produced by ``V1`` (under any
  λ-valuation) is produced by ``V2`` (under some valuation).  Because
  Def 2.1 requires λ-parameters to be head variables, the union of all
  instances equals the unparameterized extension, so this reduces to
  classical CQ containment of the parameter-stripped definitions.
- **granularity**: when extensions coincide (e.g. the paper's ``V1`` with
  λF versus ``V3`` with no λ over the same body), the view with *more*
  λ-parameters partitions its output more finely and is considered
  strictly finer — its citations credit more specific contributors.
"""

from __future__ import annotations

from repro.cq.containment import is_contained_in
from repro.views.citation_view import CitationView


def view_included_in(v1: CitationView, v2: CitationView) -> bool:
    """Is every tuple of ``v1`` (any valuation) a tuple of ``v2``?

    Views with different head arities are incomparable (returns False).
    """
    q1 = v1.view.with_parameters(())
    q2 = v2.view.with_parameters(())
    if len(q1.head) != len(q2.head):
        return False
    return is_contained_in(q1, q2)


def view_strictly_finer(v1: CitationView, v2: CitationView) -> bool:
    """Is ``v1`` a strictly better fit ("finer") than ``v2``?

    True when ``v1 ⊆ v2`` and either the inclusion is strict or — for
    equivalent extensions — ``v1`` has more λ-parameters (finer citation
    granularity, as with the paper's ``V1`` λF versus ``V3``).
    """
    if not view_included_in(v1, v2):
        return False
    if not view_included_in(v2, v1):
        return True
    return len(v1.parameters) > len(v2.parameters)
