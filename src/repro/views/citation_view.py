"""The citation-view triple ``(V, C_V, F_V)`` of Definition 2.1.

``V`` and ``C_V`` are conjunctive queries sharing the same ordered
λ-parameters ``X``; for every valuation of ``X`` the citation function
``F_V`` turns the output of ``C_V`` into a single citation record that
annotates *all* tuples of the corresponding view instance.

Example (the paper's ``V1``/``CV1``)::

    v1 = CitationView.from_strings(
        view="lambda F. V1(F, N, Ty) :- Family(F, N, Ty)",
        citation_query=(
            "lambda F. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), "
            "Person(C, Pn, A)"
        ),
        labels=("ID", "Name", "Committee"),
    )
    v1.citation_for(db, ("11",))
    # {"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.cq.evaluation import evaluate_query
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlanner
from repro.cq.query import ConjunctiveQuery
from repro.errors import ParameterError, ViewError
from repro.relational.database import Database

#: Signature of a citation function F_V: rows of the (instantiated)
#: citation query, head labels, and the λ-parameter valuation.
CitationFunction = Callable[
    [list[tuple[Any, ...]], Sequence[str], Mapping[str, Any]], dict
]


def default_citation_function(
    rows: list[tuple[Any, ...]],
    labels: Sequence[str],
    params: Mapping[str, Any],
) -> dict:
    """The library's default ``F_V``: fold rows into one JSON-like record.

    Columns with a single distinct value become scalar fields; columns with
    several values become sorted lists.  This reproduces the JSON citations
    of Example 2.1, e.g. two committee rows for family 11 fold into
    ``Committee: ["Hay", "Poyner"]``.
    """
    record: dict[str, Any] = {}
    for index, label in enumerate(labels):
        values: dict[Any, None] = {}
        for row in rows:
            values.setdefault(row[index])
        distinct = list(values)
        if len(distinct) == 1:
            record[label] = distinct[0]
        elif distinct:
            try:
                record[label] = sorted(distinct)
            except TypeError:
                record[label] = sorted(distinct, key=repr)
    return record


class RecordCitationFunction:
    """A configurable record-building ``F_V``.

    Parameters
    ----------
    list_fields:
        Labels that should always render as lists, even when a single
        value is present (e.g. ``Committee``).
    constant_fields:
        Extra constant fields injected into every citation produced by the
        view (e.g. ``{"Database": "GtoPdb"}``).
    """

    def __init__(
        self,
        list_fields: Sequence[str] = (),
        constant_fields: Mapping[str, Any] | None = None,
    ) -> None:
        self._list_fields = set(list_fields)
        self._constant_fields = dict(constant_fields or {})

    def __call__(
        self,
        rows: list[tuple[Any, ...]],
        labels: Sequence[str],
        params: Mapping[str, Any],
    ) -> dict:
        record = default_citation_function(rows, labels, params)
        for label in self._list_fields:
            if label in record and not isinstance(record[label], list):
                record[label] = [record[label]]
        record.update(self._constant_fields)
        return record


class CitationView:
    """A citation view ``(V, C_V, F_V)``.

    Parameters
    ----------
    view:
        The view definition ``λX. V(Y) :- Q`` (a safe conjunctive query;
        its λ-parameters must be head variables, per Def 2.1's ``X ⊆ Y``).
    citation_query:
        The citation query ``λX. C_V(Y') :- Q'`` with the same parameter
        names in the same order.
    citation_function:
        ``F_V``; defaults to :func:`default_citation_function`.
    labels:
        Labels for the citation query's head columns (used by record-
        building citation functions).  Defaults to ``col0..colN``.
    description:
        Optional human-readable description shown in documentation output.
    """

    def __init__(
        self,
        view: ConjunctiveQuery,
        citation_query: ConjunctiveQuery,
        citation_function: CitationFunction | None = None,
        labels: Sequence[str] | None = None,
        description: str = "",
    ) -> None:
        view.check_safety()
        citation_query.check_safety()
        view_params = [p.name for p in view.parameters]
        cq_params = [p.name for p in citation_query.parameters]
        if view_params != cq_params:
            raise ParameterError(
                f"view {view.name} and citation query {citation_query.name} "
                f"must share λ-parameters: {view_params} vs {cq_params}"
            )
        head_vars = {v.name for v in view.head_variables()}
        for param in view_params:
            if param not in head_vars:
                raise ViewError(
                    f"λ-parameter {param!r} of view {view.name} must be a "
                    "head variable (Def 2.1 requires X ⊆ Y)"
                )
        self.view = view
        self.citation_query = citation_query
        self.citation_function: CitationFunction = (
            citation_function or default_citation_function
        )
        if labels is None:
            labels = tuple(f"col{i}" for i in range(len(citation_query.head)))
        if len(labels) != len(citation_query.head):
            raise ViewError(
                f"{view.name}: got {len(labels)} labels for a citation query "
                f"with {len(citation_query.head)} head columns"
            )
        self.labels: tuple[str, ...] = tuple(labels)
        self.description = description
        # Hoisted parameterless forms: the full-extension queries used by
        # `instance()`/`citation_rows()` when no valuation is supplied.
        # Deriving them once here (instead of per call) keeps repeated
        # portal materializations α-equivalent *and* object-identical, so
        # a shared planner's exact-match fast path hits.
        self._view_extension = (
            view.with_parameters(()) if view.is_parameterized else view
        )
        self._citation_extension = (
            citation_query.with_parameters(())
            if citation_query.is_parameterized
            else citation_query
        )

    # -- convenience constructors ------------------------------------------------

    @classmethod
    def from_strings(
        cls,
        view: str,
        citation_query: str,
        citation_function: CitationFunction | None = None,
        labels: Sequence[str] | None = None,
        description: str = "",
    ) -> "CitationView":
        """Build a citation view from Datalog-style strings."""
        return cls(
            parse_query(view),
            parse_query(citation_query),
            citation_function,
            labels,
            description,
        )

    # -- inspection ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """The view's name (its head predicate)."""
        return self.view.name

    @property
    def parameters(self) -> tuple:
        """The λ-parameters (shared by view and citation query)."""
        return self.view.parameters

    @property
    def is_parameterized(self) -> bool:
        return self.view.is_parameterized

    def parameter_positions(self) -> tuple[int, ...]:
        """Positions of the λ-parameters within the view head.

        Because ``X ⊆ Y``, every parameter occurs in the head; its first
        head position is used to read parameter values off view atoms in
        rewritings.
        """
        positions = []
        for param in self.view.parameters:
            for index, term in enumerate(self.view.head):
                if term == param:
                    positions.append(index)
                    break
        return tuple(positions)

    # -- semantics -----------------------------------------------------------------

    def instance(
        self,
        db: Database,
        params: Sequence[Any] | None = None,
        planner: QueryPlanner | None = None,
    ) -> list[tuple[Any, ...]]:
        """The view instance ``V(Y)(a1..an)`` (or the full unparameterized
        extension when ``params`` is omitted).

        With a ``planner`` the evaluation goes through its shared plan
        cache, so repeated portal instantiations plan the view once.
        """
        if params is None and self.is_parameterized:
            return evaluate_query(self._view_extension, db, planner=planner)
        return evaluate_query(self.view, db, params=params, planner=planner)

    def citation_rows(
        self,
        db: Database,
        params: Sequence[Any] | None = None,
        planner: QueryPlanner | None = None,
    ) -> list[tuple[Any, ...]]:
        """Output of the citation query for a parameter valuation."""
        if params is None and self.is_parameterized:
            return evaluate_query(
                self._citation_extension, db, planner=planner
            )
        return evaluate_query(
            self.citation_query, db, params=params, planner=planner
        )

    def citation_for(
        self,
        db: Database,
        params: Sequence[Any] = (),
        planner: QueryPlanner | None = None,
    ) -> dict:
        """The citation record ``F_V(C_V(Y')(a1..an))``."""
        if len(params) != len(self.parameters):
            raise ParameterError(
                f"{self.name} takes {len(self.parameters)} parameter(s), "
                f"got {len(params)}"
            )
        rows = self.citation_rows(
            db,
            params=list(params) if params else None,
            planner=planner,
        )
        param_map = {
            param.name: value
            for param, value in zip(self.parameters, params)
        }
        return self.citation_function(rows, self.labels, param_map)

    def __repr__(self) -> str:
        return f"CitationView({self.view!r})"
