"""The registry of citation views a database owner declares.

The paper: "owners of the database specify citations to a small set of
(possibly parameterized) views of the database which represent typical
usage patterns".  A :class:`ViewRegistry` holds those views, validates them
against the database schema, and can materialize their extensions so
rewritings (whose atoms mention view names) can be evaluated directly.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING, Any

from repro.errors import DuplicateViewError, UnknownRelationError, ViewError
from repro.relational.database import Database
from repro.relational.schema import Schema
from repro.views.citation_view import CitationView

if TYPE_CHECKING:  # pragma: no cover
    from repro.cq.plan import QueryPlanner


class ViewRegistry:
    """An ordered collection of citation views over one schema."""

    def __init__(
        self, schema: Schema, views: Sequence[CitationView] = ()
    ) -> None:
        self.schema = schema
        self._views: dict[str, CitationView] = {}
        for view in views:
            self.add(view)

    # -- mutation --------------------------------------------------------------

    def add(self, view: CitationView) -> None:
        """Register a view after validating it against the schema.

        Checks: unique name, no clash with base relations, and every body
        atom of both the view definition and the citation query refers to a
        base relation with the right arity.
        """
        if view.name in self._views:
            raise DuplicateViewError(f"duplicate view name: {view.name!r}")
        if view.name in self.schema:
            raise ViewError(
                f"view name {view.name!r} clashes with a base relation"
            )
        for query in (view.view, view.citation_query):
            for atom in query.atoms:
                if atom.relation not in self.schema:
                    raise UnknownRelationError(atom.relation)
            query.validate_against(self.schema)
        self._views[view.name] = view

    # -- access -----------------------------------------------------------------

    def get(self, name: str) -> CitationView:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"no citation view named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def __iter__(self) -> Iterator[CitationView]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._views)

    # -- materialization -----------------------------------------------------------

    def materialize(
        self,
        db: Database,
        names: Sequence[str] | None = None,
        planner: "QueryPlanner | None" = None,
    ) -> dict[str, list[tuple[Any, ...]]]:
        """Compute the full extension of each view (λ-parameters free).

        Because Def 2.1 requires ``X ⊆ Y``, the unparameterized extension
        is the union of all instantiations, so rewritings that mention view
        atoms can be evaluated against these extensions as virtual
        relations.  With a ``planner`` each extension query goes through
        the shared plan cache, so re-materialization replans nothing.
        """
        selected = names if names is not None else self.names
        return {
            name: self.get(name).instance(db, planner=planner)
            for name in selected
        }

    def __repr__(self) -> str:
        return f"ViewRegistry({list(self._views)})"
