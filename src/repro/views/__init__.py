"""Citation views (paper, Definition 2.1).

A citation view is a triple ``(V, C_V, F_V)``: a (possibly λ-parameterized)
view definition, a citation query over the same parameters, and a citation
function that formats the citation query's output into a citation record.
"""

from repro.views.citation_view import (
    CitationView,
    CitationFunction,
    RecordCitationFunction,
    default_citation_function,
)
from repro.views.registry import ViewRegistry
from repro.views.inclusion import view_included_in, view_strictly_finer

__all__ = [
    "CitationView",
    "CitationFunction",
    "RecordCitationFunction",
    "default_citation_function",
    "ViewRegistry",
    "view_included_in",
    "view_strictly_finer",
]
