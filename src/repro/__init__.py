"""``repro`` — fine-grained data citation for relational databases.

A complete, from-scratch reproduction of

    Susan B. Davidson, Daniel Deutch, Tova Milo, Gianmaria Silvello.
    "A Model for Fine-Grained Data Citation." CIDR 2017.

The library lets a database owner attach citations to (possibly
λ-parameterized) *citation views* and then automatically generates a
citation for **any** conjunctive query by rewriting it using the views and
combining the views' citations through a semiring-style algebra
(``+``, ``·``, ``+R``, ``Agg``) under a configurable policy.

Quickstart::

    from repro import CitationEngine
    from repro.gtopdb import paper_database, paper_registry

    db = paper_database()
    engine = CitationEngine(db, paper_registry())
    result = engine.cite('Q(N) :- Family(F,N,Ty), Ty = "gpcr"')
    print(result.citation())

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.relational` — in-memory relational engine;
- :mod:`repro.cq` — conjunctive queries, parsing, evaluation, containment;
- :mod:`repro.semiring` — provenance semirings (Green et al.);
- :mod:`repro.views` — citation views (Def 2.1);
- :mod:`repro.rewriting` — rewriting using views (Def 2.2);
- :mod:`repro.citation` — the citation algebra (Section 3) and policies;
- :mod:`repro.gtopdb` — the paper's running-example database;
- :mod:`repro.fixity` — versioned databases and version-stamped citations;
- :mod:`repro.workload` — query workloads, logs, view suggestion;
- :mod:`repro.baseline` — the hard-coded page-view baseline.
"""

from repro.relational import (
    Database,
    Schema,
    RelationSchema,
    Attribute,
    ForeignKey,
)
from repro.cq import (
    ConjunctiveQuery,
    parse_query,
    parse_sql,
    evaluate_query,
    are_equivalent,
    is_contained_in,
    minimize,
)
from repro.views import CitationView, ViewRegistry
from repro.rewriting import RewritingEngine, Rewriting, enumerate_rewritings
from repro.citation import (
    CitationEngine,
    CitationResult,
    CitationPolicy,
    comprehensive_policy,
    focused_policy,
    compact_policy,
    render_json,
    render_text,
    render_xml,
    render_bibtex,
)
from repro.fixity import VersionedDatabase, VersionedCitationEngine
from repro.baseline import PageViewBaseline
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Schema",
    "RelationSchema",
    "Attribute",
    "ForeignKey",
    "ConjunctiveQuery",
    "parse_query",
    "parse_sql",
    "evaluate_query",
    "are_equivalent",
    "is_contained_in",
    "minimize",
    "CitationView",
    "ViewRegistry",
    "RewritingEngine",
    "Rewriting",
    "enumerate_rewritings",
    "CitationEngine",
    "CitationResult",
    "CitationPolicy",
    "comprehensive_policy",
    "focused_policy",
    "compact_policy",
    "render_json",
    "render_text",
    "render_xml",
    "render_bibtex",
    "VersionedDatabase",
    "VersionedCitationEngine",
    "PageViewBaseline",
    "ReproError",
    "__version__",
]
