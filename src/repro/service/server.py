"""The asyncio citation service: one warm engine, many clients.

``repro serve`` starts a long-running HTTP front end over a single
shared :class:`~repro.citation.generator.CitationEngine`, so the
expensive warm state — plan cache, rewriting cache, sub-plan memo,
secondary/composite indexes, per-shard statistics — amortizes across
*all* traffic instead of dying with every consumer process.  Endpoints
(all JSON over HTTP/1.1; see ``docs/service.md`` for schemas):

========================  ====================================================
``POST /cite``            cite one query; concurrent requests are
                          micro-batched into ``cite_batch`` across clients
``POST /cite-batch``      cite a list of queries as one shared batch
``POST /plan``            EXPLAIN + QA diagnostics as JSON
``POST /analyze``         QA diagnostics only
``POST /insert``          insert rows; graceful cache invalidation
``POST /delete``          delete rows; graceful cache invalidation
``GET /stats``            cache hit/miss/eviction counters, sub-plan memo
                          reservations, shipped bytes, latency histograms
``GET /healthz``          liveness (``{"status": "ok"}``)
========================  ====================================================

Robustness is first-class: per-request timeouts (504 — the job keeps
running on the lane so batch-mates are unaffected), a bounded admission
queue with backpressure (429 + ``Retry-After``), payload limits (413),
and graceful drain on SIGTERM (stop accepting, finish in-flight work,
then exit 0).  Queries that static analysis proves empty are refused
with 422 — the HTTP rendering of the CLI's exit status 3.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.analysis import analyze_query, analyze_union, has_errors
from repro.analysis import sanitizer as _sanitizer
from repro.citation.generator import CitationEngine, CitationResult
from repro.cq.ucq import UnionQuery, parse_union_query
from repro.errors import ReproError
from repro.service.batcher import (
    AdmissionFull,
    EngineLane,
    LaneClosed,
    wait_bounded,
)
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    HttpRequest,
    PayloadTooLarge,
    ProtocolError,
    read_request,
    render_response,
)

logger = logging.getLogger("repro.service")


@dataclass
class ServiceConfig:
    """Operational knobs for :class:`CitationService`.

    Attributes
    ----------
    host / port:
        Bind address; port 0 binds an ephemeral port (the bound port is
        readable as :attr:`CitationService.port` after start — tests and
        the smoke harness use this).
    request_timeout_s:
        Deadline per request, measured over the engine work.  Expiry
        answers 504; the underlying job still completes on the lane.
    max_body_bytes:
        Request-body limit; larger uploads are refused with 413 before
        the body is buffered.
    max_pending:
        Admission-queue bound (queued + running engine jobs); beyond it
        requests are rejected with 429 + ``Retry-After``.
    max_batch / batch_linger_s:
        Micro-batching: the largest cross-client coalesced batch, and
        how long the lane lingers for concurrent arrivals before
        executing one (see :class:`~repro.service.batcher.EngineLane`).
    retry_after_s:
        The ``Retry-After`` hint on 429 responses.
    drain_timeout_s:
        How long graceful shutdown waits for in-flight requests.
    """

    host: str = "127.0.0.1"
    port: int = 8747
    request_timeout_s: float = 30.0
    max_body_bytes: int = 1_000_000
    max_pending: int = 64
    max_batch: int = 16
    batch_linger_s: float = 0.002
    retry_after_s: float = 1.0
    drain_timeout_s: float = 10.0


class _HttpError(Exception):
    """Internal: an error response with a status and JSON payload."""

    def __init__(self, status: int, payload: dict[str, Any],
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


def _diagnostic_json(diagnostics: list[Any]) -> list[dict[str, Any]]:
    return [
        {
            "code": finding.code,
            "severity": finding.severity,
            "message": finding.describe(),
        }
        for finding in diagnostics
    ]


def _is_union_text(text: str) -> bool:
    """True when Datalog text stacks more than one rule (a UCQ)."""
    rules = [
        chunk for chunk in text.replace(";", "\n").splitlines()
        if chunk.strip()
    ]
    return len(rules) > 1


def cite_mixed(
    engine: CitationEngine, queries: list[Any]
) -> list[CitationResult]:
    """Cite a parsed mixed CQ/UCQ batch in order (one engine pass).

    The CQ subset goes through one ``cite_batch`` (maximal cross-query
    sharing), unions through ``cite_union``; results return in request
    order — the same interleave as
    :func:`repro.workload.runner.run_workload`.
    """
    conjunctive = [q for q in queries if not isinstance(q, UnionQuery)]
    batched = iter(engine.cite_batch(conjunctive))
    return [
        engine.cite_union(query) if isinstance(query, UnionQuery)
        else next(batched)
        for query in queries
    ]


class _Connection:
    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.busy = False


class CitationService:
    """The HTTP front end over one shared warm :class:`CitationEngine`."""

    def __init__(
        self,
        engine: CitationEngine,
        config: ServiceConfig | None = None,
    ) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.lane = EngineLane(
            engine,
            max_pending=self.config.max_pending,
            max_batch=self.config.max_batch,
            batch_linger_s=self.config.batch_linger_s,
            on_batch=self.metrics.observe_batch,
        )
        self._server: asyncio.AbstractServer | None = None
        # QA diagnostics are pure in (query, stats_version): repeat
        # traffic skips the analysis lane job entirely.  Version-keyed
        # like the engine's plan cache, so mutations invalidate lazily.
        self._analysis_cache: dict[tuple[str, int], list[Any]] = {}
        self._analysis_cache_max = 256
        self._connections: set[_Connection] = set()
        self._draining = False
        self._stopped = asyncio.Event()
        self.port: int | None = None
        self._routes = {
            ("POST", "/cite"): self._handle_cite,
            ("POST", "/cite-batch"): self._handle_cite_batch,
            ("POST", "/plan"): self._handle_plan,
            ("POST", "/analyze"): self._handle_analyze,
            ("POST", "/insert"): self._handle_insert,
            ("POST", "/delete"): self._handle_delete,
            ("GET", "/stats"): self._handle_stats,
            ("GET", "/healthz"): self._handle_healthz,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self.lane.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        sockets = self._server.sockets or ()
        self.port = sockets[0].getsockname()[1] if sockets else None
        logger.info(json.dumps({
            "event": "listening",
            "host": self.config.host,
            "port": self.port,
        }))

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, stop lane."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        logger.info(json.dumps({"event": "draining"}))
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections sit in read_request; closing their
        # transports releases them.  Busy connections finish their
        # current response first (the handler re-checks _draining).
        for connection in list(self._connections):
            if not connection.busy:
                connection.writer.close()
        deadline = time.monotonic() + self.config.drain_timeout_s
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for connection in list(self._connections):
            connection.writer.close()
        await self.lane.stop()
        self._stopped.set()
        logger.info(json.dumps({"event": "stopped"}))

    async def serve_until_signal(self) -> None:
        """Run until SIGTERM/SIGINT, then drain gracefully."""
        await self.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loop: Ctrl-C surfaces as KeyboardInterrupt
        try:
            await stop.wait()
        finally:
            await self.shutdown()

    # ------------------------------------------------------------------
    # connection loop
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_accepted += 1
        connection = _Connection(writer)
        self._connections.add(connection)
        try:
            while not self._draining:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except ProtocolError as exc:
                    self.metrics.protocol_errors += 1
                    writer.write(render_response(
                        exc.status, {"error": str(exc)}, keep_alive=False
                    ))
                    await writer.drain()
                    return
                except (ConnectionError, asyncio.CancelledError):
                    return
                if request is None:
                    return
                connection.busy = True
                try:
                    keep_alive = await self._respond(request, writer)
                finally:
                    connection.busy = False
                if not keep_alive:
                    return
        finally:
            self._connections.discard(connection)
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _respond(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        started = time.perf_counter()
        endpoint = f"{request.method} {request.path}"
        headers: dict[str, str] = {}
        try:
            handler = self._routes.get((request.method, request.path))
            if handler is None:
                if any(path == request.path
                       for __, path in self._routes):
                    raise _HttpError(405, {
                        "error": f"method {request.method} not allowed "
                                 f"on {request.path}",
                    })
                raise _HttpError(404, {
                    "error": f"unknown endpoint {request.path}",
                    "endpoints": sorted(
                        f"{method} {path}"
                        for method, path in self._routes
                    ),
                })
            status, payload = await handler(request)
        except _HttpError as exc:
            status, payload, headers = exc.status, exc.payload, exc.headers
        except (AdmissionFull, LaneClosed) as exc:
            retry_after = self.config.retry_after_s
            status, payload = 429 if isinstance(exc, AdmissionFull) else 503, {
                "error": str(exc) or exc.__class__.__name__,
            }
            headers = {"Retry-After": f"{retry_after:g}"}
        except asyncio.TimeoutError:
            status, payload = 504, {
                "error": "request timed out after "
                         f"{self.config.request_timeout_s:g}s; "
                         "the work completes server-side",
            }
        except ProtocolError as exc:
            self.metrics.protocol_errors += 1
            status, payload = exc.status, {"error": str(exc)}
        except ReproError as exc:
            status, payload = 400, {
                "error": str(exc), "kind": exc.__class__.__name__,
            }
        except Exception as exc:  # noqa: B902 - service must not die
            logger.exception("internal error on %s", endpoint)
            status, payload = 500, {
                "error": f"internal error: {exc.__class__.__name__}",
            }
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        keep_alive = request.keep_alive and not self._draining
        self.metrics.observe_request(endpoint, status, elapsed_ms)
        logger.info(json.dumps({
            "event": "request",
            "method": request.method,
            "path": request.path,
            "status": status,
            "ms": round(elapsed_ms, 2),
            "outstanding": self.lane.outstanding,
        }))
        try:
            writer.write(render_response(
                status, payload, extra_headers=headers,
                keep_alive=keep_alive,
            ))
            await writer.drain()
        except ConnectionError:
            return False
        return keep_alive

    # ------------------------------------------------------------------
    # request helpers
    # ------------------------------------------------------------------

    def _body_object(self, request: HttpRequest) -> dict[str, Any]:
        body = request.json()
        if not isinstance(body, dict):
            raise _HttpError(400, {
                "error": "request body must be a JSON object",
            })
        return body

    def _query_text(self, body: dict[str, Any]) -> str:
        text = body.get("query")
        if not isinstance(text, str) or not text.strip():
            raise _HttpError(400, {
                "error": 'body must carry a non-empty "query" string',
            })
        return text

    def _parse(self, text: str, sql: bool) -> Any:
        """Parse request text into a CQ or UnionQuery (400 on errors)."""
        if sql:
            from repro.cq.sql_parser import parse_sql

            return parse_sql(text, self.engine.db.schema)
        if _is_union_text(text):
            return parse_union_query(text)
        from repro.cq.parser import parse_query

        return parse_query(text)

    async def _analyze_on_lane(self, query: Any) -> list[Any]:
        """QA diagnostics, serialized with writes on the engine lane."""
        engine = self.engine
        key = (repr(query), engine.db.stats_version)
        cached = self._analysis_cache.get(key)
        if cached is not None:
            if _sanitizer._active:
                _sanitizer.check_cache_serve(
                    "analysis cache", engine.db, key[1]
                )
            return cached

        def job() -> list[Any]:
            if isinstance(query, UnionQuery):
                return analyze_union(query, engine.db)
            return analyze_query(query, engine.db)

        diagnostics = await self._bounded(self.lane.submit(job))
        if len(self._analysis_cache) >= self._analysis_cache_max:
            # FIFO eviction: dict preserves insertion order.
            self._analysis_cache.pop(next(iter(self._analysis_cache)))
        self._analysis_cache[key] = diagnostics
        return diagnostics

    async def _bounded(self, future: "asyncio.Future[Any]") -> Any:
        return await wait_bounded(future, self.config.request_timeout_s)

    def _refuse_if_empty(self, diagnostics: list[Any]) -> None:
        if has_errors(diagnostics):
            # HTTP 422: the request parses but can provably never return
            # a row — the service rendering of CLI exit status 3.
            raise _HttpError(422, {
                "error": "query provably returns no rows",
                "diagnostics": _diagnostic_json(diagnostics),
            })

    # ------------------------------------------------------------------
    # endpoint handlers
    # ------------------------------------------------------------------

    async def _handle_cite(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any]]:
        body = self._body_object(request)
        query = self._parse(self._query_text(body),
                            sql=bool(body.get("sql")))
        diagnostics = await self._analyze_on_lane(query)
        self._refuse_if_empty(diagnostics)
        if isinstance(query, UnionQuery):
            future = self.lane.submit(
                lambda: self.engine.cite_union(query)
            )
        else:
            future = self.lane.submit_cite(query)
        result: CitationResult = await self._bounded(future)
        payload = result.citation()
        if body.get("include_tuples"):
            payload["tuples"] = [
                {"tuple": list(tc.output), "citations": tc.records}
                for tc in result.tuples.values()
            ]
        return 200, payload

    async def _handle_cite_batch(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any]]:
        body = self._body_object(request)
        texts = body.get("queries")
        if (
            not isinstance(texts, list) or not texts
            or not all(isinstance(text, str) for text in texts)
        ):
            raise _HttpError(400, {
                "error": 'body must carry a non-empty "queries" list '
                         "of Datalog strings",
            })
        queries = [self._parse(text, sql=False) for text in texts]
        empty: list[dict[str, Any]] = []
        for index, query in enumerate(queries):
            diagnostics = await self._analyze_on_lane(query)
            if has_errors(diagnostics):
                empty.append({
                    "index": index,
                    "query": texts[index],
                    "diagnostics": _diagnostic_json(diagnostics),
                })
        if empty:
            raise _HttpError(422, {
                "error": f"{len(empty)} quer"
                         f"{'y' if len(empty) == 1 else 'ies'} provably "
                         "return(s) no rows",
                "queries": empty,
            })
        engine = self.engine
        results: list[CitationResult] = await self._bounded(
            self.lane.submit(lambda: cite_mixed(engine, queries))
        )
        return 200, {
            "count": len(results),
            "citations": [result.citation() for result in results],
        }

    async def _handle_plan(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any]]:
        body = self._body_object(request)
        query = self._parse(self._query_text(body),
                            sql=bool(body.get("sql")))
        diagnostics = await self._analyze_on_lane(query)
        engine = self.engine

        def job() -> str:
            if isinstance(query, UnionQuery):
                return query.explain(
                    engine.db, memo=engine.subplan_memo,
                    diagnostics=diagnostics,
                )
            return engine.planner.plan(
                query, engine.materialized_views()
            ).explain(diagnostics=diagnostics)

        explain_text = await self._bounded(self.lane.submit(job))
        payload = {
            "explain": explain_text,
            "diagnostics": _diagnostic_json(diagnostics),
        }
        if has_errors(diagnostics):
            payload["error"] = "query provably returns no rows"
            return 422, payload
        return 200, payload

    async def _handle_analyze(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any]]:
        body = self._body_object(request)
        query = self._parse(self._query_text(body),
                            sql=bool(body.get("sql")))
        diagnostics = await self._analyze_on_lane(query)
        provably_empty = has_errors(diagnostics)
        payload = {
            "diagnostics": _diagnostic_json(diagnostics),
            "provably_empty": provably_empty,
        }
        return (422 if provably_empty else 200), payload

    def _mutation_rows(
        self, request: HttpRequest
    ) -> tuple[str, list[list[Any]]]:
        body = self._body_object(request)
        relation = body.get("relation")
        rows = body.get("rows")
        if not isinstance(relation, str) or not relation:
            raise _HttpError(400, {
                "error": 'body must carry a "relation" name',
            })
        if (
            not isinstance(rows, list) or not rows
            or not all(isinstance(row, list) for row in rows)
        ):
            raise _HttpError(400, {
                "error": 'body must carry a non-empty "rows" list of '
                         "value lists",
            })
        if relation not in self.engine.db.schema:
            raise _HttpError(400, {
                "error": f"unknown relation {relation!r}",
            })
        return relation, rows

    async def _handle_insert(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any]]:
        relation, rows = self._mutation_rows(request)
        engine = self.engine

        def job() -> int:
            inserted = engine.db.insert_all(
                relation, [tuple(row) for row in rows]
            )
            # Graceful invalidation: the stats_version bump makes the
            # version-aware caches (plans, sub-plan memo) lazily refuse
            # stale entries; only data-derived materializations drop.
            engine.invalidate_data()
            return len(inserted)

        count = await self._bounded(self.lane.submit(job))
        return 200, {
            "inserted": count,
            "relation": relation,
            "stats_version": self.engine.db.stats_version,
        }

    async def _handle_delete(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any]]:
        relation, rows = self._mutation_rows(request)
        engine = self.engine

        def job() -> int:
            deleted = sum(
                1 for row in rows
                if engine.db.delete(relation, *row)
            )
            if deleted:
                engine.invalidate_data()
            return deleted

        count = await self._bounded(self.lane.submit(job))
        return 200, {
            "deleted": count,
            "relation": relation,
            "stats_version": self.engine.db.stats_version,
        }

    async def _handle_stats(
        self, __request: HttpRequest
    ) -> tuple[int, dict[str, Any]]:
        return 200, self.stats()

    async def _handle_healthz(
        self, __request: HttpRequest
    ) -> tuple[int, dict[str, Any]]:
        return 200, {
            "status": "draining" if self._draining else "ok",
        }

    def stats(self) -> dict[str, Any]:
        """The ``/stats`` payload: service + engine-cache observability."""
        from repro.cq.parallel import SHIPPING

        engine = self.engine
        planner = engine.planner
        memo = engine.subplan_memo
        rewriter = engine.rewriting_engine
        return {
            "service": self.metrics.snapshot(),
            "admission": {
                "max_pending": self.config.max_pending,
                "outstanding": self.lane.outstanding,
                "rejected": self.metrics.rejected,
            },
            "engine": {
                "stats_version": engine.db.stats_version,
                "shards": engine.db.shards,
                "policy": engine.policy.name,
                "plan_cache": {
                    "hits": planner.hits,
                    "misses": planner.misses,
                    "evictions": planner.evictions,
                    "size": planner.size,
                },
                "rewriting_cache": {
                    "hits": getattr(rewriter, "hits", 0),
                    "misses": getattr(rewriter, "misses", 0),
                    "evictions": getattr(rewriter, "evictions", 0),
                },
                "subplan_memo": {
                    "hits": memo.hits,
                    "misses": memo.misses,
                    "evictions": memo.evictions,
                    "size": memo.size,
                    "reserved": memo.reserved_count,
                },
            },
            "shipping": {
                "shipped_bytes": SHIPPING.shipped_bytes,
                "payloads": getattr(SHIPPING, "payloads", 0),
            },
        }


class ServiceThread:
    """Run a :class:`CitationService` on a background thread's loop.

    The in-process deployment used by tests, the example, and the
    benchmark: the service runs on its own event loop in a daemon
    thread; the caller keeps a plain blocking view of it.

    >>> with ServiceThread(engine) as handle:          # doctest: +SKIP
    ...     client = ServiceClient(url=handle.base_url)
    ...     client.cite('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
    """

    def __init__(
        self,
        engine: CitationEngine,
        config: ServiceConfig | None = None,
        startup_timeout_s: float = 10.0,
    ) -> None:
        # Ephemeral port by default: parallel test runs must not collide.
        self.config = config or ServiceConfig(port=0)
        self.engine = engine
        self.startup_timeout_s = startup_timeout_s
        self.service: CitationService | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.startup_timeout_s):
            raise RuntimeError("service failed to start in time")
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error!r}"
            ) from self._error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            loop, stop = self._loop, self._stop
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=self.startup_timeout_s)
            self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - startup races
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.service = CitationService(self.engine, self.config)
        try:
            await self.service.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self.port = self.service.port
        self._ready.set()
        await self._stop.wait()
        await self.service.shutdown()
