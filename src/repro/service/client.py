"""A blocking stdlib client for the citation service.

Used by the workload replay mode
(:func:`repro.workload.runner.replay_workload`), the service tests, the
``examples/citation_service.py`` walk-through, and the service
benchmark.  One :class:`ServiceClient` holds one keep-alive
:class:`http.client.HTTPConnection`; it is **not** thread-safe — give
each client thread its own instance (connections are cheap).
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Any
from urllib.parse import urlsplit

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """The service could not be reached or spoke unexpectedly."""


@dataclass
class ServiceReply:
    """One response: status code, decoded JSON, and the raw body bytes
    (the byte-identity checks compare ``body`` directly)."""

    status: int
    data: Any
    body: bytes
    headers: dict[str, str]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ServiceClient:
    """Blocking JSON-over-HTTP client for one citation service."""

    def __init__(
        self,
        url: str | None = None,
        host: str | None = None,
        port: int | None = None,
        timeout: float = 60.0,
    ) -> None:
        if url is not None:
            parts = urlsplit(url if "//" in url else f"http://{url}")
            host = parts.hostname or "127.0.0.1"
            port = parts.port or 80
        if host is None or port is None:
            raise ServiceClientError(
                "give either url or host and port"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self, method: str, path: str, payload: Any = None
    ) -> ServiceReply:
        body = None
        headers = {}
        if isinstance(payload, bytes):
            # Raw bodies bypass JSON encoding (edge-case testing).
            body = payload
            headers["Content-Type"] = "application/json"
        elif payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (1, 2):
            connection = self._connect()
            try:
                connection.request(method, path, body=body,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                # A dropped keep-alive connection (server drain, idle
                # close) gets one fresh-connection retry.
                self.close()
                if attempt == 2:
                    raise ServiceClientError(
                        f"{method} {path} failed: {exc}"
                    ) from exc
        data: Any = None
        if raw:
            try:
                data = json.loads(raw.decode("utf-8"))
            except ValueError:
                data = None
        return ServiceReply(
            status=response.status,
            data=data,
            body=raw,
            headers={k.lower(): v for k, v in response.getheaders()},
        )

    def post(self, path: str, payload: Any) -> ServiceReply:
        return self.request("POST", path, payload)

    def get(self, path: str) -> ServiceReply:
        return self.request("GET", path)

    # ------------------------------------------------------------------
    # endpoint conveniences
    # ------------------------------------------------------------------

    def cite(self, query: str, sql: bool = False,
             include_tuples: bool = False) -> ServiceReply:
        payload: dict[str, Any] = {"query": query}
        if sql:
            payload["sql"] = True
        if include_tuples:
            payload["include_tuples"] = True
        return self.post("/cite", payload)

    def cite_batch(self, queries: list[str]) -> ServiceReply:
        return self.post("/cite-batch", {"queries": queries})

    def plan(self, query: str, sql: bool = False) -> ServiceReply:
        payload: dict[str, Any] = {"query": query}
        if sql:
            payload["sql"] = True
        return self.post("/plan", payload)

    def analyze(self, query: str, sql: bool = False) -> ServiceReply:
        payload: dict[str, Any] = {"query": query}
        if sql:
            payload["sql"] = True
        return self.post("/analyze", payload)

    def insert(self, relation: str,
               rows: list[list[Any]]) -> ServiceReply:
        return self.post("/insert", {"relation": relation, "rows": rows})

    def delete_rows(self, relation: str,
                    rows: list[list[Any]]) -> ServiceReply:
        return self.post("/delete", {"relation": relation, "rows": rows})

    def stats(self) -> dict[str, Any]:
        reply = self.get("/stats")
        if not reply.ok or not isinstance(reply.data, dict):
            raise ServiceClientError(
                f"GET /stats failed with status {reply.status}"
            )
        return reply.data

    def wait_ready(self, attempts: int = 50,
                   delay_s: float = 0.1) -> None:
        """Poll ``/healthz`` until the service answers (startup races)."""
        import time

        for attempt in range(attempts):
            try:
                if self.get("/healthz").ok:
                    return
            except ServiceClientError:
                pass
            time.sleep(delay_s)
        raise ServiceClientError(
            f"service at {self.host}:{self.port} not ready after "
            f"{attempts} attempts"
        )
