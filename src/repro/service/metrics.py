"""Service-side observability: request counters and latency histograms.

Everything the ``GET /stats`` endpoint reports about the *service* layer
lives here (the engine-side cache counters are read straight off the
:class:`~repro.citation.generator.CitationEngine`).  Histograms use
fixed log-spaced bucket bounds so snapshots are cheap, mergeable, and
stable across runs — the standard shape for service latency metrics.
"""

from __future__ import annotations

import time
from typing import Any

#: Log-spaced latency bucket upper bounds, in milliseconds.  The last
#: bucket is open-ended (``+inf``).
LATENCY_BUCKET_BOUNDS_MS: tuple[float, ...] = (
    0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)


class LatencyHistogram:
    """Counts of observations per log-spaced latency bucket."""

    __slots__ = ("counts", "count", "sum_ms", "max_ms")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, elapsed_ms: float) -> None:
        index = len(LATENCY_BUCKET_BOUNDS_MS)
        for position, bound in enumerate(LATENCY_BUCKET_BOUNDS_MS):
            if elapsed_ms <= bound:
                index = position
                break
        self.counts[index] += 1
        self.count += 1
        self.sum_ms += elapsed_ms
        self.max_ms = max(self.max_ms, elapsed_ms)

    def snapshot(self) -> dict[str, Any]:
        buckets: dict[str, int] = {}
        for position, bound in enumerate(LATENCY_BUCKET_BOUNDS_MS):
            buckets[f"<={bound:g}ms"] = self.counts[position]
        buckets[f">{LATENCY_BUCKET_BOUNDS_MS[-1]:g}ms"] = self.counts[-1]
        mean = self.sum_ms / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": round(mean, 3),
            "max_ms": round(self.max_ms, 3),
            "buckets": buckets,
        }


class EndpointMetrics:
    """Requests, per-status counts, and latencies for one endpoint."""

    __slots__ = ("requests", "statuses", "latency")

    def __init__(self) -> None:
        self.requests = 0
        self.statuses: dict[int, int] = {}
        self.latency = LatencyHistogram()

    def observe(self, status: int, elapsed_ms: float) -> None:
        self.requests += 1
        self.statuses[status] = self.statuses.get(status, 0) + 1
        self.latency.observe(elapsed_ms)

    def snapshot(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "statuses": {
                str(code): count
                for code, count in sorted(self.statuses.items())
            },
            "latency": self.latency.snapshot(),
        }


class ServiceMetrics:
    """Everything the service layer counts, snapshot-able for ``/stats``.

    Micro-batching effectiveness is first-class: ``batches_executed``
    counts :meth:`~repro.citation.generator.CitationEngine.cite_batch`
    calls made by the engine lane, ``batched_requests`` the client
    requests they carried — the ratio is the cross-client coalescing
    factor — and ``max_batch_size`` the largest coalesced batch seen.
    """

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.endpoints: dict[str, EndpointMetrics] = {}
        self.rejected = 0
        self.timeouts = 0
        self.protocol_errors = 0
        self.batches_executed = 0
        self.batched_requests = 0
        self.max_batch_size = 0
        self.connections_accepted = 0

    def observe_request(
        self, endpoint: str, status: int, elapsed_ms: float
    ) -> None:
        metrics = self.endpoints.get(endpoint)
        if metrics is None:
            metrics = self.endpoints[endpoint] = EndpointMetrics()
        metrics.observe(status, elapsed_ms)
        if status == 429:
            self.rejected += 1
        elif status == 504:
            self.timeouts += 1

    def observe_batch(self, size: int) -> None:
        self.batches_executed += 1
        self.batched_requests += size
        self.max_batch_size = max(self.max_batch_size, size)

    def snapshot(self) -> dict[str, Any]:
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "connections_accepted": self.connections_accepted,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "protocol_errors": self.protocol_errors,
            "batching": {
                "batches_executed": self.batches_executed,
                "batched_requests": self.batched_requests,
                "max_batch_size": self.max_batch_size,
            },
            "endpoints": {
                name: metrics.snapshot()
                for name, metrics in sorted(self.endpoints.items())
            },
        }
