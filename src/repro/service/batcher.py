"""The engine lane: one worker serializing all engine work, with
cross-client micro-batching of single-query citation requests.

The :class:`~repro.citation.generator.CitationEngine` (and the database
under it) is not thread-safe, and its whole value in a service is the
*shared* warm state — plan cache, rewriting cache, sub-plan memo,
secondary indexes.  The lane therefore gives the engine exactly one
execution thread:

- every engine-touching job (cite, plan, analyze, insert, delete) is
  queued and executed in admission order on a single worker, so a write
  is either entirely before or entirely after any read — in-flight
  citations always see a consistent snapshot;
- consecutive queued single-query ``cite`` jobs coalesce into **one**
  :meth:`~repro.citation.generator.CitationEngine.cite_batch` call
  (after a short linger window that lets concurrently-arriving clients
  pile on), so concurrent traffic shares the sub-plan memo and plan
  cache exactly like a hand-built batch would;
- the queue is bounded: when ``max_pending`` jobs are outstanding,
  :meth:`EngineLane.submit_cite` / :meth:`EngineLane.submit` raise
  :class:`AdmissionFull` and the server answers 429 with
  ``Retry-After`` — backpressure instead of unbounded buffering.

Jobs run via :func:`asyncio.to_thread`, so the event loop keeps
accepting (and rejecting, and timing out) requests while the engine
computes.  A caller that times out abandons its future; the lane still
completes the job (results are delivered to whoever is still waiting)
and the worker never leaks.
"""

from __future__ import annotations

import asyncio
from collections import deque
from collections.abc import Callable, Sequence
from typing import Any

from repro.analysis import sanitizer as _sanitizer
from repro.citation.generator import CitationEngine, CitationResult
from repro.cq.query import ConjunctiveQuery


class AdmissionFull(Exception):
    """The bounded admission queue is full; the caller should retry."""


class LaneClosed(Exception):
    """The lane is draining or stopped; no new work is admitted."""


class _Job:
    __slots__ = ("kind", "payload", "future")

    def __init__(self, kind: str, payload: Any,
                 future: "asyncio.Future[Any]") -> None:
        self.kind = kind
        self.payload = payload
        self.future = future


def _deliver(future: "asyncio.Future[Any]", result: Any = None,
             error: BaseException | None = None) -> None:
    """Complete a future unless its waiter already gave up on it."""
    if future.done():
        return
    if error is not None:
        future.set_exception(error)
        # A waiter that timed out never retrieves the exception; mark it
        # retrieved so the event loop does not log a spurious warning.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
    else:
        future.set_result(result)


class EngineLane:
    """Single-worker job lane over one shared :class:`CitationEngine`.

    Parameters
    ----------
    engine:
        The shared engine; only the lane's worker ever touches it.
    max_pending:
        Bound on *outstanding* jobs (queued + running).  Submissions
        beyond it raise :class:`AdmissionFull`.
    max_batch:
        Largest number of single-query cite jobs coalesced into one
        ``cite_batch`` call.
    batch_linger_s:
        How long the worker waits after picking up a cite job for more
        cite jobs to arrive before executing the batch.  A couple of
        milliseconds is enough to coalesce genuinely concurrent clients;
        0 disables the wait (consecutive already-queued jobs still
        coalesce).
    on_batch:
        Optional callback ``(size) -> None`` invoked per executed
        coalesced batch (feeds the service metrics).
    """

    def __init__(
        self,
        engine: CitationEngine,
        max_pending: int = 64,
        max_batch: int = 16,
        batch_linger_s: float = 0.002,
        on_batch: Callable[[int], None] | None = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.engine = engine
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.batch_linger_s = batch_linger_s
        self.on_batch = on_batch
        self._jobs: deque[_Job] = deque()
        self._wakeup = asyncio.Event()
        self._outstanding = 0
        self._closing = False
        self._worker: asyncio.Task[None] | None = None
        self._owned_db: Any = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._worker is None:
            if _sanitizer.is_active() and self._owned_db is None:
                # Declare the lane the database's owning context: from
                # here until drain, the sanitizer rejects mutations that
                # bypass the lane's serialized jobs.
                db = getattr(self.engine, "db", None)
                if db is not None:
                    _sanitizer.bind_owner(db, "engine lane")
                    self._owned_db = db
            self._worker = asyncio.get_running_loop().create_task(
                self._run(), name="repro-engine-lane"
            )

    async def stop(self) -> None:
        """Drain: finish every admitted job, reject new ones, stop."""
        self._closing = True
        self._wakeup.set()
        if self._worker is not None:
            await self._worker
            self._worker = None
        if self._owned_db is not None:
            _sanitizer.release_owner(self._owned_db)
            self._owned_db = None

    @property
    def outstanding(self) -> int:
        """Jobs admitted but not yet completed (queued + running)."""
        return self._outstanding

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def _admit(self, kind: str, payload: Any) -> "asyncio.Future[Any]":
        if self._closing:
            raise LaneClosed("service is draining")
        if self._outstanding >= self.max_pending:
            raise AdmissionFull(
                f"{self._outstanding} jobs outstanding "
                f"(limit {self.max_pending})"
            )
        future: asyncio.Future[Any] = (
            asyncio.get_running_loop().create_future()
        )
        self._outstanding += 1
        future.add_done_callback(self._job_done)
        self._jobs.append(_Job(kind, payload, future))
        self._wakeup.set()
        return future

    def _job_done(self, __future: "asyncio.Future[Any]") -> None:
        self._outstanding -= 1

    def submit_cite(
        self, query: ConjunctiveQuery
    ) -> "asyncio.Future[CitationResult]":
        """Queue one conjunctive query for micro-batched citation."""
        return self._admit("cite", query)

    def submit(self, fn: Callable[[], Any]) -> "asyncio.Future[Any]":
        """Queue an exclusive engine job (mutation, plan, union cite…).

        ``fn`` runs alone on the worker thread, strictly ordered against
        every other job — the consistency story for writes.
        """
        return self._admit("call", fn)

    # ------------------------------------------------------------------
    # the worker
    # ------------------------------------------------------------------

    async def _run(self) -> None:
        while True:
            while not self._jobs:
                if self._closing:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            job = self._jobs.popleft()
            if job.kind == "cite":
                await self._run_cite_batch(job)
            else:
                await self._run_call(job)

    def _run_owned(self, fn: Callable[[], Any]) -> Any:
        """Run a lane job with the lane's mutation grant.

        Jobs execute via :func:`asyncio.to_thread` on *varying* executor
        threads, so the sanitizer's ownership grant is a thread-local
        token taken per job, not a thread identity.
        """
        if self._owned_db is None or not _sanitizer.is_active():
            return fn()
        with _sanitizer.owner_context(self._owned_db):
            return fn()

    async def _run_call(self, job: _Job) -> None:
        try:
            result = await asyncio.to_thread(self._run_owned, job.payload)
        except BaseException as exc:  # noqa: B036 - forwarded, not handled
            _deliver(job.future, error=exc)
        else:
            _deliver(job.future, result)

    def _coalesce(self, first: _Job) -> list[_Job]:
        """The micro-batch: ``first`` plus every immediately-following
        queued cite job, up to ``max_batch``."""
        batch = [first]
        while (
            len(batch) < self.max_batch
            and self._jobs
            and self._jobs[0].kind == "cite"
        ):
            batch.append(self._jobs.popleft())
        return batch

    async def _run_cite_batch(self, first: _Job) -> None:
        if self.batch_linger_s > 0 and len(self._jobs) < self.max_batch:
            # Give concurrently-arriving clients a beat to pile on; the
            # lane is idle-waiting either way, so this costs latency only
            # when it buys batching.
            await asyncio.sleep(self.batch_linger_s)
        batch = self._coalesce(first)
        queries = [job.payload for job in batch]
        try:
            results = await self.engine.acite_batch(queries)
        except BaseException as exc:  # noqa: B036 - forwarded per future
            for job in batch:
                _deliver(job.future, error=exc)
        else:
            for job, result in zip(batch, results):
                _deliver(job.future, result)
        if self.on_batch is not None:
            self.on_batch(len(batch))


async def wait_bounded(
    future: "asyncio.Future[Any]", timeout: float | None
) -> Any:
    """Await a lane future under a deadline without cancelling the job.

    The future is shielded: on timeout the job keeps running to
    completion on the lane (keeping the engine's serialization intact
    and letting batch-mates receive their results); only this waiter
    gives up.  Raises :class:`asyncio.TimeoutError` on expiry.
    """
    if timeout is None:
        return await future
    return await asyncio.wait_for(asyncio.shield(future), timeout)


def parse_queries(texts: Sequence[str]) -> list[ConjunctiveQuery]:
    """Parse a batch of Datalog strings (service-side helper)."""
    from repro.cq.parser import parse_query

    return [parse_query(text) for text in texts]
