"""Minimal HTTP/1.1 framing over :mod:`asyncio` streams.

The citation service speaks just enough HTTP for JSON request/response
traffic — no external web framework, in keeping with the repository's
standard-library-only rule.  The subset:

- request line + headers + ``Content-Length``-framed bodies;
- keep-alive connections (``Connection: close`` honoured both ways);
- no chunked transfer encoding, no multipart, no TLS.

Framing errors are *typed* so the server can map them onto the right
status code: :class:`ProtocolError` → 400, :class:`PayloadTooLarge` →
413.  Body size is enforced **before** the body is read, so an oversized
upload never buffers past the configured limit.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

#: Upper bound on header count; beyond this the request is hostile.
MAX_HEADERS = 100

#: Upper bound on a single header/request line, in bytes.
MAX_LINE_BYTES = 16 * 1024

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """The peer sent something that is not the HTTP subset we speak."""

    status = 400


class PayloadTooLarge(ProtocolError):
    """Declared ``Content-Length`` exceeds the configured body limit."""

    status = 413


@dataclass
class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    method: str
    target: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """The request target without any query string."""
        return self.target.split("?", 1)[0]

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body decoded as JSON; :class:`ProtocolError` when invalid."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") \
                from None


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ProtocolError(f"header line too long: {exc}") from None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> HttpRequest | None:
    """Read one request off the stream; None on clean connection close.

    Raises :class:`ProtocolError` (→ 400) on malformed framing and
    :class:`PayloadTooLarge` (→ 413) when the declared body length
    exceeds ``max_body_bytes`` — checked before reading the body, so the
    limit also bounds memory.
    """
    request_line = await _read_line(reader)
    if not request_line or request_line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, version = (
            request_line.decode("ascii").strip().split(" ", 2)
        )
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError("malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    for __ in range(MAX_HEADERS + 1):
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, __sep, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise ProtocolError("undecodable header") from None
        if not __sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError("too many headers")

    if headers.get("transfer-encoding"):
        raise ProtocolError("chunked transfer encoding is not supported")
    body = b""
    declared = headers.get("content-length")
    if declared is not None:
        try:
            length = int(declared)
        except ValueError:
            raise ProtocolError(
                f"bad Content-Length {declared!r}"
            ) from None
        if length < 0:
            raise ProtocolError(f"bad Content-Length {declared!r}")
        if length > max_body_bytes:
            # Drain a bounded amount so a well-meaning client finishes
            # its send and can read the 413; truly huge declarations
            # are abandoned and the connection dropped instead.
            drain_cap = max(4 * max_body_bytes, 8 * 1024 * 1024)
            remaining = min(length, drain_cap)
            while remaining > 0:
                chunk = await reader.read(min(remaining, 64 * 1024))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body") from None
    return HttpRequest(method=method, target=target, headers=headers,
                       body=body)


def render_response(
    status: int,
    payload: Any = None,
    *,
    body: bytes | None = None,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response.  ``payload`` is JSON-encoded unless a raw
    ``body`` is given; the default JSON rendering is deterministic
    (insertion order, compact separators), which the sharded ≡ serial
    byte-identity tests rely on."""
    if body is None:
        body = b"" if payload is None else (
            json.dumps(payload, default=str).encode("utf-8") + b"\n"
        )
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body
