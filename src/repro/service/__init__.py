"""The asyncio citation service: one warm engine serving all traffic.

The library-shaped engine pays its expensive warm-up — plan cache,
rewriting cache, sub-plan memo, secondary/composite indexes, per-shard
statistics — once per *process*; this package turns that process into a
long-running HTTP service so the warm state amortizes across every
client (``repro serve`` on the CLI).  Layers:

- :mod:`repro.service.protocol` — minimal HTTP/1.1 framing over asyncio
  streams (no web-framework dependency);
- :mod:`repro.service.batcher` — the engine lane: one worker serializing
  all engine work, micro-batching concurrent single-query requests into
  ``cite_batch`` calls, bounded admission with backpressure;
- :mod:`repro.service.server` — endpoint routing, per-request timeouts,
  graceful SIGTERM drain, structured request logging, ``/stats``;
- :mod:`repro.service.metrics` — per-endpoint latency histograms and
  batching/rejection counters;
- :mod:`repro.service.client` — a blocking stdlib client (used by the
  workload replay mode, tests, and examples).
"""

from repro.service.batcher import AdmissionFull, EngineLane, LaneClosed
from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    ServiceReply,
)
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    HttpRequest,
    PayloadTooLarge,
    ProtocolError,
)
from repro.service.server import (
    CitationService,
    ServiceConfig,
    ServiceThread,
)

__all__ = [
    "AdmissionFull",
    "CitationService",
    "EngineLane",
    "HttpRequest",
    "LaneClosed",
    "PayloadTooLarge",
    "ProtocolError",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceReply",
    "ServiceThread",
]
