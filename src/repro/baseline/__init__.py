"""The hard-coded page-view citation baseline (paper, Section 1).

Today's GtoPdb "generates citations, but only to a subset of the possible
queries against the underlying relational database, i.e. those
corresponding to web-page views of the data".  This baseline models that
status quo so benchmarks can quantify what the rewriting model adds.
"""

from repro.baseline.pageview import PageViewBaseline

__all__ = ["PageViewBaseline"]
