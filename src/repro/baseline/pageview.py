"""The page-view baseline: citations only for pre-registered pages.

A *page* is one instantiation of one citation view (a family landing page
= ``V1`` at a concrete family id).  The baseline can cite a query only if
the query is *equivalent to one page's view instance*; anything else —
any join, any projection difference, any predicate not matching a page —
gets no citation.  This is precisely the limitation the paper's model
removes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.cq.containment import are_equivalent
from repro.cq.query import ConjunctiveQuery
from repro.relational.database import Database
from repro.views.registry import ViewRegistry


@dataclass(frozen=True)
class _Page:
    view_name: str
    params: tuple[Any, ...]
    instantiated: ConjunctiveQuery


class PageViewBaseline:
    """Hard-coded citations for a fixed set of web-page views.

    Parameters
    ----------
    db:
        The database (used to compute each page's hard-coded citation at
        registration time, as GtoPdb's page generator does).
    registry:
        The citation views backing the pages.
    """

    def __init__(self, db: Database, registry: ViewRegistry) -> None:
        self.db = db
        self.registry = registry
        self._pages: list[_Page] = []
        self._citations: dict[tuple[str, tuple[Any, ...]], dict] = {}

    # -- page registration ---------------------------------------------------

    def register_page(
        self, view_name: str, params: Sequence[Any] = ()
    ) -> dict:
        """Register one page and hard-code its citation (returned)."""
        view = self.registry.get(view_name)
        params_tuple = tuple(params)
        instantiated = (
            view.view.instantiate(list(params_tuple))
            if params_tuple else view.view
        )
        page = _Page(view_name, params_tuple, instantiated)
        self._pages.append(page)
        citation = view.citation_for(self.db, params_tuple)
        self._citations[(view_name, params_tuple)] = citation
        return citation

    def register_all_pages(self, view_name: str) -> int:
        """Register a page per existing λ-valuation of a view.

        E.g. one family landing page per family id — how a site generator
        would enumerate pages.  Returns the number of pages registered.
        """
        view = self.registry.get(view_name)
        if not view.is_parameterized:
            self.register_page(view_name)
            return 1
        positions = view.parameter_positions()
        valuations: dict[tuple[Any, ...], None] = {}
        for row in view.instance(self.db):
            valuations.setdefault(tuple(row[i] for i in positions))
        for valuation in valuations:
            self.register_page(view_name, valuation)
        return len(valuations)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    # -- citation ------------------------------------------------------------

    def cite(self, query: ConjunctiveQuery) -> dict | None:
        """The page citation if the query *is* a page, else None."""
        for page in self._pages:
            if len(page.instantiated.head) != len(query.head):
                continue
            if are_equivalent(query, page.instantiated):
                return self._citations[(page.view_name, page.params)]
        return None

    def can_cite(self, query: ConjunctiveQuery) -> bool:
        return self.cite(query) is not None

    def coverage(self, queries: Sequence[ConjunctiveQuery]) -> float:
        """Fraction of queries the baseline can cite."""
        if not queries:
            return 0.0
        covered = sum(1 for query in queries if self.can_cite(query))
        return covered / len(queries)
