"""Terms of conjunctive queries: variables and constants.

Terms are immutable value objects.  Variables are identified by name;
constants wrap an arbitrary hashable Python value (string, int, float,
bool).  The paper writes variables capitalized (``F``, ``N``, ``Ty``) and
constants quoted (``"gpcr"``) — the Datalog parser follows that convention.
"""

from __future__ import annotations

from typing import Any


class Term:
    """Abstract base class of :class:`Variable` and :class:`Constant`."""

    __slots__ = ()

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)


class Variable(Term):
    """A query variable, identified by its name."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        self.name = name
        self._hash = hash(("var", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return self.name

    def __lt__(self, other: "Variable") -> bool:
        return self.name < other.name


class Constant(Term):
    """A constant value appearing in a query."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: Any) -> None:
        self.value = value
        self._hash = hash(("const", type(value).__name__, value))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and type(self.value) is type(other.value)
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if isinstance(self.value, bool):
            # Lowercase so the Datalog grammar reads it back as a boolean
            # (capitalized True/False would parse as variables).
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return repr(self.value)


def as_term(value: Any) -> Term:
    """Coerce a raw Python value (or Term) into a :class:`Term`."""
    if isinstance(value, Term):
        return value
    return Constant(value)
