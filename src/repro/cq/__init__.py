"""Conjunctive queries: AST, parsing, evaluation, containment, minimization.

The paper (Section 2) works with queries and views expressed as conjunctive
queries (CQs) with comparison predicates, optionally λ-parameterized.  This
subpackage provides the full CQ toolchain used by the citation model:

- :mod:`repro.cq.terms` / :mod:`repro.cq.atoms` / :mod:`repro.cq.query` —
  the abstract syntax (variables, constants, relational and comparison
  atoms, λ-parameterized queries).
- :mod:`repro.cq.parser` — a Datalog-style concrete syntax matching the
  paper's notation, e.g. ``lambda F. V1(F,N,Ty) :- Family(F,N,Ty)``.
- :mod:`repro.cq.sql_parser` — a small SQL SELECT-FROM-WHERE front-end.
- :mod:`repro.cq.evaluation` — set-semantics evaluation and full binding
  enumeration over a :class:`~repro.relational.database.Database`.
- :mod:`repro.cq.containment` — homomorphism-based containment and
  equivalence (with sound handling of comparison predicates).
- :mod:`repro.cq.minimization` — core computation (query minimization).
"""

from repro.cq.terms import Term, Variable, Constant
from repro.cq.atoms import RelationalAtom, ComparisonAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.parser import parse_query, parse_atom
from repro.cq.sql_parser import parse_sql
from repro.cq.canonical import canonical_key, canonicalize
from repro.cq.plan import (
    JoinStep,
    QueryPlan,
    QueryPlanner,
    plan_query,
    prefix_keys,
)
from repro.cq.executor import IndexedVirtualRelations, execute_plan
from repro.cq.subplan import (
    SubplanMemo,
    execute_plan_shared,
    explain_with_memo,
)
from repro.cq.evaluation import (
    evaluate_query,
    enumerate_bindings,
    reference_bindings,
    Binding,
)
from repro.cq.containment import (
    is_contained_in,
    are_equivalent,
    find_homomorphism,
    ComparisonClosure,
)
from repro.cq.minimization import minimize
from repro.cq.ucq import UnionQuery, parse_union_query
from repro.cq.compile import compile_to_algebra

__all__ = [
    "UnionQuery",
    "parse_union_query",
    "compile_to_algebra",
    "Term",
    "Variable",
    "Constant",
    "RelationalAtom",
    "ComparisonAtom",
    "ConjunctiveQuery",
    "parse_query",
    "parse_atom",
    "parse_sql",
    "canonical_key",
    "canonicalize",
    "JoinStep",
    "QueryPlan",
    "QueryPlanner",
    "plan_query",
    "prefix_keys",
    "SubplanMemo",
    "execute_plan_shared",
    "explain_with_memo",
    "IndexedVirtualRelations",
    "execute_plan",
    "evaluate_query",
    "enumerate_bindings",
    "reference_bindings",
    "Binding",
    "is_contained_in",
    "are_equivalent",
    "find_homomorphism",
    "ComparisonClosure",
    "minimize",
]
