"""Unions of conjunctive queries (the U in SPJU).

Section 3.1 restricts attention to **SPJU** queries: select, project,
join, *union*.  Alternative disjuncts of a union are classic "+"
combinations — the same alternative-use semantics as multiple bindings —
so the citation of a UCQ result tuple is the ``+`` of the citations it
receives from each disjunct that produces it.

A :class:`UnionQuery` is a named list of conjunctive disjuncts with
union-compatible heads.  The concrete syntax stacks rules with the same
head predicate::

    Q(N) :- Family(F, N, Ty), Ty = "gpcr"
    Q(N) :- Family(F, N, Ty), Ty = "vgic"

Evaluation routes every disjunct through the cost-based pipeline
(statistics → plan → executor): :meth:`UnionQuery.plan` builds one
:class:`~repro.cq.plan.QueryPlan` per disjunct — through a shared
:class:`~repro.cq.plan.QueryPlanner` when one is given, so repeated
union traffic hits the α-equivalence plan cache — and
:meth:`UnionQuery.evaluate` executes them through the cross-query
sub-plan memo: disjuncts of one union overlap heavily by construction
(they are variations on one head shape), so their common join prefixes
are reserved in the :class:`~repro.cq.subplan.SubplanMemo` and
materialized once per evaluation instead of once per disjunct.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Any

from repro.cq.containment import is_contained_in
from repro.cq.evaluation import head_tuple
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlan, QueryPlanner, plan_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.subplan import (
    SubplanMemo,
    execute_plan_shared,
    explain_with_memo,
    reserve_shared_prefixes,
)
from repro.errors import QueryError
from repro.relational.database import Database


class UnionQuery:
    """A union of conjunctive queries with a shared head shape."""

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery]) -> None:
        if not disjuncts:
            raise QueryError("a union query needs at least one disjunct")
        arities = {len(q.head) for q in disjuncts}
        if len(arities) != 1:
            raise QueryError(
                f"union disjuncts must share head arity, got {arities}"
            )
        for disjunct in disjuncts:
            if disjunct.is_parameterized:
                raise QueryError(
                    "union disjuncts must be unparameterized"
                )
        self.disjuncts: tuple[ConjunctiveQuery, ...] = tuple(disjuncts)
        self.name = disjuncts[0].name

    # -- inspection -----------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.disjuncts[0].head)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __repr__(self) -> str:
        return "\n".join(repr(q) for q in self.disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionQuery):
            return NotImplemented
        return self.disjuncts == other.disjuncts

    def __hash__(self) -> int:
        return hash(self.disjuncts)

    # -- semantics ---------------------------------------------------------------

    def plan(
        self,
        db: Database,
        planner: QueryPlanner | None = None,
        virtual: Any = None,
    ) -> tuple[QueryPlan, ...]:
        """One cost-based plan per disjunct.

        With a ``planner`` each disjunct goes through the shared
        α-equivalence plan cache (:meth:`QueryPlanner.plan_union`);
        without one the disjuncts are planned from scratch.
        """
        if planner is not None:
            return planner.plan_union(self, virtual)
        return tuple(
            plan_query(disjunct, db, virtual) for disjunct in self.disjuncts
        )

    def evaluate(
        self,
        db: Database,
        planner: QueryPlanner | None = None,
        memo: SubplanMemo | None = None,
        parallelism: int = 1,
        use_processes: bool = False,
        virtual: Any = None,
    ) -> list[tuple[Any, ...]]:
        """Set-semantics union of the disjuncts' results.

        Rows are deduplicated in first-derivation order — disjuncts in
        declaration order, bindings in the executor's (deterministic)
        order within each disjunct — which matches the seed-era
        per-disjunct evaluation exactly.

        Parameters
        ----------
        db:
            The database instance.
        planner:
            When given, disjunct plans come from (and fill) its shared
            plan cache.
        memo:
            When given, the disjuncts' common join prefixes are reserved
            in the sub-plan memo and materialized once per evaluation
            (:func:`~repro.cq.subplan.reserve_shared_prefixes`); later
            disjuncts — and later evaluations, until data mutations
            invalidate the entries — seed from the stored bindings.
        parallelism / use_processes:
            Worker count (and thread/process choice) for the
            shard-and-merge executor, per disjunct; results are
            identical at any setting.
        virtual:
            Optional virtual relations visible to the disjunct bodies.
        """
        plans = self.plan(db, planner, virtual)
        if memo is not None:
            reserve_shared_prefixes(plans, memo)
        seen: dict[tuple[Any, ...], None] = {}
        for disjunct, plan in zip(self.disjuncts, plans):
            for binding in execute_plan_shared(
                plan,
                db,
                virtual,
                memo,
                parallelism=parallelism,
                use_processes=use_processes,
            ):
                seen.setdefault(head_tuple(disjunct, binding))
        return list(seen)

    def explain(
        self,
        db: Database,
        planner: QueryPlanner | None = None,
        memo: SubplanMemo | None = None,
        virtual: Any = None,
        diagnostics: Any = None,
    ) -> str:
        """Per-disjunct EXPLAIN with the memo's shared-prefix view.

        Renders each disjunct's plan; with a ``memo`` the disjuncts'
        common prefixes are reserved first, so every disjunct whose plan
        shares a prefix with a sibling carries a ``shared prefix:`` line
        (reserved on a cold memo, ``reused from memo`` once an
        evaluation has materialized the bindings).  ``diagnostics``
        (findings from :func:`repro.analysis.diagnostics.analyze_union`)
        are appended as a trailing section.
        """
        plans = self.plan(db, planner, virtual)
        if memo is not None:
            reserve_shared_prefixes(plans, memo)
        sections = []
        for number, plan in enumerate(plans, start=1):
            rendered = (
                explain_with_memo(plan, memo, db, virtual)
                if memo is not None
                else plan.explain()
            )
            sections.append(f"disjunct {number}/{len(plans)}: {rendered}")
        if diagnostics:
            findings = "\n".join(f.describe() for f in diagnostics)
            sections.append(f"diagnostics:\n{findings}")
        return "\n".join(sections)

    def minimized(self) -> "UnionQuery":
        """Remove disjuncts contained in another disjunct.

        The UCQ analogue of core minimization: a disjunct subsumed by a
        sibling contributes nothing to the union.
        """
        kept: list[ConjunctiveQuery] = []
        for index, disjunct in enumerate(self.disjuncts):
            subsumed = False
            for other_index, other in enumerate(self.disjuncts):
                if index == other_index:
                    continue
                if not is_contained_in(disjunct, other):
                    continue
                # Contained in an earlier disjunct, or strictly contained
                # in a later one: drop.  (Mutually equivalent disjuncts
                # keep the first.)
                if other_index < index or not is_contained_in(
                        other, disjunct):
                    subsumed = True
                    break
            if not subsumed:
                kept.append(disjunct)
        return UnionQuery(kept)


def parse_union_query(text: str, default_name: str = "Q") -> UnionQuery:
    """Parse a stack of rules (one per line / separated by ``;``)."""
    rules = []
    for chunk in text.replace(";", "\n").splitlines():
        chunk = chunk.strip()
        if chunk:
            rules.append(parse_query(chunk, default_name))
    if not rules:
        raise QueryError("no rules found in union query text")
    names = {rule.name for rule in rules}
    if len(names) != 1:
        raise QueryError(
            f"union rules must share a head predicate, got {sorted(names)}"
        )
    return UnionQuery(rules)
