"""Unions of conjunctive queries (the U in SPJU).

Section 3.1 restricts attention to **SPJU** queries: select, project,
join, *union*.  Alternative disjuncts of a union are classic "+"
combinations — the same alternative-use semantics as multiple bindings —
so the citation of a UCQ result tuple is the ``+`` of the citations it
receives from each disjunct that produces it.

A :class:`UnionQuery` is a named list of conjunctive disjuncts with
union-compatible heads.  The concrete syntax stacks rules with the same
head predicate::

    Q(N) :- Family(F, N, Ty), Ty = "gpcr"
    Q(N) :- Family(F, N, Ty), Ty = "vgic"
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Any

from repro.cq.evaluation import evaluate_query
from repro.cq.containment import is_contained_in
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.errors import QueryError
from repro.relational.database import Database


class UnionQuery:
    """A union of conjunctive queries with a shared head shape."""

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery]) -> None:
        if not disjuncts:
            raise QueryError("a union query needs at least one disjunct")
        arities = {len(q.head) for q in disjuncts}
        if len(arities) != 1:
            raise QueryError(
                f"union disjuncts must share head arity, got {arities}"
            )
        for disjunct in disjuncts:
            if disjunct.is_parameterized:
                raise QueryError(
                    "union disjuncts must be unparameterized"
                )
        self.disjuncts: tuple[ConjunctiveQuery, ...] = tuple(disjuncts)
        self.name = disjuncts[0].name

    # -- inspection -----------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.disjuncts[0].head)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __repr__(self) -> str:
        return "\n".join(repr(q) for q in self.disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionQuery):
            return NotImplemented
        return self.disjuncts == other.disjuncts

    def __hash__(self) -> int:
        return hash(self.disjuncts)

    # -- semantics ---------------------------------------------------------------

    def evaluate(self, db: Database) -> list[tuple[Any, ...]]:
        """Set-semantics union of the disjuncts' results."""
        seen: dict[tuple[Any, ...], None] = {}
        for disjunct in self.disjuncts:
            for row in evaluate_query(disjunct, db):
                seen.setdefault(row)
        return list(seen)

    def minimized(self) -> "UnionQuery":
        """Remove disjuncts contained in another disjunct.

        The UCQ analogue of core minimization: a disjunct subsumed by a
        sibling contributes nothing to the union.
        """
        kept: list[ConjunctiveQuery] = []
        for index, disjunct in enumerate(self.disjuncts):
            subsumed = False
            for other_index, other in enumerate(self.disjuncts):
                if index == other_index:
                    continue
                if not is_contained_in(disjunct, other):
                    continue
                # Contained in an earlier disjunct, or strictly contained
                # in a later one: drop.  (Mutually equivalent disjuncts
                # keep the first.)
                if other_index < index or not is_contained_in(
                        other, disjunct):
                    subsumed = True
                    break
            if not subsumed:
                kept.append(disjunct)
        return UnionQuery(kept)


def parse_union_query(text: str, default_name: str = "Q") -> UnionQuery:
    """Parse a stack of rules (one per line / separated by ``;``)."""
    rules = []
    for chunk in text.replace(";", "\n").splitlines():
        chunk = chunk.strip()
        if chunk:
            rules.append(parse_query(chunk, default_name))
    if not rules:
        raise QueryError("no rules found in union query text")
    names = {rule.name for rule in rules}
    if len(names) != 1:
        raise QueryError(
            f"union rules must share a head predicate, got {sorted(names)}"
        )
    return UnionQuery(rules)
