"""Cross-query common sub-plan sharing (Section 4: "caching and
materialization").

Template-shaped repository traffic overlaps *structurally*: many queries
of a batch share the same join prefix (the same first plan steps, up to
variable renaming) and differ only in their suffixes.  The per-query
caches built so far — rewriting enumeration, α-equivalent plans, warmed
indexes — still evaluate that shared prefix once **per query**.  This
module adds the cross-query multiplier: a :class:`SubplanMemo` maps
canonical *prefix keys* (:func:`repro.cq.plan.prefix_keys`) to the
materialized binding sequence of the prefix, so a batch evaluates each
shared join prefix once and every other query seeds its suffix from the
memoized bindings.

Correctness discipline:

- Memoized bindings are the *exact* serial binding sequence of the
  prefix (materialized through the same operator chain the plain
  executor runs, residual re-checks included), stored in canonical
  variable space and remapped through each consumer plan's renaming.
  Key equality guarantees the consumer's prefix performs the identical
  computation, so seeding changes neither the multiset nor the order of
  results — the property suite asserts planned ≡ reference exactly,
  seeded and unseeded, serial and parallel.
- Entries are version-aware, invalidated by the same fingerprints the
  plan cache uses: the database's
  :attr:`~repro.relational.database.Database.stats_version` and the
  content tokens of every virtual relation the prefix reads.  Any
  insert/delete/bulk load (or virtual-content change) makes the stored
  bindings unreachable; the next execution re-materializes.
- The memo is LRU-bounded (``max_entries``), with eviction counts, like
  the rewriting and plan caches.

Sharing is *reserved*, not speculative:
:meth:`~repro.citation.generator.CitationEngine.cite_batch` groups the
batch by shared prefix keys and reserves only keys at least two plans
carry, so single-shot queries never pay materialization for bindings
nobody else will read.  The parallel executor cooperates: a shared
prefix is materialized once, serially, and the suffixes are sharded
(:func:`repro.cq.parallel.execute_seeded_parallel`), preserving the
serial binding order at any parallelism.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator, Sequence
from typing import Any

from repro.analysis import sanitizer as _sanitizer
from repro.cq.executor import (
    Binding,
    IndexedVirtualRelations,
    SequenceSourceOperator,
    VirtualRelations,
    _comparison_checker,
    build_operator_chain,
    execute_plan,
)
from repro.cq.parallel import (
    DEFAULT_MIN_PARTITION,
    execute_plan_parallel,
    execute_seeded_parallel,
)
from repro.cq.plan import JoinStep, PrefixKey, QueryPlan, prefix_keys
from repro.relational.database import Database
from repro.util.lru import check_max_entries, evict_lru

#: Default memo bound.  Smaller than the plan/rewriting cache bounds:
#: each entry holds a materialized binding list, not just a plan.
DEFAULT_MEMO_ENTRIES = 1024


def _prefix_fingerprint(
    steps: Sequence[JoinStep],
    virtual: IndexedVirtualRelations | None,
) -> tuple | None:
    """Content tokens of the virtual relations a prefix reads.

    Paired with the database identity and ``stats_version`` this is the
    invalidation signal the plan cache uses; names are sorted so
    producer and consumer (whose key equality already implies the same
    relation set) compute identical fingerprints.

    ``None`` means the prefix is *unsharable*: some virtual relation's
    content token degraded to the size-only form (unhashable rows — see
    :func:`repro.cq.plan._content_token`).  A size-only tag is fine for
    the plan cache (a stale plan merely costs time) but not for a cache
    of materialized bindings, where failing to invalidate means wrong
    results; callers skip both seeding and storing then.
    """
    names = sorted({s.atom.relation for s in steps if s.virtual})
    if not names or virtual is None:
        return ()
    tokens = []
    for name in names:
        token = virtual.content_token(name)
        if len(token) < 2:  # size-only degrade: content not fingerprintable
            return None
        tokens.append((name, token))
    return tuple(tokens)


class SubplanMemo:
    """Version-aware memo: prefix key → materialized prefix bindings.

    Entries store the prefix's binding sequence in canonical variable
    space (``p0, p1, ...`` — the renaming of
    :func:`~repro.cq.plan.prefix_keys`), tagged with the database they
    were computed over (by identity: equal keys over *different*
    databases describe different data), its statistics version, and the
    virtual-content fingerprint; :meth:`lookup` drops entries whose tags
    no longer match, so data mutations invalidate transparently.

    Keys must be :meth:`reserve`-d before :func:`execute_plan_shared`
    will materialize them — the batch layer reserves exactly the keys
    shared by two or more plans.  ``hits`` counts executions seeded from
    the memo, ``misses`` executions that had to materialize a reserved
    prefix, ``evictions`` LRU evictions of stored entries.
    """

    def __init__(self, max_entries: int = DEFAULT_MEMO_ENTRIES) -> None:
        self.max_entries = check_max_entries(max_entries)
        self._entries: OrderedDict[
            PrefixKey, tuple[list[Binding], Database, int, tuple]
        ] = OrderedDict()
        self._reserved: OrderedDict[PrefixKey, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- reservation ----------------------------------------------------------

    def reserve(self, key: PrefixKey) -> None:
        """Mark a prefix key as shared (worth materializing once)."""
        self._reserved[key] = None
        self._reserved.move_to_end(key)
        evict_lru(self._reserved, self.max_entries)

    def is_reserved(self, key: PrefixKey) -> bool:
        return key in self._reserved

    # -- storage --------------------------------------------------------------

    def contains(self, key: PrefixKey) -> bool:
        """Whether any entry (possibly stale) is stored for ``key``.

        A cheap pre-check: callers compute the (relatively expensive)
        validation fingerprint only for keys that are actually present.
        """
        return key in self._entries

    def lookup(
        self,
        key: PrefixKey,
        db: Database,
        version: int,
        fingerprint: tuple,
    ) -> list[Binding] | None:
        """Valid stored bindings for ``key``, or None.

        Entries tagged with a different database object are left alone
        (two databases can share one memo without serving each other's
        bindings); entries for *this* database whose version or
        fingerprint no longer match are stale — dropped, not served.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        bindings, stored_db, stored_version, stored_fingerprint = entry
        if stored_db is not db:
            return None
        if stored_version != version or stored_fingerprint != fingerprint:
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return bindings

    def entry_tags(self, key: PrefixKey) -> tuple[int, tuple] | None:
        """The ``(stats_version, fingerprint)`` tags stored for ``key``.

        Purely observational; the concurrency sanitizer re-validates a
        served entry against these tags independently of
        :meth:`lookup`'s own checks, so a bypassed or patched-out
        validation still gets caught at the serve point.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        __, __, stored_version, stored_fingerprint = entry
        return stored_version, stored_fingerprint

    def peek(
        self,
        key: PrefixKey,
        db: Database,
        version: int,
        fingerprint: tuple,
    ) -> list[Binding] | None:
        """Like :meth:`lookup` but purely observational: stale entries
        are left in place and LRU order does not change (EXPLAIN uses
        this so rendering a plan never perturbs the memo)."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        bindings, stored_db, stored_version, stored_fingerprint = entry
        if (
            stored_db is not db
            or stored_version != version
            or stored_fingerprint != fingerprint
        ):
            return None
        return bindings

    def store(
        self,
        key: PrefixKey,
        bindings: list[Binding],
        db: Database,
        version: int,
        fingerprint: tuple,
    ) -> None:
        self._entries[key] = (bindings, db, version, fingerprint)
        self._entries.move_to_end(key)
        self.evictions += evict_lru(self._entries, self.max_entries)

    # -- bookkeeping ----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def reserved_count(self) -> int:
        """How many prefix keys are currently reserved (shared by ≥2
        plans at some point); the service exposes this on ``/stats``."""
        return len(self._reserved)

    @property
    def worth_checking(self) -> bool:
        """False while the memo can neither serve nor want anything —
        callers skip prefix-key computation entirely then."""
        return bool(self._entries or self._reserved)

    def clear(self) -> None:
        self._entries.clear()
        self._reserved.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


def reserve_shared_prefixes(
    plans: Sequence[QueryPlan], memo: SubplanMemo
) -> int:
    """Reserve each plan's longest prefix key carried by ≥ 2 plans.

    This is the reservation discipline of
    :meth:`~repro.citation.generator.CitationEngine.cite_batch`, shared
    with the UCQ path (disjuncts of one union overlap heavily by
    construction) and the CLI: prefix keys of all the plans are counted,
    and each plan reserves only its *longest* key that at least two
    plans carry — single-shot prefixes never pay materialization, and
    intermediate levels nobody would seed from stay out of the memo.
    Returns the number of reservations made (shared prefixes found).
    """
    all_keys = [
        prefix_keys(plan)[0] for plan in plans if not plan.empty
    ]
    counts: dict[PrefixKey, int] = {}
    for keys in all_keys:
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
    reserved = 0
    for keys in all_keys:
        for key in reversed(keys):
            if counts[key] >= 2:
                memo.reserve(key)
                reserved += 1
                break
    return reserved


def execute_plan_shared(
    plan: QueryPlan,
    db: Database,
    virtual: VirtualRelations | None = None,
    memo: SubplanMemo | None = None,
    parallelism: int = 1,
    use_processes: bool = False,
    min_partition: int = DEFAULT_MIN_PARTITION,
) -> Iterator[Binding]:
    """Stream a plan's bindings, seeding/feeding the sub-plan memo.

    Produces exactly the binding sequence of
    :func:`~repro.cq.executor.execute_plan` — same multiset, same order:

    1. the longest prefix with a *valid* memo entry seeds execution
       (bindings remapped from canonical space, suffix steps run as
       usual);
    2. every longer prefix that is *reserved* is materialized level by
       level on the way (stored for the rest of the batch);
    3. the remaining suffix streams through
       :func:`~repro.cq.parallel.execute_seeded_parallel`, which shards
       it when ``parallelism > 1`` and iterates inline otherwise.

    With no memo (or nothing reserved/stored) this is a plain
    serial/parallel execution with zero overhead beyond the key probe.
    """
    if plan.empty:
        return

    def plain(relations: IndexedVirtualRelations | None) -> Iterator[Binding]:
        if parallelism > 1:
            return execute_plan_parallel(
                plan, db, relations,
                parallelism=parallelism, use_processes=use_processes,
                min_partition=min_partition,
            )
        return execute_plan(plan, db, relations)

    if memo is None or not plan.steps or not memo.worth_checking:
        yield from plain(virtual)
        return

    indexed = IndexedVirtualRelations.wrap(virtual)
    version = db.stats_version
    keys, renaming = prefix_keys(plan)
    count = len(keys)

    def fingerprint(length: int) -> tuple | None:
        return _prefix_fingerprint(plan.steps[:length], indexed)

    hit_length = 0
    canonical_seeds: list[Binding] | None = None
    for length in range(count, 0, -1):
        if not memo.contains(keys[length - 1]):
            continue  # fingerprints are only worth computing on presence
        current = fingerprint(length)
        if current is None:
            continue  # unsharable prefix (unfingerprintable virtual rows)
        entry = memo.lookup(keys[length - 1], db, version, current)
        if entry is not None:
            if _sanitizer._active:
                tags = memo.entry_tags(keys[length - 1])
                if tags is not None:
                    _sanitizer.check_cache_serve(
                        "sub-plan memo", db, tags[0], tags[1], current
                    )
            hit_length, canonical_seeds = length, entry
            break
    pending = [
        length
        for length in range(hit_length + 1, count + 1)
        if memo.is_reserved(keys[length - 1])
        and fingerprint(length) is not None
    ]
    if not hit_length and not pending:
        yield from plain(indexed)
        return

    if hit_length:
        memo.hits += 1
        inverse = {canon: orig for orig, canon in renaming.items()}
        assert canonical_seeds is not None
        bindings: list[Binding] = [
            {inverse[var]: value for var, value in binding.items()}
            for binding in canonical_seeds
        ]
    else:
        bindings = [{}]
    level = hit_length
    if pending:
        # Materialize each reserved level serially (the parallel driver
        # shards only the remaining suffix, so memoized bindings are in
        # serial order for every future consumer).
        memo.misses += 1
        check = _comparison_checker(plan.query.name, set())
        for length in pending:
            bindings = list(
                build_operator_chain(
                    SequenceSourceOperator(bindings),
                    plan.steps[level:length],
                    db,
                    indexed,
                    check,
                )
            )
            current = fingerprint(length)
            assert current is not None  # pending filtered unsharable levels
            memo.store(
                keys[length - 1],
                [
                    {renaming[var]: value for var, value in binding.items()}
                    for binding in bindings
                ],
                db,
                version,
                current,
            )
            level = length
    yield from execute_seeded_parallel(
        plan,
        level,
        bindings,
        db,
        indexed,
        parallelism=parallelism,
        use_processes=use_processes,
        min_partition=min_partition,
    )


def explain_with_memo(
    plan: QueryPlan,
    memo: SubplanMemo | None,
    db: Database,
    virtual: VirtualRelations | None = None,
    diagnostics: Any = None,
) -> str:
    """EXPLAIN with the sub-plan memo's view of the plan appended.

    Renders ``shared prefix: ... reused from memo`` when a prefix of the
    plan would seed from a valid memo entry, and the reservation state
    when the batch has marked a prefix as shared but nobody has
    materialized it yet.  Purely observational: neither counters nor
    LRU order change.  ``diagnostics`` forwards to
    :meth:`~repro.cq.plan.QueryPlan.explain`.
    """
    text = plan.explain(diagnostics=diagnostics)
    if memo is None or plan.empty or not plan.steps:
        return text
    indexed = IndexedVirtualRelations.wrap(virtual)
    version = db.stats_version
    keys, __ = prefix_keys(plan)

    def span(length: int) -> str:
        return "step 1" if length == 1 else f"steps 1-{length}"

    for length in range(len(keys), 0, -1):
        key = keys[length - 1]
        current = _prefix_fingerprint(plan.steps[:length], indexed)
        if current is not None and \
                memo.peek(key, db, version, current) is not None:
            return (
                f"{text}\n  shared prefix: {span(length)} "
                "reused from memo"
            )
        if memo.is_reserved(key):
            return (
                f"{text}\n  shared prefix: {span(length)} shared across "
                "the batch (materialized on first execution)"
            )
    return text
