"""Datalog-style concrete syntax for conjunctive queries.

The grammar matches the paper's notation as closely as plain text allows::

    query       := [lambda-clause] head ":-" body
    lambda      := ("lambda" | "λ") var ("," var)* "."
    head        := ident "(" term ("," term)* ")"
    body        := item ("," item)*
    item        := atom | comparison
    atom        := ident "(" term ("," term)* ")"
    comparison  := term op term          op ∈ {=, !=, <>, <, <=, >, >=}
    term        := variable | constant
    variable    := identifier starting with an uppercase letter or "_"
    constant    := 'single' | "double" quoted string | number | true | false

Examples (all from the paper)::

    parse_query('Q(N) :- Family(F,N,Ty), Ty = "gpcr", FamilyIntro(F,Tx)')
    parse_query('lambda F. V1(F,N,Ty) :- Family(F,N,Ty)')
    parse_query('lambda Ty. CV4(Ty,N,Pn) :- Family(F,N,Ty), FC(F,C), '
                'Person(C,Pn,A)')
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Term, Variable
from repro.errors import ParseError
from repro.relational.expressions import ComparisonOp

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>:-|<-)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*|λ)
    """,
    re.VERBOSE,
)


@dataclass
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token plumbing --------------------------------------------------

    @property
    def _current(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._current
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._current
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.text!r}", token.position
            )
        return self._advance()

    def _peek_kind(self, offset: int = 0) -> str:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index].kind

    # -- grammar ------------------------------------------------------------

    def parse_query(self, default_name: str = "Q") -> ConjunctiveQuery:
        parameters = self._parse_lambda_clause()
        name, head_terms = self._parse_atom_shape()
        self._expect("arrow")
        atoms, comparisons = self._parse_body()
        self._expect("eof")
        query = ConjunctiveQuery(
            name or default_name, head_terms, atoms, comparisons, parameters
        )
        query.check_safety()
        return query

    def parse_single_atom(self) -> RelationalAtom:
        name, terms = self._parse_atom_shape()
        self._expect("eof")
        return RelationalAtom(name, terms)

    def _parse_lambda_clause(self) -> list[Variable]:
        token = self._current
        is_lambda = token.kind == "ident" and token.text in ("lambda", "λ")
        if not is_lambda:
            return []
        self._advance()
        parameters = [self._parse_variable()]
        while self._current.kind == "comma":
            self._advance()
            parameters.append(self._parse_variable())
        self._expect("dot")
        return parameters

    def _parse_variable(self) -> Variable:
        token = self._expect("ident")
        if not _looks_like_variable(token.text):
            raise ParseError(
                f"expected a variable (uppercase identifier), found "
                f"{token.text!r}", token.position
            )
        return Variable(token.text)

    def _parse_atom_shape(self) -> tuple[str, list[Term]]:
        name_token = self._expect("ident")
        self._expect("lpar")
        terms = [self._parse_term()]
        while self._current.kind == "comma":
            self._advance()
            terms.append(self._parse_term())
        self._expect("rpar")
        return name_token.text, terms

    def _parse_term(self) -> Term:
        token = self._current
        if token.kind == "string":
            self._advance()
            return Constant(token.text[1:-1])
        if token.kind == "number":
            self._advance()
            return Constant(_parse_number(token.text))
        if token.kind == "ident":
            self._advance()
            if token.text == "true":
                return Constant(True)
            if token.text == "false":
                return Constant(False)
            if _looks_like_variable(token.text):
                return Variable(token.text)
            # Unquoted lowercase identifiers are treated as string constants
            # for convenience (e.g. Ty = gpcr).
            return Constant(token.text)
        raise ParseError(f"expected a term, found {token.text!r}", token.position)

    def _parse_body(
        self,
    ) -> tuple[list[RelationalAtom], list[ComparisonAtom]]:
        atoms: list[RelationalAtom] = []
        comparisons: list[ComparisonAtom] = []
        self._parse_body_item(atoms, comparisons)
        while self._current.kind == "comma":
            self._advance()
            self._parse_body_item(atoms, comparisons)
        return atoms, comparisons

    def _parse_body_item(
        self,
        atoms: list[RelationalAtom],
        comparisons: list[ComparisonAtom],
    ) -> None:
        # Relational atom: ident "(" ...; comparison: term op term.
        if self._current.kind == "ident" and self._peek_kind(1) == "lpar":
            name, terms = self._parse_atom_shape()
            atoms.append(RelationalAtom(name, terms))
            return
        left = self._parse_term()
        op_token = self._expect("op")
        right = self._parse_term()
        comparisons.append(
            ComparisonAtom(left, ComparisonOp.parse(op_token.text), right)
        )


def _looks_like_variable(name: str) -> bool:
    return name[0].isupper() or name[0] == "_"


def _parse_number(text: str) -> Any:
    if "." in text:
        return float(text)
    return int(text)


def parse_query(text: str, default_name: str = "Q") -> ConjunctiveQuery:
    """Parse a Datalog-style conjunctive query string."""
    return _Parser(text).parse_query(default_name)


def parse_atom(text: str) -> RelationalAtom:
    """Parse a single relational atom, e.g. ``Family(F, N, Ty)``."""
    return _Parser(text).parse_single_atom()
