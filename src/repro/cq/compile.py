"""Compiling conjunctive queries to relational-algebra plans.

A second, independent execution path for CQs: translate to the algebra of
:mod:`repro.relational.algebra` (scan → rename → select → natural join →
select → project).  Tests cross-validate this compiler against the direct
evaluator on random queries — two implementations agreeing is strong
evidence both are right.

Translation scheme:

- each atom occurrence scans its relation and *renames* columns to the
  atom's variable names; repeated variables inside one atom and inline
  constants become positional selections before the rename;
- natural joins then implement shared variables across atoms;
- comparison atoms become selections over the joined columns;
- the head becomes a final projection (constants in the head are not
  supported by the algebra layer and raise).
"""

from __future__ import annotations

from repro.cq.atoms import RelationalAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.errors import QueryError
from repro.relational.algebra import (
    AlgebraExpr,
    Join,
    Project,
    Rename,
    Scan,
    Select,
)
from repro.relational.expressions import Comparison, ComparisonOp
from repro.relational.schema import Schema
from repro.util.naming import NameSupply


def _compile_atom(
    atom: RelationalAtom, supply: NameSupply
) -> tuple[AlgebraExpr, list[str]]:
    """One atom: scan + positional selections + rename to variable names."""
    expr: AlgebraExpr = Scan(atom.relation)
    # Positional selections for constants and repeated variables.
    first_position: dict[Variable, int] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            expr = Select(expr, Comparison(position, ComparisonOp.EQ,
                                           term.value))
        else:
            seen = first_position.get(term)
            if seen is None:
                first_position[term] = position
            else:
                expr = Select(expr, Comparison(
                    position, ComparisonOp.EQ, seen,
                    right_is_position=True,
                ))
    # Rename columns: variable name where a variable sits, fresh unique
    # names for constant positions (they join with nothing).
    names: list[str] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            names.append(term.name)
        else:
            names.append(supply.fresh(hint=f"_const{position}"))
    # Deduplicate repeated-variable columns (natural join semantics need
    # unique column names): keep the variable name at its first position,
    # fresh names elsewhere.
    used: set[str] = set()
    unique_names = []
    for name in names:
        if name in used:
            unique_names.append(supply.fresh(hint=f"_dup_{name}"))
        else:
            used.add(name)
            unique_names.append(name)
    return Rename(expr, unique_names), unique_names


def compile_to_algebra(
    query: ConjunctiveQuery, schema: Schema
) -> AlgebraExpr:
    """Compile a safe, unparameterized CQ into an algebra plan."""
    if query.is_parameterized:
        raise QueryError("instantiate λ-parameters before compiling")
    query.check_safety()
    query.validate_against(schema)
    if not query.atoms:
        raise QueryError("cannot compile a query with no relational atoms")
    for term in query.head:
        if isinstance(term, Constant):
            raise QueryError(
                "the algebra backend does not support constants in the "
                "head; project variables only"
            )

    supply = NameSupply(v.name for v in query.variables())
    expr, __ = _compile_atom(query.atoms[0], supply)
    for atom in query.atoms[1:]:
        right, __ = _compile_atom(atom, supply)
        expr = Join(expr, right)

    # Column layout after the joins: compute it to map variables to
    # positions for the comparison selections.
    columns: list[str] = []
    for atom in query.atoms:
        for term in atom.terms:
            if isinstance(term, Variable) and term.name not in columns:
                columns.append(term.name)
    # Fresh constant/duplicate columns also appear, interleaved; rather
    # than replaying the naming, evaluate positions lazily via a final
    # rename-free strategy: comparisons reference variables, which are
    # guaranteed to be present once under their own name.

    def position_of(variable: Variable, layout: list[str]) -> int:
        try:
            return layout.index(variable.name)
        except ValueError:  # pragma: no cover - safety guard
            raise QueryError(f"variable {variable} lost during compilation")

    # We need the actual layout; reconstruct it the same way Join does.
    def layout_of(expr_columns: list[list[str]]) -> list[str]:
        layout: list[str] = []
        for column_list in expr_columns:
            for column in column_list:
                if column not in layout:
                    layout.append(column)
        return layout

    per_atom_columns = []
    supply2 = NameSupply(v.name for v in query.variables())
    for atom in query.atoms:
        __, names = _compile_atom(atom, supply2)
        per_atom_columns.append(names)
    layout = layout_of(per_atom_columns)

    for comparison in query.comparisons:
        left, right = comparison.left, comparison.right
        if isinstance(left, Variable) and isinstance(right, Variable):
            expr = Select(expr, Comparison(
                position_of(left, layout), comparison.op,
                position_of(right, layout), right_is_position=True,
            ))
        elif isinstance(left, Variable) and isinstance(right, Constant):
            expr = Select(expr, Comparison(
                position_of(left, layout), comparison.op, right.value,
            ))
        elif isinstance(left, Constant) and isinstance(right, Variable):
            expr = Select(expr, Comparison(
                position_of(right, layout), comparison.op.flip(),
                left.value,
            ))
        else:  # ground
            if not comparison.evaluate_ground():
                # Unsatisfiable: select an impossible condition.
                expr = Select(expr, Comparison(
                    0, ComparisonOp.NE, 0, right_is_position=True,
                ))

    head_names = [term.name for term in query.head
                  if isinstance(term, Variable)]
    return Project(expr, head_names, deduplicate=True)
