"""Conjunctive-query minimization (core computation).

A CQ is *minimal* when no relational atom can be removed without changing
its meaning.  Minimization matters for Def 2.2: a rewriting must contain no
removable subgoal, and view expansions are minimized before equivalence
checks to keep homomorphism search small.

The classical algorithm: repeatedly try to drop an atom ``a``; the reduced
query ``Q'`` always contains ``Q`` (fewer constraints), so ``Q' ≡ Q`` iff
``Q' ⊆ Q`` iff there is a homomorphism from ``Q`` into ``Q'``.  The result
is the *core*, unique up to variable renaming.
"""

from __future__ import annotations

from repro.cq.containment import find_homomorphism, normalize_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Variable


def _removable(query: ConjunctiveQuery, index: int) -> bool:
    """Can the ``index``-th atom be dropped while preserving equivalence?"""
    # Dropping must not orphan head variables, λ-parameters, or comparison
    # variables (the reduced query would be unsafe, hence not equivalent) —
    # checked *before* constructing the reduced query, whose constructor
    # would reject orphaned parameters.
    anchored: set[Variable] = set()
    for other_index, atom in enumerate(query.atoms):
        if other_index != index:
            anchored.update(atom.variables())
    required: set[Variable] = set(query.head_variables())
    required.update(query.parameters)
    for comparison in query.comparisons:
        required.update(comparison.variables())
    if not required.issubset(anchored):
        return False
    reduced = query.drop_atom(index)
    # Q' ⊇ Q always; equivalence iff hom from Q into Q'.
    return find_homomorphism(query, reduced) is not None


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return the core of ``query`` (equivalent, no removable atom).

    The query is normalized first (equality propagation, duplicate
    removal).  λ-parameters are preserved: atoms whose removal would orphan
    a parameter are never dropped.
    """
    current, satisfiable = normalize_query(query)
    if not satisfiable:
        # An unsatisfiable query has an empty extension everywhere; keep it
        # as-is (callers check satisfiability separately).
        return current
    changed = True
    while changed:
        changed = False
        for index in range(len(current.atoms)):
            if len(current.atoms) == 1:
                break
            if _removable(current, index):
                current = current.drop_atom(index)
                changed = True
                break
    return current


def is_minimal(query: ConjunctiveQuery) -> bool:
    """Is the query its own core (no atom removable)?"""
    normalized, satisfiable = normalize_query(query)
    if not satisfiable:
        return True
    if len(normalized.atoms) != len(query.atoms):
        return False
    return all(
        not _removable(normalized, index)
        for index in range(len(normalized.atoms))
    )
