"""Atoms of conjunctive queries.

Two kinds of atoms appear in a CQ body (paper, Def 2.1/2.2):

- **relational atoms** ``R(t1, ..., tk)`` over base relations *or views*;
- **comparison atoms** ``t1 op t2`` with ``op ∈ {=, !=, <, <=, >, >=}``.

Both are immutable, hashable, and support substitution — the workhorse
operation of homomorphism search and view expansion.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.cq.terms import Constant, Term, Variable
from repro.relational.expressions import ComparisonOp

Substitution = Mapping[Variable, Term]


def substitute_term(term: Term, substitution: Substitution) -> Term:
    """Apply a substitution to a single term (constants map to themselves)."""
    if isinstance(term, Variable):
        return substitution.get(term, term)
    return term


class RelationalAtom:
    """A positive relational atom ``relation(terms...)``.

    The relation name may denote a base relation or, inside rewritings, a
    citation view.
    """

    __slots__ = ("relation", "terms", "_hash")

    def __init__(self, relation: str, terms: Sequence[Term]) -> None:
        self.relation = relation
        self.terms: tuple[Term, ...] = tuple(terms)
        self._hash = hash((relation, self.terms))

    # -- inspection -----------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> list[Variable]:
        """Variables in order of first occurrence (with duplicates removed)."""
        seen: dict[Variable, None] = {}
        for term in self.terms:
            if isinstance(term, Variable):
                seen.setdefault(term)
        return list(seen)

    def constants(self) -> list[Constant]:
        seen: dict[Constant, None] = {}
        for term in self.terms:
            if isinstance(term, Constant):
                seen.setdefault(term)
        return list(seen)

    # -- transformation ---------------------------------------------------------

    def substitute(self, substitution: Substitution) -> "RelationalAtom":
        """Apply a substitution to every term."""
        return RelationalAtom(
            self.relation,
            [substitute_term(term, substitution) for term in self.terms],
        )

    # -- value semantics ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationalAtom):
            return NotImplemented
        return self.relation == other.relation and self.terms == other.terms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(term) for term in self.terms)
        return f"{self.relation}({inner})"


class ComparisonAtom:
    """A comparison predicate ``left op right`` between two terms."""

    __slots__ = ("left", "op", "right", "_hash")

    def __init__(self, left: Term, op: ComparisonOp, right: Term) -> None:
        self.left = left
        self.op = op
        self.right = right
        self._hash = hash((left, op, right))

    # -- inspection -----------------------------------------------------------

    def variables(self) -> list[Variable]:
        result = []
        if isinstance(self.left, Variable):
            result.append(self.left)
        if isinstance(self.right, Variable) and self.right not in result:
            result.append(self.right)
        return result

    @property
    def is_ground(self) -> bool:
        """True when both sides are constants."""
        return isinstance(self.left, Constant) and isinstance(self.right, Constant)

    def evaluate_ground(self) -> bool:
        """Truth value of a ground comparison."""
        assert isinstance(self.left, Constant) and isinstance(self.right, Constant)
        try:
            return self.op.function(self.left.value, self.right.value)
        except TypeError:
            return False

    # -- transformation ---------------------------------------------------------

    def substitute(self, substitution: Substitution) -> "ComparisonAtom":
        return ComparisonAtom(
            substitute_term(self.left, substitution),
            self.op,
            substitute_term(self.right, substitution),
        )

    def normalized(self) -> "ComparisonAtom":
        """Canonical orientation: variable (or smaller repr) on the left.

        Keeps closures and equality tests stable: ``3 > x`` becomes
        ``x < 3``; ``y = x`` becomes ``x = y`` (lexicographic).
        """
        left, op, right = self.left, self.op, self.right
        if isinstance(left, Constant) and isinstance(right, Variable):
            left, op, right = right, op.flip(), left
        elif (
            isinstance(left, Variable)
            and isinstance(right, Variable)
            and right.name < left.name
        ):
            left, op, right = right, op.flip(), left
        return ComparisonAtom(left, op, right)

    # -- value semantics ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComparisonAtom):
            return NotImplemented
        return (
            self.left == other.left
            and self.op == other.op
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"
