"""Cost-based logical plans for conjunctive-query evaluation.

The evaluation pipeline is **statistics → logical plan → executor**:

1. :mod:`repro.relational.statistics` maintains per-relation cardinality
   and per-column distinct/frequency counts incrementally on every
   insert/delete;
2. this module turns a query into a :class:`QueryPlan` — an ordered
   sequence of :class:`JoinStep` s with a cost-based join order and a
   static access path (which positions each index probe binds) — using
   those statistics;
3. :mod:`repro.cq.executor` runs the plan with iterator-style operators.

Join ordering is greedy minimum-intermediate-cardinality: at each step
the planner picks the atom whose index probe is estimated to return the
fewest rows given the variables already bound, which is exactly the
stats-aware version of the old boundness heuristic.  Because the join
order is fixed at plan time, every per-row decision the old interpreter
made (which positions are bound, which comparisons are ready, where
repeated variables force equality) is precomputed into the step.

Comparison pushdown happens before ordering: pushable ``=`` atoms fold
into an *equality closure* (:class:`_EqualityClosure`) whose constants
become hash-index probes, and pushable range atoms
(``<``/``<=``/``>``/``>=``) fold into an *interval closure*
(:class:`_IntervalClosure`) whose merged ``[lo, hi]`` intervals become
ordered narrowings: where a step would otherwise scan they select an
*ordered* access path (bisect over a sorted secondary index), and where
the step already hash-probes they select a *composite* access path —
a single probe against a hash index whose buckets are kept sorted on
the ordered position, so ``Ty = "gpcr", N >= t`` is one
hash-lookup-plus-bisect instead of a probe and a post-filter.
Provably-empty intervals (and contradictory equality constants)
short-circuit to an empty plan without touching data.

Plans for α-equivalent queries are shared: :class:`QueryPlanner` caches
the plan of the *canonical* query (see :mod:`repro.cq.canonical`) and
rebinds it to each caller's variables, keyed by the same canonical key
the rewriting cache uses.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.analysis import sanitizer as _sanitizer
from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.canonical import canonical_key_and_renaming, canonical_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Term, Variable
from repro.errors import QueryError
from repro.relational.database import Database
from repro.relational.expressions import ComparisonOp
from repro.relational.statistics import (
    Interval,
    RelationStatistics,
    statistics_of,
)
from repro.util.lru import check_max_entries, evict_lru

#: Virtual relations: name -> rows.  Anything with a ``statistics_for``
#: method (e.g. :class:`repro.cq.executor.IndexedVirtualRelations`) serves
#: cached statistics; plain mappings are profiled on the fly.
VirtualRelations = Mapping[str, Sequence[tuple[Any, ...]]]

#: Plan-verification modes (see :mod:`repro.analysis.verifier`).
VERIFY_MODES = ("off", "always")

#: Process-wide sanitizer switch, seeded from the environment so test
#: runs (and CI) can verify every plan the whole process produces.
_verify_mode = os.environ.get("REPRO_VERIFY_PLANS", "off")


def set_plan_verification(mode: str) -> str:
    """Set the process-wide plan-verification mode; returns the old one.

    ``"always"`` runs :func:`repro.analysis.verifier.verify_plan` on
    every plan built by :func:`plan_query` or returned by
    :class:`QueryPlanner` (including cache hits, whose rebinding is
    itself a verified transformation); ``"off"`` restores the default.
    """
    global _verify_mode
    if mode not in VERIFY_MODES:
        raise ValueError(
            f"plan verification mode must be one of {VERIFY_MODES}, "
            f"got {mode!r}"
        )
    previous = _verify_mode
    _verify_mode = mode
    return previous


def plan_verification() -> str:
    """The current process-wide plan-verification mode."""
    return _verify_mode


def _maybe_verify(
    plan: QueryPlan,
    db: Database | None = None,
    mode: str | None = None,
) -> QueryPlan:
    """Run the verifier on ``plan`` when the effective mode says so.

    The import is deferred: :mod:`repro.analysis` depends on this
    module, and in the default ``off`` mode the verifier never loads.
    """
    effective = _verify_mode if mode is None else mode
    if effective == "always":
        from repro.analysis.verifier import verify_plan

        verify_plan(plan, db)
    return plan


def _group_pushed(
    pushed: Sequence[ComparisonAtom],
    find: Callable[[Variable], Variable],
) -> dict[Variable, list[ComparisonAtom]]:
    """Absorbed comparisons grouped by class representative.

    Used to attribute each pushed comparison to the join steps whose
    access path actually serves it (``JoinStep.pushed``), so EXPLAIN
    renders one access path per step.  Call only after every
    absorption: unions are finished, so roots are stable.
    """
    grouped: dict[Variable, list[ComparisonAtom]] = {}
    for comparison in pushed:
        var = (
            comparison.left
            if isinstance(comparison.left, Variable)
            else comparison.right
        )
        grouped.setdefault(find(var), []).append(comparison)
    return grouped


class _EqualityClosure:
    """Union-find over the variables connected by pushable ``=`` atoms.

    Equality comparisons between a variable and a constant
    (``Ty = "gpcr"``) and between two variables (``X = Y``) — including
    everything they *transitively* imply — constrain values before any
    data is read, so the planner folds them into access paths instead of
    scheduling them as post-filters.  Each equivalence class either
    carries a constant (every member is forced to that value and probes
    use the constant directly) or not (later members probe with the value
    of the first member bound by an earlier step).

    :attr:`contradiction` is set when one class accumulates two constants
    with unequal values; no binding can satisfy the query then, and the
    plan short-circuits to an empty result.
    """

    __slots__ = ("_parent", "_constants", "contradiction", "pushed")

    def __init__(self) -> None:
        self._parent: dict[Variable, Variable] = {}
        self._constants: dict[Variable, Constant] = {}
        self.contradiction = False
        self.pushed: list[ComparisonAtom] = []

    def find(self, var: Variable) -> Variable:
        """Class representative of ``var`` (itself when unconstrained)."""
        parent = self._parent
        if var not in parent:
            return var
        root = var
        while parent[root] != root:
            root = parent[root]
        while parent[var] != root:
            parent[var], var = root, parent[var]
        return root

    def constant_for(self, var: Variable) -> Constant | None:
        """The constant ``var`` is forced to, if its class carries one."""
        return self._constants.get(self.find(var))

    def _bind_constant(self, root: Variable, constant: Constant) -> None:
        existing = self._constants.get(root)
        if existing is None:
            self._constants[root] = constant
        elif not existing.value == constant.value:
            # Value equality, not Constant equality: X = 1, X = 1.0 is
            # satisfiable (probing with either finds the same rows), but
            # X = 1, X = 2 never is.
            self.contradiction = True

    def _union(self, left: Variable, right: Variable) -> None:
        self._parent.setdefault(left, left)
        self._parent.setdefault(right, right)
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return
        self._parent[right_root] = left_root
        constant = self._constants.pop(right_root, None)
        if constant is not None:
            self._bind_constant(left_root, constant)

    def absorb(self, comparison: ComparisonAtom) -> bool:
        """Fold a comparison into the closure; False → keep it residual.

        Hash-index probes match by identity-or-equality while a residual
        filter uses ``==`` only — the two differ exactly on non-reflexive
        values (NaN).  So: ``X = X`` and ``X = <non-reflexive constant>``
        are never absorbed, and variable-variable equalities are absorbed
        for probing *and* still re-checked residually (the caller keeps
        them in the comparison schedule), which makes the probe a pure
        narrowing optimization.
        """
        if comparison.op is not ComparisonOp.EQ or comparison.is_ground:
            return False
        left, right = comparison.left, comparison.right
        if left == right:
            return False
        if isinstance(left, Variable) and isinstance(right, Variable):
            self._union(left, right)
        else:
            var, const = (
                (left, right) if isinstance(left, Variable) else (right, left)
            )
            assert isinstance(var, Variable) and isinstance(const, Constant)
            if const.value != const.value:
                # A probe with a NaN constant could match rows by object
                # identity; the == filter never does.  Keep it residual
                # (it is always false, like the reference evaluator).
                return False
            self._parent.setdefault(var, var)
            self._bind_constant(self.find(var), const)
        self.pushed.append(comparison)
        return True

    def needs_recheck(self, comparison: ComparisonAtom) -> bool:
        """True for absorbed equalities that must also run as filters.

        Variable-variable equalities probe with a runtime value, which
        may be non-reflexive (NaN); only the residual ``==`` re-check
        preserves reference semantics for those rows.  (Probes are
        supersets of ``==`` matches — equal objects hash equal — so
        probe + re-check is exact.)
        """
        return isinstance(comparison.left, Variable) and isinstance(
            comparison.right, Variable
        )

    def pushed_by_class(self) -> dict[Variable, list[ComparisonAtom]]:
        """Absorbed comparisons by class root (see :func:`_group_pushed`)."""
        return _group_pushed(self.pushed, self.find)


#: Range operators foldable into the interval closure.
_RANGE_OPS = frozenset(
    {ComparisonOp.LT, ComparisonOp.LE, ComparisonOp.GT, ComparisonOp.GE}
)


class _IntervalClosure:
    """Merged ``[lo, hi]`` intervals per equality class, from range atoms.

    Inequality comparisons between a variable and a constant (``X < 5``,
    ``X >= 2``) — with constants shared across an equality class, so
    ``X = Y, Y < 5`` constrains ``X`` too — are folded into one
    :class:`~repro.relational.statistics.Interval` per class.  Interval-
    constrained positions become *ordered access paths* (bisect over a
    sorted secondary index) instead of scans, and a provably empty
    interval short-circuits the whole plan.

    Absorbed comparisons are **always** re-checked residually (the
    caller keeps them in the comparison schedule): the bisect probe is a
    pure narrowing, so planned results stay multiset-identical to the
    reference evaluator even on columns mixing incomparable types, where
    the ordered path degrades to a scan and the residual check emits the
    usual :class:`~repro.errors.MixedTypeComparisonWarning`.

    Bounds that cannot be compared with a class's existing bounds
    (``X > 1, X < "a"``) are *not* absorbed — they stay residual-only —
    which keeps every interval internally comparable and bisect-safe.
    NaN bounds are never absorbed (every comparison with NaN is false;
    the residual check preserves exactly that).
    """

    __slots__ = ("_closure", "_intervals", "pushed", "empty")

    def __init__(self, closure: _EqualityClosure) -> None:
        self._closure = closure
        self._intervals: dict[Variable, Interval] = {}
        self.pushed: list[ComparisonAtom] = []
        self.empty = False

    def absorb(self, comparison: ComparisonAtom) -> bool:
        """Fold a range comparison into the closure; False → residual only."""
        if comparison.op not in _RANGE_OPS or comparison.is_ground:
            return False
        left, op, right = comparison.left, comparison.op, comparison.right
        if isinstance(left, Constant) and isinstance(right, Variable):
            left, op, right = right, op.flip(), left
        if not (isinstance(left, Variable) and isinstance(right, Constant)):
            return False  # variable-variable ranges stay residual
        value = right.value
        if value is None or value != value:
            # None cannot anchor an interval bound (it is the unbounded
            # sentinel) and NaN satisfies no comparison; keep residual.
            return False
        root = self._closure.find(left)
        current = self._intervals.get(root, Interval())
        merged = self._merge(current, op, value)
        if merged is None:
            return False
        self._intervals[root] = merged
        if merged.is_empty() is True:
            self.empty = True
        self.pushed.append(comparison)
        return True

    @staticmethod
    def _merge(interval: Interval, op: ComparisonOp, value: Any) -> Interval | None:
        """Tighten ``interval`` with ``var op value``; None → incomparable."""
        lo, lo_open = interval.lo, interval.lo_open
        hi, hi_open = interval.hi, interval.hi_open
        try:
            if op in (ComparisonOp.GT, ComparisonOp.GE):
                open_ = op is ComparisonOp.GT
                if lo is None or value > lo:
                    lo, lo_open = value, open_
                elif value == lo:
                    lo_open = lo_open or open_
            else:
                open_ = op is ComparisonOp.LT
                if hi is None or value < hi:
                    hi, hi_open = value, open_
                elif value == hi:
                    hi_open = hi_open or open_
        except TypeError:
            return None
        merged = Interval(lo, lo_open, hi, hi_open)
        if merged.is_empty() is None:
            # The two endpoints are mutually incomparable (X > 1,
            # X < "a"): such an interval could raise from bisect.
            return None
        return merged

    def interval_for(self, var: Variable) -> Interval | None:
        """The probe interval for ``var``, if its class carries one.

        Classes forced to a constant by the equality closure return
        ``None``: the constant probe is strictly stronger, and the
        constant/interval consistency was already settled by
        :meth:`finalize`.
        """
        root = self._closure.find(var)
        interval = self._intervals.get(root)
        if interval is None or self._closure.constant_for(var) is not None:
            return None
        return interval

    def pushed_by_class(self) -> dict[Variable, list[ComparisonAtom]]:
        """Absorbed ranges by class root (see :func:`_group_pushed`)."""
        return _group_pushed(self.pushed, self._closure.find)

    def finalize(self) -> None:
        """Cross-check intervals against equality-closure constants.

        A class whose equality constant provably falls outside its
        interval (``X = 3, X < 2``) makes the query unsatisfiable; an
        incomparable constant (``X = "a", X < 5``) is left to the
        residual check, which warns and rejects at run time exactly like
        the reference evaluator's always-false comparison.
        """
        for root, interval in self._intervals.items():
            constant = self._closure.constant_for(root)
            if constant is None:
                continue
            if interval.admits(constant.value) is False:
                self.empty = True


@dataclass(frozen=True)
class JoinStep:
    """One join of the plan: probe an access path, extend the binding.

    Attributes
    ----------
    atom:
        The relational atom this step evaluates.
    atom_index:
        The atom's position in the query body (stable across
        α-equivalent queries, which is what makes plan rebinding sound).
    virtual:
        True when the atom resolves to a virtual relation.
    lookup_positions / lookup_terms:
        The access path: positions constrained at probe time, and the
        aligned terms supplying the probe values (constants, or variables
        bound by earlier steps).
    introduces:
        ``(variable, position)`` pairs bound by this step (first
        occurrence of each new variable).
    equal_positions:
        Residual equality checks for repeated *new* variables within the
        atom (repeats of already-bound variables are part of the probe).
    comparisons:
        Comparison atoms whose variables are all bound once this step
        fires; checked before the binding is emitted.
    range_position / range_interval:
        The ordered narrowing of the access path: the position probed
        through a sorted index (bisect) and the merged interval.  With
        ``lookup_positions`` empty this is an *ordered* path replacing a
        scan; with ``lookup_positions`` set it is a *composite* path —
        one probe against a hash index whose buckets are kept sorted on
        this position.  The executor degrades to the hash probe (or
        scan) when the index cannot serve ordered probes (mixed types);
        the interval's comparisons are re-checked residually either way.
    pushed:
        The pushed comparisons this step's access path absorbs (for
        EXPLAIN attribution: each step renders its one chosen access
        path together with everything that path serves).
    estimated_matches:
        Estimated rows per probe (from statistics, at plan time).
    estimated_bindings:
        Estimated cumulative bindings after this step.
    """

    atom: RelationalAtom
    atom_index: int
    virtual: bool
    lookup_positions: tuple[int, ...]
    lookup_terms: tuple[Term, ...]
    introduces: tuple[tuple[Variable, int], ...]
    equal_positions: tuple[tuple[int, int], ...]
    comparisons: tuple[ComparisonAtom, ...]
    estimated_matches: float
    estimated_bindings: float
    range_position: int | None = None
    range_interval: Interval | None = None
    pushed: tuple[ComparisonAtom, ...] = ()

    @property
    def path_kind(self) -> str:
        """One of ``scan`` / ``hash`` / ``ordered`` / ``composite``."""
        if self.range_position is not None:
            return "composite" if self.lookup_positions else "ordered"
        return "hash" if self.lookup_positions else "scan"

    @property
    def access_path(self) -> str:
        """Human-readable access description for :meth:`QueryPlan.explain`."""
        kind = "virtual " if self.virtual else ""
        bound = ", ".join(
            f"[{position}]={term!r}"
            for position, term in zip(self.lookup_positions, self.lookup_terms)
        )
        if self.range_position is not None:
            assert self.range_interval is not None
            ordered = (
                f"[{self.range_position}] in "
                f"{self.range_interval.describe()}"
            )
            if bound:
                return f"{kind}composite index on {bound} + {ordered}"
            return f"{kind}ordered index on {ordered}"
        if not bound:
            return f"{kind}scan"
        return f"{kind}index on {bound}"


@dataclass(frozen=True)
class QueryPlan:
    """An executable logical plan for one conjunctive query."""

    query: ConjunctiveQuery
    steps: tuple[JoinStep, ...]
    estimated_cost: float
    estimated_bindings: float
    #: Equality comparisons folded into access paths (they do not appear
    #: in any step's residual ``comparisons``).
    pushed: tuple[ComparisonAtom, ...] = ()
    #: Range comparisons folded into ordered access paths (unlike
    #: ``pushed`` equalities they *also* stay residual: the bisect probe
    #: is a narrowing, the re-check guarantees reference semantics).
    pushed_ranges: tuple[ComparisonAtom, ...] = ()
    #: True when the result is provably empty without touching any data.
    empty: bool = False
    empty_reason: str = "false ground comparison"

    def explain(self, diagnostics: Sequence[Any] | None = None) -> str:
        """Render the plan the way EXPLAIN would.

        ``diagnostics`` (findings from
        :func:`repro.analysis.diagnostics.analyze_query`) are appended
        as a trailing section, so EXPLAIN output carries the lint
        findings next to the plan they are about.
        """
        lines = [
            f"plan for {self.query}",
            f"  estimated cost {self.estimated_cost:.1f}, "
            f"estimated bindings {self.estimated_bindings:.1f}",
        ]

        def with_diagnostics() -> str:
            if diagnostics:
                lines.append("  diagnostics:")
                for finding in diagnostics:
                    lines.append(f"    {finding.describe()}")
            return "\n".join(lines)

        if self.empty:
            lines.append(f"  empty result ({self.empty_reason})")
            return with_diagnostics()
        # Pushed predicates are attributed to the steps whose access
        # paths serve them, and each step lists its single chosen path —
        # one line per probe, so an equality + range pair served by one
        # composite probe can never read as two separate probes.
        pushed_steps = [
            (number, step)
            for number, step in enumerate(self.steps, start=1)
            if step.pushed
        ]
        if pushed_steps:
            lines.append("  pushed predicates:")
            for number, step in pushed_steps:
                folded = ", ".join(repr(c) for c in step.pushed)
                lines.append(f"    step {number} [{step.access_path}]: {folded}")
        if not self.steps:
            lines.append("  single empty binding (no relational atoms)")
        for number, step in enumerate(self.steps, start=1):
            line = (
                f"  {number}. {step.atom!r}  [{step.access_path}]  "
                f"est. {step.estimated_matches:.2f} rows/probe, "
                f"{step.estimated_bindings:.1f} bindings"
            )
            if step.comparisons:
                checks = ", ".join(repr(c) for c in step.comparisons)
                line += f"  then check residual {checks}"
            lines.append(line)
        return with_diagnostics()

    def rebind(
        self,
        query: ConjunctiveQuery,
        renaming: Mapping[Variable, Variable],
    ) -> "QueryPlan":
        """Map a plan built for the canonical query back to ``query``.

        ``renaming`` is the caller's ``original -> canonical`` renaming;
        the plan's canonical variables are substituted through its
        inverse, and atoms are taken from the caller's body by index.
        """
        inverse = {canon: orig for orig, canon in renaming.items()}

        def back(term: Term) -> Term:
            if isinstance(term, Variable):
                return inverse[term]
            return term

        steps = tuple(
            JoinStep(
                atom=query.atoms[step.atom_index],
                atom_index=step.atom_index,
                virtual=step.virtual,
                lookup_positions=step.lookup_positions,
                lookup_terms=tuple(back(t) for t in step.lookup_terms),
                introduces=tuple(
                    (inverse[var], position)
                    for var, position in step.introduces
                ),
                equal_positions=step.equal_positions,
                comparisons=tuple(
                    c.substitute(inverse) for c in step.comparisons
                ),
                estimated_matches=step.estimated_matches,
                estimated_bindings=step.estimated_bindings,
                # Intervals hold constants only; rebinding is a no-op.
                range_position=step.range_position,
                range_interval=step.range_interval,
                pushed=tuple(c.substitute(inverse) for c in step.pushed),
            )
            for step in self.steps
        )
        return QueryPlan(
            query=query,
            steps=steps,
            estimated_cost=self.estimated_cost,
            estimated_bindings=self.estimated_bindings,
            pushed=tuple(c.substitute(inverse) for c in self.pushed),
            pushed_ranges=tuple(
                c.substitute(inverse) for c in self.pushed_ranges
            ),
            empty=self.empty,
            empty_reason=self.empty_reason,
        )


#: A prefix key: one structured, hashable tuple per step prefix (see
#: :func:`prefix_keys`).
PrefixKey = tuple


def prefix_keys(
    plan: QueryPlan,
) -> tuple[list[PrefixKey], dict[Variable, Variable]]:
    """Canonical keys for every step *prefix* of ``plan``.

    ``keys[k - 1]`` identifies the computation of ``plan.steps[:k]`` up
    to variable renaming: two plans with equal keys bind, probe, and
    filter identically over the same relations, so the binding sequence
    of one prefix can seed the other (the cross-query sub-plan memo,
    :mod:`repro.cq.subplan`).  The key covers everything the executor
    reads from a step — relation (and whether it is virtual), access
    path (lookup positions and terms, with constants by value), the
    introduced variables, same-row equality checks, residual comparisons
    (normalized and order-insensitive: filters commute), and the ordered
    narrowing — and deliberately omits the cost estimates, which are
    derived from the same statistics the memo versions against anyway.

    Keys are nested tuples, not strings: constants carry their *values*
    (tagged apart from variables), so no string constant — however full
    of delimiters or quotes — can forge a collision between different
    structures, and two keys are equal exactly when their computations
    are.  (Values that compare equal across types, ``1``/``1.0``, do
    share a key; probes and comparisons cannot distinguish them either.)

    Variables are renamed ``p0, p1, ...`` in order of first occurrence
    across the steps, so the numbering of a prefix never depends on the
    suffix; the returned renaming (``original -> canonical``, covering
    the whole plan) remaps materialized bindings into canonical space
    and back.  Unlike :func:`~repro.cq.canonical.canonical_key` this is
    keyed on the *plan*, after join ordering and pushdown: queries that
    are not α-equivalent as a whole still share every prefix their plans
    have in common.
    """
    renaming: dict[Variable, Variable] = {}

    def canon(term: Term) -> tuple:
        if isinstance(term, Variable):
            if term not in renaming:
                renaming[term] = Variable(f"p{len(renaming)}")
            return ("v", int(renaming[term].name[1:]))
        assert isinstance(term, Constant)
        return ("c", term.value)

    keys: list[PrefixKey] = []
    parts: list[tuple] = []
    for step in plan.steps:
        # Residual filters commute (every one must pass, and filtering
        # never reorders bindings), so comparisons are keyed as a sorted
        # multiset — sorted by repr, which is only an ordering device
        # (key *equality* compares the tuples themselves); their
        # variables are always named by this point, each introduced by
        # this or an earlier step.
        lookup = tuple(
            (position, canon(term))
            for position, term in zip(step.lookup_positions, step.lookup_terms)
        )
        introduces = tuple(
            (canon(var), position) for var, position in step.introduces
        )
        comparisons = tuple(sorted(
            (
                (c.op.value, canon(c.left), canon(c.right))
                for c in (c.normalized() for c in step.comparisons)
            ),
            key=repr,
        ))
        interval = step.range_interval
        narrowing = (
            None
            if step.range_position is None
            else (
                step.range_position,
                interval.lo, interval.lo_open,
                interval.hi, interval.hi_open,
            )
        )
        parts.append((
            step.atom.relation,
            step.virtual,
            step.atom.arity,
            lookup,
            introduces,
            step.equal_positions,
            comparisons,
            narrowing,
        ))
        keys.append(tuple(parts))
    return keys, renaming


def _statistics_for_atom(
    atom: RelationalAtom,
    db: Database,
    virtual: VirtualRelations | None,
) -> tuple[RelationStatistics, bool]:
    """Resolve an atom to (statistics, is_virtual), validating arity."""
    if virtual is not None and atom.relation in virtual:
        provider = getattr(virtual, "statistics_for", None)
        if provider is not None:
            return provider(atom.relation, atom.arity), True
        rows = virtual[atom.relation]
        for values in rows:
            if len(values) != atom.arity:
                raise QueryError(
                    f"virtual relation {atom.relation!r} arity mismatch"
                )
        return statistics_of(rows, atom.arity), True
    instance = db.relation(atom.relation)
    if instance.schema.arity != atom.arity:
        raise QueryError(
            f"atom {atom!r} has arity {atom.arity}, relation has "
            f"{instance.schema.arity}"
        )
    return instance.stats, False


def _estimate_access_paths(
    atom: RelationalAtom,
    stats: RelationStatistics,
    closure: _EqualityClosure,
    intervals: _IntervalClosure,
    bound_reps: Mapping[Variable, Variable],
) -> tuple[float, float]:
    """``(matched, probed)`` estimates for one probe of ``atom``.

    Variables forced to a constant by the equality closure count as
    constant constraints (exact frequencies); variables whose class has a
    member bound by an earlier step count as bound join variables;
    interval-constrained free variables count as range constraints
    (priced by the equi-depth histogram), once per variable.  ``matched``
    applies all of them (join ordering ranks atoms by it); ``probed``
    skips the range constraints — the rows a hash-only probe touches —
    so the cost model can price a composite probe (which narrows the
    range inside the probe) against a single-index probe (which filters
    the bucket residually).
    """
    variable_positions: list[int] = []
    constant_constraints: list[tuple[int, Any]] = []
    range_constraints: list[tuple[int, Interval]] = []
    ranged: set[Variable] = set()
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constant_constraints.append((position, term.value))
            continue
        constant = closure.constant_for(term)
        if constant is not None:
            constant_constraints.append((position, constant.value))
            continue
        root = closure.find(term)
        if root in bound_reps:
            variable_positions.append(position)
            continue
        interval = intervals.interval_for(term)
        if interval is not None and root not in ranged:
            # Dedup by equality class, not by variable: X = Y share one
            # interval, counting it per occurrence would square the
            # selectivity and skew the join order.
            ranged.add(root)
            range_constraints.append((position, interval))
    return stats.estimate_access_paths(
        variable_positions, constant_constraints, range_constraints
    )


def _choose_ordered_position(
    stats: RelationStatistics,
    intervals: _IntervalClosure,
    introduces: Sequence[tuple[Variable, int]],
    lookup_positions: Sequence[int],
) -> tuple[int, Interval, Variable] | None:
    """The ordered narrowing of a step's access path, if any applies.

    Among the introduced positions not already equality-bound by the
    probe, picks the most selective interval-constrained one (by
    histogram estimate): on a scanning step it upgrades the scan to an
    ordered access path, on a hash-probing step it upgrades the probe to
    a composite one.  Positions whose class carries an equality constant
    never qualify (``interval_for`` withholds their intervals — the
    constant probe is strictly stronger).
    """
    taken = frozenset(lookup_positions)
    best = None
    best_selectivity = None
    for term, position in introduces:
        if position in taken:
            continue
        interval = intervals.interval_for(term)
        if interval is None:
            continue
        selectivity = stats.range_selectivity(position, interval)
        if best_selectivity is None or selectivity < best_selectivity:
            best_selectivity = selectivity
            best = (position, interval, term)
    return best


def _build_step(
    atom: RelationalAtom,
    atom_index: int,
    virtual: bool,
    stats: RelationStatistics,
    bound_vars: set[Variable],
    bound_reps: Mapping[Variable, Variable],
    closure: _EqualityClosure,
    intervals: _IntervalClosure,
    pushed_equalities: Mapping[Variable, Sequence[ComparisonAtom]],
    pushed_ranges: Mapping[Variable, Sequence[ComparisonAtom]],
    comparisons: Sequence[ComparisonAtom],
    estimated_matches: float,
    estimated_bindings: float,
) -> JoinStep:
    """Precompute the access path and residual checks for one join.

    Positions whose variable is forced to a constant by the equality
    closure probe with that constant; positions whose variable's class
    was bound by an earlier step probe with the bound member.  Either
    way the variable is still *introduced* from the matching row, so
    bindings keep every body variable (the citation model sums per
    binding, Def 3.2).

    An interval-constrained introduced position then adds an ordered
    narrowing (:func:`_choose_ordered_position`): where the step would
    scan it becomes an *ordered* access path (bisect over a sorted
    secondary index); where it already hash-probes it becomes a
    *composite* access path — one probe against a hash index whose
    buckets are kept sorted on the ordered position, so the equality and
    range predicates are answered by a single hash-lookup-plus-bisect.

    The pushed comparisons each part of the path serves are collected
    into ``JoinStep.pushed``: every step renders its *single* chosen
    access path with everything it absorbs (a comparison whose class
    feeds several steps' probes — ``R(X), S(X), X = 3`` — is listed
    under each serving step).
    """
    lookup_positions: list[int] = []
    lookup_terms: list[Term] = []
    introduces: list[tuple[Variable, int]] = []
    introduced: set[Variable] = set()
    class_first_position: dict[Variable, int] = {}
    equal_positions: list[tuple[int, int]] = []
    served: list[ComparisonAtom] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            lookup_positions.append(position)
            lookup_terms.append(term)
            continue
        constant = closure.constant_for(term)
        if constant is not None:
            lookup_positions.append(position)
            lookup_terms.append(constant)
            served.extend(pushed_equalities.get(closure.find(term), ()))
            if term not in bound_vars and term not in introduced:
                introduces.append((term, position))
                introduced.add(term)
            continue
        if term in bound_vars:
            lookup_positions.append(position)
            lookup_terms.append(term)
            continue
        root = closure.find(term)
        bound_mate = bound_reps.get(root)
        if bound_mate is not None:
            # X = Y pushdown: Y's class-mate X is already bound, so probe
            # with X's value instead of filtering afterwards.
            lookup_positions.append(position)
            lookup_terms.append(bound_mate)
            served.extend(pushed_equalities.get(root, ()))
            if term not in introduced:
                introduces.append((term, position))
                introduced.add(term)
            continue
        if root in class_first_position:
            # Repeated variable, or two class-mates first met in this
            # atom: a same-row equality check enforces both cases.
            equal_positions.append((class_first_position[root], position))
            if term not in introduced:
                introduces.append((term, position))
                introduced.add(term)
            continue
        class_first_position[root] = position
        introduces.append((term, position))
        introduced.add(term)
    range_position: int | None = None
    range_interval: Interval | None = None
    ordered = _choose_ordered_position(
        stats, intervals, introduces, lookup_positions
    )
    if ordered is not None:
        range_position, range_interval, range_term = ordered
        served.extend(pushed_ranges.get(closure.find(range_term), ()))
    return JoinStep(
        atom=atom,
        atom_index=atom_index,
        virtual=virtual,
        lookup_positions=tuple(lookup_positions),
        lookup_terms=tuple(lookup_terms),
        introduces=tuple(introduces),
        equal_positions=tuple(equal_positions),
        comparisons=tuple(comparisons),
        estimated_matches=estimated_matches,
        estimated_bindings=estimated_bindings,
        range_position=range_position,
        range_interval=range_interval,
        pushed=tuple(dict.fromkeys(served)),
    )


def plan_query(
    query: ConjunctiveQuery,
    db: Database,
    virtual: VirtualRelations | None = None,
) -> QueryPlan:
    """Build a cost-based plan for ``query`` over ``db``.

    This is the entry into stage two of the evaluation pipeline (the
    paper's query semantics, Def 2.1): it chooses a greedy
    minimum-intermediate-cardinality join order from statistics, folds
    pushable equality comparisons into access paths through the equality
    closure, folds pushable range comparisons into ordered access paths
    through the interval closure, and schedules the residual comparisons
    at the earliest step that binds their variables.

    Parameters
    ----------
    query:
        The conjunctive query; must be safe and non-parameterized,
        exactly like the old evaluator entry points.
    db:
        The database whose statistics drive the cost model (and whose
        relations the plan's base access paths resolve to).
    virtual:
        Optional virtual relations (materialized view instances) visible
        to the query body.

    Returns
    -------
    QueryPlan
        An executable plan; ``empty`` is set when a false ground
        comparison or contradictory pushed equalities prove the result
        empty without touching data.  Raises :class:`QueryError` on arity
        mismatches (base and virtual) at plan time.
    """
    if query.is_parameterized:
        raise QueryError(
            f"cannot evaluate parameterized query {query.name}: instantiate "
            "its λ-parameters first"
        )
    query.check_safety()

    # Ground comparisons hold for every binding or none; pushable
    # equalities fold into the equality closure; everything else stays
    # residual.  Absorbed variable-variable equalities are *also* kept
    # residual: their probes narrow, the re-check guarantees ==
    # semantics.  Range comparisons feed the interval closure in a
    # second pass — after every `=` has been absorbed, so intervals
    # attach to the *final* equivalence classes — and each stays
    # residual as well (the bisect probe is a pure narrowing).
    pending: list[ComparisonAtom] = []
    closure = _EqualityClosure()
    range_candidates: list[ComparisonAtom] = []
    for comparison in query.comparisons:
        if comparison.is_ground:
            if not comparison.evaluate_ground():
                return _maybe_verify(
                    QueryPlan(query, (), 0.0, 0.0, empty=True)
                )
            continue
        if closure.absorb(comparison):
            if closure.needs_recheck(comparison):
                pending.append(comparison)
            continue
        pending.append(comparison)
        if comparison.op in _RANGE_OPS:
            range_candidates.append(comparison)
    if closure.contradiction:
        return _maybe_verify(QueryPlan(
            query,
            (),
            0.0,
            0.0,
            pushed=tuple(closure.pushed),
            empty=True,
            empty_reason="contradictory equality comparisons",
        ))
    intervals = _IntervalClosure(closure)
    for comparison in range_candidates:
        intervals.absorb(comparison)
    intervals.finalize()
    if intervals.empty:
        return _maybe_verify(QueryPlan(
            query,
            (),
            0.0,
            0.0,
            pushed=tuple(closure.pushed),
            pushed_ranges=tuple(intervals.pushed),
            empty=True,
            empty_reason="empty range interval",
        ))

    resolved = [
        _statistics_for_atom(atom, db, virtual) for atom in query.atoms
    ]
    pushed_equalities = closure.pushed_by_class()
    pushed_range_map = intervals.pushed_by_class()
    remaining = list(range(len(query.atoms)))
    bound_vars: set[Variable] = set()
    #: class representative -> first variable of the class bound so far.
    bound_reps: dict[Variable, Variable] = {}
    steps: list[JoinStep] = []
    bindings = 1.0
    cost = 0.0
    while remaining:
        best_index = None
        best_estimate = None
        best_probed = None
        for atom_index in remaining:
            matched, probed = _estimate_access_paths(
                query.atoms[atom_index],
                resolved[atom_index][0],
                closure,
                intervals,
                bound_reps,
            )
            if best_estimate is None or matched < best_estimate:
                best_index, best_estimate, best_probed = (
                    atom_index, matched, probed,
                )
        remaining.remove(best_index)
        atom = query.atoms[best_index]
        new_bindings = bindings * best_estimate

        new_bound = bound_vars | set(atom.variables())
        ready = [c for c in pending if set(c.variables()) <= new_bound]
        pending = [c for c in pending if not set(c.variables()) <= new_bound]
        step = _build_step(
            atom,
            best_index,
            resolved[best_index][1],
            resolved[best_index][0],
            bound_vars,
            bound_reps,
            closure,
            intervals,
            pushed_equalities,
            pushed_range_map,
            ready,
            best_estimate,
            new_bindings,
        )
        steps.append(step)
        # Cost is rows *touched* per probe, times upstream bindings: an
        # ordered/composite path narrows by its one served interval
        # inside the probe, while every other constraint (residual
        # ranges, hash-only probes, scans) filters the probed rows
        # afterwards.
        touched = best_probed
        if step.range_position is not None:
            touched *= resolved[best_index][0].range_selectivity(
                step.range_position, step.range_interval
            )
        cost += bindings * max(touched, 1.0)
        bindings = new_bindings
        bound_vars = new_bound
        for var in atom.variables():
            bound_reps.setdefault(closure.find(var), var)
    if pending:
        # Safety check above should prevent this.
        raise QueryError("comparison variables not bound by relational atoms")
    return _maybe_verify(
        QueryPlan(
            query,
            tuple(steps),
            cost,
            bindings,
            pushed=tuple(closure.pushed),
            pushed_ranges=tuple(intervals.pushed),
        ),
        db,
    )


def _content_token(rows: Sequence[tuple[Any, ...]]) -> tuple:
    """A cheap content fingerprint for one virtual relation's rows.

    Size alone is not enough: replacing a row keeps the size but changes
    the statistics the cached plan was costed against (and a stale plan
    built for dead statistics can pick a pathological join order).  Rows
    are hashable throughout the codebase; if a caller smuggles in
    unhashable values we degrade to the legacy size-only fingerprint
    rather than fail.

    Hashing is O(rows); callers who replan over the same materialization
    should hold an :class:`~repro.cq.executor.IndexedVirtualRelations`,
    whose ``content_token`` caches the hash for the wrapper's lifetime
    (the same amortization its hash indexes already rely on).
    """
    try:
        return (len(rows), hash(tuple(rows)))
    except TypeError:
        return (len(rows),)


#: Default plan-cache bound: generous for template-shaped traffic (a few
#: thousand distinct structures), finite under millions-of-distinct-query
#: traffic where an unbounded cache would grow without limit.
DEFAULT_PLAN_CACHE_ENTRIES = 4096


class QueryPlanner:
    """A plan cache keyed by the α-equivalence canonical key.

    Plans are built once per query *structure* (for its canonical form)
    and rebound to each caller's variables — the same sharing discipline
    as :class:`repro.citation.cache.CachedRewritingEngine`.  A cached
    entry is invalidated when the database statistics change
    (:attr:`~repro.relational.database.Database.stats_version`) or when
    the referenced virtual relations' *content* changes (fingerprinted by
    a content hash — size alone would let a same-size update serve plans
    costed against dead statistics), since either can change the optimal
    join order.  :class:`~repro.cq.executor.IndexedVirtualRelations`
    caches the content hash per relation, so engines holding one
    materialization pay it once.

    Both stores (the canonical cache and the exact-match fast path) are
    LRU-bounded by ``max_entries``: under millions-of-distinct-queries
    traffic the least recently used structures are evicted (counted in
    :attr:`evictions`) instead of growing without bound.
    """

    def __init__(
        self,
        db: Database,
        max_entries: int = DEFAULT_PLAN_CACHE_ENTRIES,
        verify: str | None = None,
    ) -> None:
        if verify is not None and verify not in VERIFY_MODES:
            raise ValueError(
                f"verify must be one of {VERIFY_MODES} or None, "
                f"got {verify!r}"
            )
        self.db = db
        #: Per-planner override of the process-wide sanitizer switch
        #: (None defers to :func:`plan_verification`).  ``"always"``
        #: verifies every plan this planner hands out — fresh builds,
        #: cache hits, and rebound plans alike.
        self.verify = verify
        self.max_entries = check_max_entries(max_entries)
        self._cache: OrderedDict[str, tuple[QueryPlan, int, tuple]] = (
            OrderedDict()
        )
        # Exact-match fast path: repeated evaluation of the *same* query
        # (the common front-end case) skips canonicalization and rebinding
        # entirely.  Queries hash by structure, so equal query objects
        # share the entry.
        self._exact: OrderedDict[
            ConjunctiveQuery, tuple[QueryPlan, int, tuple]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _bound(self, store: OrderedDict) -> None:
        """Evict least-recently-used entries beyond ``max_entries``."""
        self.evictions += evict_lru(store, self.max_entries)

    def _virtual_fingerprint(
        self, query: ConjunctiveQuery, virtual: VirtualRelations | None
    ) -> tuple:
        if virtual is None:
            return ()
        token_of = getattr(virtual, "content_token", None)
        return tuple(
            (
                name,
                token_of(name)
                if token_of is not None
                else _content_token(virtual[name]),
            )
            for name in query.relation_names()
            if name in virtual
        )

    def plan(
        self,
        query: ConjunctiveQuery,
        virtual: VirtualRelations | None = None,
    ) -> QueryPlan:
        if query.is_parameterized:
            # The canonical key ignores λ-parameters, so without this
            # guard an instantiated sibling's cached plan would silently
            # evaluate the parameterized query as if its parameters were
            # free variables.
            raise QueryError(
                f"cannot evaluate parameterized query {query.name}: "
                "instantiate its λ-parameters first"
            )
        # Safety-check before canonicalizing so an unsafe query (e.g. a
        # comparison over a variable no relational atom binds) is
        # reported in the *caller's* variable names, not as the
        # canonical `vN` that plan_query would see.
        query.check_safety()
        version = self.db.stats_version
        fingerprint = self._virtual_fingerprint(query, virtual)
        exact = self._exact.get(query)
        if exact is not None:
            plan, cached_version, cached_fingerprint = exact
            if cached_version == version and cached_fingerprint == fingerprint:
                if _sanitizer._active:
                    _sanitizer.check_cache_serve(
                        "plan cache (exact)", self.db,
                        cached_version, cached_fingerprint, fingerprint,
                    )
                self.hits += 1
                self._exact.move_to_end(query)
                return _maybe_verify(plan, self.db, self.verify)
        key, renaming = canonical_key_and_renaming(query)
        entry = self._cache.get(key)
        if entry is not None:
            plan, cached_version, cached_fingerprint = entry
            if cached_version == version and cached_fingerprint == fingerprint:
                if _sanitizer._active:
                    _sanitizer.check_cache_serve(
                        "plan cache (canonical)", self.db,
                        cached_version, cached_fingerprint, fingerprint,
                    )
                self.hits += 1
                self._cache.move_to_end(key)
                rebound = plan.rebind(query, renaming)
                self._exact[query] = (rebound, cached_version,
                                      cached_fingerprint)
                self._exact.move_to_end(query)
                self._bound(self._exact)
                return _maybe_verify(rebound, self.db, self.verify)
        self.misses += 1
        plan = plan_query(canonical_query(query, renaming), self.db, virtual)
        self._cache[key] = (plan, version, fingerprint)
        self._cache.move_to_end(key)
        self._bound(self._cache)
        rebound = plan.rebind(query, renaming)
        self._exact[query] = (rebound, version, fingerprint)
        self._exact.move_to_end(query)
        self._bound(self._exact)
        return _maybe_verify(rebound, self.db, self.verify)

    def plan_union(
        self,
        union: "Sequence[ConjunctiveQuery]",
        virtual: VirtualRelations | None = None,
    ) -> tuple[QueryPlan, ...]:
        """One plan per disjunct of a union, each through the cache.

        Accepts any sequence of conjunctive queries (in particular a
        :class:`~repro.cq.ucq.UnionQuery`); disjuncts of one union are
        α-overlapping by construction, so their plans share cache
        entries and — once their common prefixes are reserved in a
        :class:`~repro.cq.subplan.SubplanMemo` — their executions share
        materialized prefix bindings too.
        """
        return tuple(self.plan(disjunct, virtual) for disjunct in union)

    def clear(self) -> None:
        self._cache.clear()
        self._exact.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def size(self) -> int:
        return len(self._cache)
