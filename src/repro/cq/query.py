"""Conjunctive queries with λ-parameters (paper, Definition 2.1).

A :class:`ConjunctiveQuery` is the common representation for

- user queries (``Q(N) :- Family(F,N,Ty), Ty = "gpcr"``),
- view definitions (``λF. V1(F,N,Ty) :- Family(F,N,Ty)``),
- citation queries (``λF. CV1(F,N,Pn) :- Family(...), FC(...), Person(...)``),
- rewritings (bodies may reference view names as relational atoms).

The λ-parameters (``parameters``) are the paper's ``X = [x1..xn]``: an
ordered sequence of variables.  For each valuation of the parameters the
query denotes a different instance; :meth:`instantiate` applies a valuation
by substituting constants for the parameters.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.cq.atoms import ComparisonAtom, RelationalAtom, Substitution
from repro.cq.terms import Constant, Term, Variable, as_term
from repro.errors import ParameterError, QueryError, UnsafeQueryError
from repro.util.naming import NameSupply


class ConjunctiveQuery:
    """An immutable conjunctive query.

    Parameters
    ----------
    name:
        Head predicate name (``Q``, ``V1``, ``CV1``, ...).
    head:
        Ordered head terms (variables or constants).
    atoms:
        Relational atoms of the body.
    comparisons:
        Comparison predicates of the body.
    parameters:
        λ-parameters; an ordered sequence of distinct body variables.
    """

    __slots__ = ("name", "head", "atoms", "comparisons", "parameters", "_hash")

    def __init__(
        self,
        name: str,
        head: Sequence[Term],
        atoms: Sequence[RelationalAtom],
        comparisons: Sequence[ComparisonAtom] = (),
        parameters: Sequence[Variable] = (),
    ) -> None:
        self.name = name
        self.head: tuple[Term, ...] = tuple(head)
        self.atoms: tuple[RelationalAtom, ...] = tuple(atoms)
        self.comparisons: tuple[ComparisonAtom, ...] = tuple(comparisons)
        self.parameters: tuple[Variable, ...] = tuple(parameters)
        if len(set(self.parameters)) != len(self.parameters):
            raise ParameterError(f"duplicate λ-parameters in {name}")
        body_vars = set(self.body_variables())
        for param in self.parameters:
            if param not in body_vars:
                raise ParameterError(
                    f"λ-parameter {param!r} does not occur in the body of {name}"
                )
        self._hash = hash(
            (self.name, self.head, self.atoms, frozenset(self.comparisons),
             self.parameters)
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        """Arity of the head."""
        return len(self.head)

    @property
    def is_parameterized(self) -> bool:
        """True when the query has a λ-term (paper, Def 2.1)."""
        return bool(self.parameters)

    def head_variables(self) -> list[Variable]:
        """Head variables in order of first occurrence."""
        seen: dict[Variable, None] = {}
        for term in self.head:
            if isinstance(term, Variable):
                seen.setdefault(term)
        return list(seen)

    def body_variables(self) -> list[Variable]:
        """All variables occurring in relational or comparison atoms."""
        seen: dict[Variable, None] = {}
        for atom in self.atoms:
            for var in atom.variables():
                seen.setdefault(var)
        for comparison in self.comparisons:
            for var in comparison.variables():
                seen.setdefault(var)
        return list(seen)

    def variables(self) -> list[Variable]:
        """All variables of the query (head first, then body)."""
        seen: dict[Variable, None] = {}
        for var in self.head_variables():
            seen.setdefault(var)
        for var in self.body_variables():
            seen.setdefault(var)
        return list(seen)

    def relational_variables(self) -> set[Variable]:
        """Variables occurring in at least one relational atom."""
        result: set[Variable] = set()
        for atom in self.atoms:
            result.update(atom.variables())
        return result

    def relation_names(self) -> list[str]:
        """Distinct relation names used in the body, in order."""
        seen: dict[str, None] = {}
        for atom in self.atoms:
            seen.setdefault(atom.relation)
        return list(seen)

    def existential_variables(self) -> list[Variable]:
        """Body variables not exported through the head or λ-parameters."""
        exported = set(self.head_variables()) | set(self.parameters)
        return [v for v in self.body_variables() if v not in exported]

    def constants(self) -> list[Constant]:
        """All constants in head, atoms and comparisons."""
        seen: dict[Constant, None] = {}
        for term in self.head:
            if isinstance(term, Constant):
                seen.setdefault(term)
        for atom in self.atoms:
            for const in atom.constants():
                seen.setdefault(const)
        for comparison in self.comparisons:
            for side in (comparison.left, comparison.right):
                if isinstance(side, Constant):
                    seen.setdefault(side)
        return list(seen)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def check_safety(self) -> None:
        """Raise :class:`UnsafeQueryError` unless the query is safe.

        Safety: every head variable, λ-parameter and comparison variable
        must occur in some relational atom.
        """
        anchored = self.relational_variables()
        for var in self.head_variables():
            if var not in anchored:
                raise UnsafeQueryError(
                    f"head variable {var!r} of {self.name} not bound by any "
                    "relational atom"
                )
        for var in self.parameters:
            if var not in anchored:
                raise UnsafeQueryError(
                    f"λ-parameter {var!r} of {self.name} not bound by any "
                    "relational atom"
                )
        for comparison in self.comparisons:
            for var in comparison.variables():
                if var not in anchored:
                    raise UnsafeQueryError(
                        f"comparison variable {var!r} of {self.name} not bound "
                        "by any relational atom"
                    )

    def validate_against(self, schema: Any) -> None:
        """Check every base atom's arity against a relational schema.

        Atoms over names not in the schema are skipped (they may denote
        views; the registry validates those separately).
        """
        for atom in self.atoms:
            if atom.relation in schema:
                expected = schema.relation(atom.relation).arity
                if atom.arity != expected:
                    raise QueryError(
                        f"atom {atom!r} has arity {atom.arity}, schema says "
                        f"{expected}"
                    )

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------

    def substitute(self, substitution: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution to head, body, and parameters.

        Parameters that are substituted by constants are dropped from the
        parameter list (they are no longer free); parameters renamed to
        other variables follow the renaming.
        """
        new_parameters = []
        for param in self.parameters:
            image = substitution.get(param, param)
            if isinstance(image, Variable):
                new_parameters.append(image)
        return ConjunctiveQuery(
            self.name,
            [t if isinstance(t, Constant) else substitution.get(t, t)
             for t in self.head],
            [atom.substitute(substitution) for atom in self.atoms],
            [comparison.substitute(substitution)
             for comparison in self.comparisons],
            new_parameters,
        )

    def instantiate(self, values: Sequence[Any]) -> "ConjunctiveQuery":
        """Apply a λ-valuation: substitute constants for the parameters.

        The paper writes ``V(Y)(a1, ..., an)`` for the instantiation of a
        view with parameter values ``a1..an``; this method implements that
        application.
        """
        if len(values) != len(self.parameters):
            raise ParameterError(
                f"{self.name} takes {len(self.parameters)} parameter(s), "
                f"got {len(values)}"
            )
        substitution = {
            param: as_term(value)
            for param, value in zip(self.parameters, values)
        }
        return self.substitute(substitution)

    def rename_apart(
        self, avoid: Iterable[str], supply: NameSupply | None = None
    ) -> tuple["ConjunctiveQuery", dict[Variable, Variable]]:
        """Rename all variables away from ``avoid``.

        Returns the renamed query and the applied renaming.  Used when
        expanding views inside rewritings so existential view variables
        never capture query variables.
        """
        if supply is None:
            supply = NameSupply(avoid)
        else:
            supply.reserve(avoid)
        renaming: dict[Variable, Variable] = {}
        for var in self.variables():
            renaming[var] = Variable(supply.fresh(hint=var.name))
        return self.substitute(renaming), renaming

    def with_name(self, name: str) -> "ConjunctiveQuery":
        """Copy with a different head predicate name."""
        return ConjunctiveQuery(
            name, self.head, self.atoms, self.comparisons, self.parameters
        )

    def with_parameters(self, parameters: Sequence[Variable]) -> "ConjunctiveQuery":
        """Copy with a different λ-parameter list."""
        return ConjunctiveQuery(
            self.name, self.head, self.atoms, self.comparisons, parameters
        )

    def drop_atom(self, index: int) -> "ConjunctiveQuery":
        """Copy without the ``index``-th relational atom (for minimization)."""
        atoms = self.atoms[:index] + self.atoms[index + 1:]
        return ConjunctiveQuery(
            self.name, self.head, atoms, self.comparisons, self.parameters
        )

    def drop_comparison(self, index: int) -> "ConjunctiveQuery":
        """Copy without the ``index``-th comparison atom."""
        comparisons = self.comparisons[:index] + self.comparisons[index + 1:]
        return ConjunctiveQuery(
            self.name, self.head, self.atoms, comparisons, self.parameters
        )

    # ------------------------------------------------------------------
    # value semantics & display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Structural (syntactic) equality.

        Comparison atoms are compared as sets; for equality *modulo variable
        renaming* use :func:`repro.cq.containment.are_equivalent`.
        """
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self.name == other.name
            and self.head == other.head
            and self.atoms == other.atoms
            and frozenset(self.comparisons) == frozenset(other.comparisons)
            and self.parameters == other.parameters
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        head_terms = ", ".join(repr(t) for t in self.head)
        body_parts = [repr(atom) for atom in self.atoms]
        body_parts.extend(repr(c) for c in self.comparisons)
        body = ", ".join(body_parts)
        prefix = ""
        if self.parameters:
            params = ", ".join(p.name for p in self.parameters)
            prefix = f"lambda {params}. "
        return f"{prefix}{self.name}({head_terms}) :- {body}"

    def signature(self) -> tuple:
        """A renaming-invariant fingerprint for fast grouping of queries.

        Two queries equal up to variable renaming have equal signatures
        (the converse need not hold); used to bucket candidate rewritings
        before running the exact equivalence check.
        """
        relation_counts = tuple(
            sorted((atom.relation, atom.arity) for atom in self.atoms)
        )
        comparison_ops = tuple(sorted(str(c.op) for c in self.comparisons))
        constants = tuple(sorted(repr(c) for c in self.constants()))
        return (len(self.head), relation_counts, comparison_ops, constants)
