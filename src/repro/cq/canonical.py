"""Canonical forms of conjunctive queries (α-equivalence).

Two queries that differ only in variable names describe the same
computation: they share rewritings (modulo renaming) and — because cost
estimation only looks at structure and statistics — the same query plan.
This module provides the renaming-invariant *canonical key* used by the
rewriting cache (:mod:`repro.citation.cache`) and the plan cache
(:class:`repro.cq.plan.QueryPlanner`), plus :func:`canonicalize`, which
produces an actual canonical query together with the renaming, so cached
artifacts built for the canonical form can be mapped back to the caller's
variables.
"""

from __future__ import annotations

from repro.cq.atoms import RelationalAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Term, Variable


def _canonical_parts(
    query: ConjunctiveQuery,
) -> tuple[dict[Variable, Variable], list[str]]:
    """The canonical renaming and the key parts, in one traversal.

    Variables are renamed ``v0, v1, ...`` in order of first occurrence
    across the head, the atoms (in order), and the comparisons (sorted by
    their canonical repr after renaming is deterministic enough for our
    construction order).
    """
    renaming: dict[Variable, Variable] = {}

    def canon(term: object) -> str:
        if isinstance(term, Variable):
            if term not in renaming:
                renaming[term] = Variable(f"v{len(renaming)}")
            return renaming[term].name
        return repr(term)

    parts = ["H:" + ",".join(canon(t) for t in query.head)]
    for atom in query.atoms:
        parts.append(
            f"A:{atom.relation}(" + ",".join(canon(t) for t in atom.terms)
            + ")"
        )
    comparison_parts = []
    for comparison in query.comparisons:
        normalized = comparison.normalized()
        comparison_parts.append(
            f"C:{canon(normalized.left)}{normalized.op}"
            f"{canon(normalized.right)}"
        )
    parts.extend(sorted(comparison_parts))
    return renaming, parts


def canonical_key(query: ConjunctiveQuery) -> str:
    """A cache key invariant under variable renaming.

    Two α-equivalent queries map to the same key; distinct structures map
    to distinct keys.
    """
    __, parts = _canonical_parts(query)
    return "|".join(parts)


def canonical_key_and_renaming(
    query: ConjunctiveQuery,
) -> tuple[str, dict[Variable, Variable]]:
    """Key and ``original -> canonical`` renaming in a single traversal.

    Cache consumers need both on every lookup (the renaming rebinds the
    cached artifact to the caller's variables); computing them together
    keeps the hot path to one pass over the query.
    """
    renaming, parts = _canonical_parts(query)
    return "|".join(parts), renaming


def canonical_query(
    query: ConjunctiveQuery, renaming: dict[Variable, Variable]
) -> ConjunctiveQuery:
    """Build the canonical representative given a precomputed renaming."""

    def canon_term(term: Term) -> Term:
        if isinstance(term, Variable):
            return renaming[term]
        return term

    head = [canon_term(t) for t in query.head]
    atoms = [
        RelationalAtom(atom.relation, [canon_term(t) for t in atom.terms])
        for atom in query.atoms
    ]
    comparisons = sorted(
        (
            comparison.normalized().substitute(renaming)
            for comparison in query.comparisons
        ),
        key=repr,
    )
    parameters = [renaming[p] for p in query.parameters]
    return ConjunctiveQuery(query.name, head, atoms, comparisons, parameters)


def canonicalize(
    query: ConjunctiveQuery,
) -> tuple[ConjunctiveQuery, dict[Variable, Variable]]:
    """The canonical representative of ``query``'s α-equivalence class.

    Returns the canonical query (variables ``v0..vn``, comparisons
    normalized and sorted) and the renaming ``original -> canonical``.
    Queries with the same :func:`canonical_key` canonicalize to equal
    canonical queries, so structures computed for the canonical form (a
    query plan, say) can be shared and rebound through the inverse
    renaming.
    """
    renaming, __ = _canonical_parts(query)
    return canonical_query(query, renaming), renaming
