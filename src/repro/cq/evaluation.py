"""Conjunctive-query evaluation over a relational database.

Evaluation enumerates all *bindings* (valuations of body variables that
satisfy every relational and comparison atom) and projects them onto the
head.  Bindings — not just head tuples — are first-class here because the
citation model (paper, Def 3.1/3.2) sums citations *per binding*: every
binding that yields an output tuple contributes one monomial.

Since the planner refactor this module is a thin facade over the
three-stage pipeline:

- :mod:`repro.relational.statistics` — per-relation cardinality,
  distinct counts, and order statistics (min/max, equi-depth
  histograms), maintained incrementally;
- :mod:`repro.cq.plan` — cost-based join ordering and static access
  paths (:func:`~repro.cq.plan.plan_query`), with equality comparisons
  pushed into hash-index probes and range comparisons pushed into
  ordered (sorted-index) access paths, cached across α-equivalent
  queries by :class:`~repro.cq.plan.QueryPlanner`;
- :mod:`repro.cq.executor` — iterator-style operators streaming the
  bindings.

:func:`reference_bindings` keeps the old stats-blind greedy
index-nested-loop interpreter as an executable specification: property
tests assert the planned executor produces binding-for-binding identical
results, and the planner benchmark uses it as the baseline.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from repro.analysis import sanitizer as _sanitizer
from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.executor import Binding, IndexedVirtualRelations, execute_plan
from repro.cq.parallel import execute_plan_parallel
from repro.cq.plan import QueryPlan, QueryPlanner, plan_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.subplan import SubplanMemo, execute_plan_shared
from repro.cq.terms import Constant, Variable
from repro.errors import QueryError
from repro.relational.database import Database

#: Virtual relations: name -> list of value tuples (used to evaluate
#: rewritings whose atoms reference views).
VirtualRelations = Mapping[str, Sequence[tuple[Any, ...]]]


def enumerate_bindings(
    query: ConjunctiveQuery,
    db: Database,
    virtual: VirtualRelations | None = None,
    planner: QueryPlanner | None = None,
    parallelism: int = 1,
    use_processes: bool = False,
    *,
    plan: QueryPlan | None = None,
    memo: "SubplanMemo | None" = None,
) -> Iterator[Binding]:
    """Yield every satisfying binding of the query's body variables.

    Bindings are the paper's valuations (Def 2.1 semantics): every
    assignment of body variables satisfying all relational and comparison
    atoms, one per derivation (duplicates included — Def 3.2 counts them).

    Parameters
    ----------
    query:
        The conjunctive query; must be safe and non-parameterized
        (instantiate λ-parameters first via
        :meth:`~repro.cq.query.ConjunctiveQuery.instantiate`).
    db:
        The database instance to evaluate against.
    virtual:
        Extra virtual relations (materialized view instances) visible to
        the query body.  Plain mappings are re-wrapped (and re-indexed,
        re-fingerprinted) on every call; callers replaying queries over
        the same materialization should pass one long-lived
        :class:`~repro.cq.executor.IndexedVirtualRelations` instead, the
        way :class:`~repro.citation.generator.CitationEngine` does, so
        indexes and plan-cache content hashes are computed once.
    planner:
        When given, its plan cache is consulted (and filled); otherwise
        the query is planned from scratch — still cheap, but workloads
        should share a :class:`~repro.cq.plan.QueryPlanner`.
    parallelism:
        Number of workers for the shard-and-merge executor
        (:mod:`repro.cq.parallel`); 1 (the default) runs serially.  The
        binding sequence is identical either way — same multiset *and*
        same order (shards are contiguous and merged in shard order).
    use_processes:
        With ``parallelism > 1``, use a process pool instead of threads.
    plan:
        A plan already built for exactly this ``query`` / ``virtual``
        pair (the batch layer pre-plans while grouping shared prefixes);
        skips the planner call — and its hit/miss accounting — entirely.
    memo:
        A :class:`~repro.cq.subplan.SubplanMemo` for cross-query shared
        sub-plan execution; ``None`` runs the plan standalone.

    Yields
    ------
    dict mapping every body :class:`~repro.cq.terms.Variable` to a value.
    """
    indexed = IndexedVirtualRelations.wrap(virtual)
    if plan is None:
        if planner is not None:
            plan = planner.plan(query, indexed)
        else:
            plan = plan_query(query, db, indexed)
    if memo is not None:
        yield from execute_plan_shared(
            plan,
            db,
            indexed,
            memo,
            parallelism=parallelism,
            use_processes=use_processes,
        )
    elif parallelism > 1:
        yield from execute_plan_parallel(
            plan,
            db,
            indexed,
            parallelism=parallelism,
            use_processes=use_processes,
        )
    else:
        yield from execute_plan(plan, db, indexed)


def head_tuple(query: ConjunctiveQuery, binding: Binding) -> tuple[Any, ...]:
    """Project a binding onto the query head."""
    result = []
    for term in query.head:
        if isinstance(term, Constant):
            result.append(term.value)
        else:
            result.append(binding[term])
    return tuple(result)


def evaluate_query(
    query: ConjunctiveQuery,
    db: Database,
    params: Sequence[Any] | None = None,
    virtual: VirtualRelations | None = None,
    planner: QueryPlanner | None = None,
    parallelism: int = 1,
    use_processes: bool = False,
) -> list[tuple[Any, ...]]:
    """Evaluate a query under set semantics (the paper's Def 2.1).

    This is the user-facing query result — the head projection of every
    satisfying binding, deduplicated.  (The citation pipeline uses
    :func:`evaluate_with_bindings` instead, because Defs 3.1/3.2 cite per
    *binding*, not per output tuple.)

    Parameters
    ----------
    query:
        The conjunctive query.  If parameterized, ``params`` must supply a
        valuation.
    db:
        The database instance.
    params:
        λ-parameter values (the paper's ``V(Y)(a1..an)`` application,
        Def 2.1).
    virtual:
        Extra virtual relations visible to the query body.
    planner:
        Optional shared plan cache.
    parallelism / use_processes:
        Worker count (and thread/process choice) for the shard-and-merge
        executor; 1 runs serially.  Results are identical either way.

    Returns
    -------
    list of head-value tuples, deduplicated, in first-derivation order.
    """
    if params is not None:
        query = query.instantiate(params)
    results: dict[tuple[Any, ...], None] = {}
    for binding in enumerate_bindings(
        query, db, virtual, planner, parallelism, use_processes
    ):
        results.setdefault(head_tuple(query, binding))
    return list(results)


def evaluate_with_bindings(
    query: ConjunctiveQuery,
    db: Database,
    params: Sequence[Any] | None = None,
    virtual: VirtualRelations | None = None,
    planner: QueryPlanner | None = None,
    parallelism: int = 1,
    use_processes: bool = False,
    *,
    plan: QueryPlan | None = None,
    memo: SubplanMemo | None = None,
) -> dict[tuple[Any, ...], list[Binding]]:
    """Evaluate and group all satisfying bindings by output tuple.

    This is the paper's ``β_t`` (Def 3.2): the list of bindings yielding
    each output tuple ``t``, duplicates preserved — the citation engine
    sums one monomial per binding.  Grouping follows the executor's
    first derivation of each tuple, which is deterministic and identical
    at any ``parallelism`` (the parallel merge preserves serial order).

    Parameters are exactly those of :func:`evaluate_query`, plus the
    ``plan``/``memo`` pass-throughs of :func:`enumerate_bindings` (the
    citation batch layer pre-plans and shares sub-plans).

    Returns
    -------
    dict mapping each output tuple to its (non-empty) binding list.
    """
    if params is not None:
        query = query.instantiate(params)
        plan = None  # a caller-supplied plan cannot cover the instantiation
    region = (
        _sanitizer.execution_region(db)
        if _sanitizer._active
        else contextlib.nullcontext()
    )
    grouped: dict[tuple[Any, ...], list[Binding]] = {}
    # Every citation evaluation materializes through this loop, so the
    # sanitizer's execution region here covers the whole pipeline: a
    # mutation of ``db`` from any other thread mid-stream tears the
    # snapshot this grouping is built from.
    with region:
        for binding in enumerate_bindings(
            query, db, virtual, planner, parallelism, use_processes,
            plan=plan, memo=memo,
        ):
            grouped.setdefault(head_tuple(query, binding), []).append(binding)
    return grouped


# ---------------------------------------------------------------------------
# Reference evaluator (the pre-planner greedy interpreter)
# ---------------------------------------------------------------------------


def _atom_rows(
    atom: RelationalAtom,
    db: Database,
    virtual: IndexedVirtualRelations | None,
    bound: Binding,
) -> Iterator[tuple[Any, ...]]:
    """Rows matching ``atom`` given already-bound variables.

    Both database and virtual relations use hash indexes on the bound
    positions; arity is validated once per relation, not per row.
    """
    constraints: list[tuple[int, Any]] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constraints.append((position, term.value))
        elif term in bound:
            constraints.append((position, bound[term]))
    positions = tuple(i for i, __ in constraints)
    values = tuple(v for __, v in constraints)

    if virtual is not None and atom.relation in virtual:
        virtual.validate_arity(atom.relation, atom.arity)
        yield from virtual.lookup(atom.relation, positions, values)
        return

    instance = db.relation(atom.relation)
    if instance.schema.arity != atom.arity:
        raise QueryError(
            f"atom {atom!r} has arity {atom.arity}, relation has "
            f"{instance.schema.arity}"
        )
    for row in instance.lookup(positions, values):
        yield row.values


def _consistent_extension(
    atom: RelationalAtom, values: tuple[Any, ...], binding: Binding
) -> Binding | None:
    """Extend ``binding`` with the matches of ``atom`` against ``values``.

    Returns None when the row conflicts with the atom pattern (repeated
    variables or constants) or the current binding.
    """
    extension = dict(binding)
    for term, value in zip(atom.terms, values):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            current = extension.get(term, _MISSING)
            if current is _MISSING:
                extension[term] = value
            elif current != value:
                return None
    return extension


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def _order_atoms(query: ConjunctiveQuery) -> list[RelationalAtom]:
    """Greedy join order: repeatedly pick the atom sharing the most
    variables with those already bound (ties broken by original order).

    This is the stats-blind heuristic the planner replaced; it survives
    here as the reference behaviour."""
    remaining = list(query.atoms)
    ordered: list[RelationalAtom] = []
    bound_vars: set[Variable] = set()
    while remaining:
        def score(atom: RelationalAtom) -> tuple[int, int]:
            atom_vars = atom.variables()
            shared = sum(1 for v in atom_vars if v in bound_vars)
            constants = len(atom.constants())
            return (shared, constants)

        best = max(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound_vars.update(best.variables())
    return ordered


def _check_comparison(comparison: ComparisonAtom, binding: Binding) -> bool:
    def value_of(term: Any) -> Any:
        if isinstance(term, Constant):
            return term.value
        return binding[term]

    try:
        return comparison.op.function(
            value_of(comparison.left), value_of(comparison.right)
        )
    except TypeError:
        return False


def reference_bindings(
    query: ConjunctiveQuery,
    db: Database,
    virtual: VirtualRelations | None = None,
) -> Iterator[Binding]:
    """The pre-planner evaluator: greedy join order, recursive descent.

    Semantically identical to :func:`enumerate_bindings` (the property
    suite asserts it); kept as the executable specification and as the
    stats-blind baseline for the planner benchmark.
    """
    if query.is_parameterized:
        raise QueryError(
            f"cannot evaluate parameterized query {query.name}: instantiate "
            "its λ-parameters first"
        )
    query.check_safety()
    indexed = IndexedVirtualRelations.wrap(virtual)

    # Ground comparisons hold for every binding or none.
    pending: list[ComparisonAtom] = []
    for comparison in query.comparisons:
        if comparison.is_ground:
            if not comparison.evaluate_ground():
                return
        else:
            pending.append(comparison)

    ordered_atoms = _order_atoms(query)

    # Schedule each comparison right after the atom that binds its last
    # variable.
    schedule: list[list[ComparisonAtom]] = [[] for __ in ordered_atoms]
    bound_so_far: set[Variable] = set()
    for index, atom in enumerate(ordered_atoms):
        bound_so_far.update(atom.variables())
        still_pending = []
        for comparison in pending:
            if all(v in bound_so_far for v in comparison.variables()):
                schedule[index].append(comparison)
            else:
                still_pending.append(comparison)
        pending = still_pending
    if pending:
        # Safety check above should prevent this.
        raise QueryError("comparison variables not bound by relational atoms")

    def recurse(index: int, binding: Binding) -> Iterator[Binding]:
        if index == len(ordered_atoms):
            yield binding
            return
        atom = ordered_atoms[index]
        for values in _atom_rows(atom, db, indexed, binding):
            extension = _consistent_extension(atom, values, binding)
            if extension is None:
                continue
            if all(_check_comparison(c, extension) for c in schedule[index]):
                yield from recurse(index + 1, extension)

    if not ordered_atoms:
        # Body with no relational atoms (only ground comparisons, already
        # checked): one empty binding.
        yield {}
        return
    yield from recurse(0, {})
