"""Conjunctive-query evaluation over a relational database.

Evaluation enumerates all *bindings* (valuations of body variables that
satisfy every relational and comparison atom) and projects them onto the
head.  Bindings — not just head tuples — are first-class here because the
citation model (paper, Def 3.1/3.2) sums citations *per binding*: every
binding that yields an output tuple contributes one monomial.

The evaluator is a straightforward index-nested-loop join: atoms are
ordered greedily by boundness, each atom probes a hash index on its bound
positions, and comparison atoms fire as soon as their variables are bound.
Virtual relations (e.g. materialized view instances during rewriting
validation) can be supplied alongside the database.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.errors import QueryError
from repro.relational.database import Database

#: A binding maps every body variable to a concrete value.
Binding = dict[Variable, Any]

#: Virtual relations: name -> list of value tuples (used to evaluate
#: rewritings whose atoms reference views).
VirtualRelations = Mapping[str, Sequence[tuple[Any, ...]]]


def _atom_rows(
    atom: RelationalAtom,
    db: Database,
    virtual: VirtualRelations | None,
    bound: Binding,
) -> Iterator[tuple[Any, ...]]:
    """Rows matching ``atom`` given already-bound variables.

    For database relations this uses hash indexes on the bound positions;
    virtual relations are filtered by scan.
    """
    constraints: list[tuple[int, Any]] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constraints.append((position, term.value))
        elif term in bound:
            constraints.append((position, bound[term]))

    if virtual is not None and atom.relation in virtual:
        for values in virtual[atom.relation]:
            if len(values) != atom.arity:
                raise QueryError(
                    f"virtual relation {atom.relation!r} arity mismatch"
                )
            if all(values[i] == v for i, v in constraints):
                yield tuple(values)
        return

    instance = db.relation(atom.relation)
    if instance.schema.arity != atom.arity:
        raise QueryError(
            f"atom {atom!r} has arity {atom.arity}, relation has "
            f"{instance.schema.arity}"
        )
    positions = tuple(i for i, __ in constraints)
    values = tuple(v for __, v in constraints)
    for row in instance.lookup(positions, values):
        yield row.values


def _consistent_extension(
    atom: RelationalAtom, values: tuple[Any, ...], binding: Binding
) -> Binding | None:
    """Extend ``binding`` with the matches of ``atom`` against ``values``.

    Returns None when the row conflicts with the atom pattern (repeated
    variables or constants) or the current binding.
    """
    extension = dict(binding)
    for term, value in zip(atom.terms, values):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            current = extension.get(term, _MISSING)
            if current is _MISSING:
                extension[term] = value
            elif current != value:
                return None
    return extension


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def _order_atoms(query: ConjunctiveQuery) -> list[RelationalAtom]:
    """Greedy join order: repeatedly pick the atom sharing the most
    variables with those already bound (ties broken by original order)."""
    remaining = list(query.atoms)
    ordered: list[RelationalAtom] = []
    bound_vars: set[Variable] = set()
    while remaining:
        def score(atom: RelationalAtom) -> tuple[int, int]:
            atom_vars = atom.variables()
            shared = sum(1 for v in atom_vars if v in bound_vars)
            constants = len(atom.constants())
            return (shared, constants)

        best = max(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound_vars.update(best.variables())
    return ordered


def _comparison_ready(
    comparison: ComparisonAtom, bound_vars: set[Variable]
) -> bool:
    return all(var in bound_vars for var in comparison.variables())


def _check_comparison(comparison: ComparisonAtom, binding: Binding) -> bool:
    def value_of(term: Any) -> Any:
        if isinstance(term, Constant):
            return term.value
        return binding[term]

    try:
        return comparison.op.function(
            value_of(comparison.left), value_of(comparison.right)
        )
    except TypeError:
        return False


def enumerate_bindings(
    query: ConjunctiveQuery,
    db: Database,
    virtual: VirtualRelations | None = None,
) -> Iterator[Binding]:
    """Yield every satisfying binding of the query's body variables.

    The query must be safe and non-parameterized (instantiate λ-parameters
    first via :meth:`~repro.cq.query.ConjunctiveQuery.instantiate`).
    """
    if query.is_parameterized:
        raise QueryError(
            f"cannot evaluate parameterized query {query.name}: instantiate "
            "its λ-parameters first"
        )
    query.check_safety()

    # Ground comparisons hold for every binding or none.
    pending: list[ComparisonAtom] = []
    for comparison in query.comparisons:
        if comparison.is_ground:
            if not comparison.evaluate_ground():
                return
        else:
            pending.append(comparison)

    ordered_atoms = _order_atoms(query)

    # Schedule each comparison right after the atom that binds its last
    # variable.
    schedule: list[list[ComparisonAtom]] = [[] for __ in ordered_atoms]
    bound_so_far: set[Variable] = set()
    for index, atom in enumerate(ordered_atoms):
        bound_so_far.update(atom.variables())
        still_pending = []
        for comparison in pending:
            if _comparison_ready(comparison, bound_so_far):
                schedule[index].append(comparison)
            else:
                still_pending.append(comparison)
        pending = still_pending
    if pending:
        # Safety check above should prevent this.
        raise QueryError("comparison variables not bound by relational atoms")

    def recurse(index: int, binding: Binding) -> Iterator[Binding]:
        if index == len(ordered_atoms):
            yield binding
            return
        atom = ordered_atoms[index]
        for values in _atom_rows(atom, db, virtual, binding):
            extension = _consistent_extension(atom, values, binding)
            if extension is None:
                continue
            if all(_check_comparison(c, extension) for c in schedule[index]):
                yield from recurse(index + 1, extension)

    if not ordered_atoms:
        # Body with no relational atoms (only ground comparisons, already
        # checked): one empty binding.
        yield {}
        return
    yield from recurse(0, {})


def head_tuple(query: ConjunctiveQuery, binding: Binding) -> tuple[Any, ...]:
    """Project a binding onto the query head."""
    result = []
    for term in query.head:
        if isinstance(term, Constant):
            result.append(term.value)
        else:
            result.append(binding[term])
    return tuple(result)


def evaluate_query(
    query: ConjunctiveQuery,
    db: Database,
    params: Sequence[Any] | None = None,
    virtual: VirtualRelations | None = None,
) -> list[tuple[Any, ...]]:
    """Evaluate a query under set semantics.

    Parameters
    ----------
    query:
        The conjunctive query.  If parameterized, ``params`` must supply a
        valuation.
    db:
        The database instance.
    params:
        λ-parameter values (the paper's ``V(Y)(a1..an)`` application).
    virtual:
        Extra virtual relations visible to the query body.

    Returns
    -------
    list of head-value tuples, deduplicated, in first-derivation order.
    """
    if params is not None:
        query = query.instantiate(params)
    results: dict[tuple[Any, ...], None] = {}
    for binding in enumerate_bindings(query, db, virtual):
        results.setdefault(head_tuple(query, binding))
    return list(results)


def evaluate_with_bindings(
    query: ConjunctiveQuery,
    db: Database,
    params: Sequence[Any] | None = None,
    virtual: VirtualRelations | None = None,
) -> dict[tuple[Any, ...], list[Binding]]:
    """Evaluate and group all satisfying bindings by output tuple.

    This is the paper's ``β_t`` (Def 3.2): the set of bindings yielding
    each output tuple ``t``.
    """
    if params is not None:
        query = query.instantiate(params)
    grouped: dict[tuple[Any, ...], list[Binding]] = {}
    for binding in enumerate_bindings(query, db, virtual):
        grouped.setdefault(head_tuple(query, binding), []).append(binding)
    return grouped
