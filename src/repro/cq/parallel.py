"""Shard-and-merge parallel execution of query plans.

The iterator operators of :mod:`repro.cq.executor` are pull-based and
stateless, so a plan's step pipeline can run over any partition of its
input bindings.  This module exploits that in two ways:

* **Binding sharding** — materialize the *first* join step's bindings,
  partition them into balanced contiguous shards
  (:func:`repro.relational.statistics.shard_cardinalities` supplies the
  split arithmetic), run the remaining steps of each shard on a worker,
  and stream the merged bindings back in shard order.
* **Storage sharding** — when the first step is a scan or hash probe of
  a base relation whose storage is partitioned
  (``Database(schema, shards=N)``), the *seeding itself* fans out:
  each worker scans or probes one :class:`~repro.relational.database
  .RelationShard`, and the per-shard streams merge by the rows' global
  insertion ordinals, reconstructing the serial seed order exactly.

Partitioning inside a single plan execution keeps every layer above
(:func:`repro.cq.evaluation.enumerate_bindings`,
:meth:`repro.citation.generator.CitationEngine.cite_batch`,
:func:`repro.workload.runner.run_workload`, the ``cite-batch`` CLI)
supplied with ``parallelism`` and ``shards`` knobs for free.

Workers are **threads** by default: they share the database's and the
materialization's indexes (aggregate indexes are warmed up front, and
per-shard indexes are shard-local, so workers never race to build the
same one), and the driver falls back to serial execution whenever
sharding cannot pay for itself (``parallelism <= 1``, single-step
plans, or fewer first-step bindings than ``min_partition``).  A
**process pool** is available behind ``use_processes=True`` for
CPU-bound plans on interpreters where threads contend for the GIL.
Process workers receive only a *plan-driven projection* of the database
(:meth:`~repro.relational.database.Database.project_for_plan`): the
extensions of just the relations the plan suffix touches, plus — under
storage sharding — only their own shard's slice of the first step's
relation, instead of a pickled copy of the whole database.  Payloads
are pickled in the parent, so :data:`SHIPPING` records the exact
serialized byte volume (the E16 benchmark asserts the projection ships
an order of magnitude less than whole-database pickling); the legacy
whole-database behavior remains available via ``shipping="world"`` as a
benchmark baseline.  Mixed-type comparison warnings raised inside
process workers are emitted in the child and not re-raised in the
parent; thread workers warn normally.

Bindings are streamed in chunks as workers produce them, and the merge
releases chunks in shard order (binding shards are contiguous runs;
storage shards merge on insertion ordinals): the merged stream is the
serial executor's binding sequence exactly — same multiset (the
property suite asserts this) *and* same order, so upper layers behave
identically at any ``parallelism`` and any shard count.
"""

from __future__ import annotations

import contextlib
import heapq
import pickle
import queue
import threading
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from operator import itemgetter
from typing import Any

from repro.analysis import sanitizer as _sanitizer
from repro.cq.executor import (
    Binding,
    IndexedVirtualRelations,
    OrdinalSourceOperator,
    SequenceSourceOperator,
    SingletonBindingOperator,
    VirtualRelations,
    _comparison_checker,
    build_operator_chain,
    execute_plan,
    execute_plan_seeded,
    seed_bindings_from_pairs,
)
from repro.cq.plan import JoinStep, QueryPlan
from repro.cq.terms import Constant
from repro.relational.database import Database, RelationInstance
from repro.relational.statistics import shard_cardinalities

#: Below this many first-step bindings, sharding overhead (threads,
#: queues) cannot win; the driver runs the plan suffix serially instead.
DEFAULT_MIN_PARTITION = 64

#: Bindings per queue message: workers batch results so the merge queue
#: costs one put/get per chunk, not per binding.
_CHUNK_BINDINGS = 256


@dataclass
class ShippingStats:
    """Parent-side accounting of process-pool serialization volume.

    Worker payloads are pickled *in the parent* and shipped as opaque
    bytes, so :attr:`shipped_bytes` is the exact serialized volume sent
    to the pool — not an estimate.  Benchmarks (and curious callers)
    read :data:`SHIPPING` and :meth:`reset` it between runs.
    """

    shipped_bytes: int = 0
    payloads: int = 0

    def note(self, nbytes: int, payloads: int) -> None:
        self.shipped_bytes += nbytes
        self.payloads += payloads

    def reset(self) -> None:
        self.shipped_bytes = 0
        self.payloads = 0


#: Module-level instrumentation for process-pool shipping volume.
SHIPPING = ShippingStats()


def partition_bindings(
    seeds: Sequence[Binding], shards: int
) -> list[Sequence[Binding]]:
    """Split ``seeds`` into at most ``shards`` balanced contiguous runs.

    Empty runs (when ``len(seeds) < shards``) are dropped, so every
    returned shard has work.
    """
    partitions: list[Sequence[Binding]] = []
    start = 0
    for size in shard_cardinalities(len(seeds), shards):
        if size:
            partitions.append(seeds[start:start + size])
        start += size
    return partitions


def _warm_access_paths(
    steps: Sequence[JoinStep],
    db: Database,
    virtual: IndexedVirtualRelations | None,
) -> None:
    """Build every hash index the steps will probe before fanning out.

    Index construction is lazy on first probe; warming serially avoids N
    workers each building (and all but one discarding) the same index.
    """
    for step in steps:
        if step.range_position is not None and step.lookup_positions:
            # Composite path: hash buckets sorted on the ordered
            # position (the plain hash index below stays warmed too —
            # it is the fallback for degraded buckets).
            if step.virtual:
                assert virtual is not None
                virtual.ensure_composite_index(
                    step.atom.relation,
                    step.lookup_positions,
                    step.range_position,
                )
            else:
                db.relation(step.atom.relation).ensure_composite_index(
                    step.lookup_positions, step.range_position
                )
        elif step.range_position is not None:
            if step.virtual:
                assert virtual is not None
                virtual.ensure_sorted_index(
                    step.atom.relation, step.range_position
                )
            else:
                db.relation(step.atom.relation).ensure_sorted_index(
                    step.range_position
                )
        if not step.lookup_positions:
            continue
        if step.virtual:
            assert virtual is not None
            virtual.ensure_index(step.atom.relation, step.lookup_positions)
        else:
            db.relation(step.atom.relation).ensure_index(
                step.lookup_positions
            )


def _run_thread_shards(
    shards: list[Sequence[Binding]],
    rest: Sequence[JoinStep],
    db: Database,
    virtual: IndexedVirtualRelations | None,
    check: Any,
) -> Iterator[Binding]:
    """One thread per shard; bindings stream back through a merge queue.

    Workers emit chunks as they go, but the merge releases them *in shard
    order*: because shards are contiguous runs of the first step's
    bindings, the merged stream is exactly the serial executor's order,
    so parallelism never changes downstream iteration order (citation
    record order, first-derivation dedup order, ...).
    """
    fan_out = (
        _sanitizer.parallel_region(db)
        if _sanitizer._active
        else contextlib.nullcontext()
    )
    results: queue.SimpleQueue = queue.SimpleQueue()
    cancelled = threading.Event()

    def work(index: int, shard: Sequence[Binding]) -> None:
        chunk: list[Binding] = []
        try:
            operator = build_operator_chain(
                SequenceSourceOperator(shard), rest, db, virtual, check
            )
            for binding in operator:
                if cancelled.is_set():
                    # The consumer abandoned the iterator; stop burning
                    # CPU and filling the (unbounded) merge queue.
                    return
                chunk.append(binding)
                if len(chunk) >= _CHUNK_BINDINGS:
                    results.put(("chunk", index, chunk))
                    chunk = []
            results.put(("done", index, chunk))
        except BaseException as exc:  # propagated to the consumer below
            results.put(("error", index, exc))

    workers = [
        threading.Thread(target=work, args=(index, shard), daemon=True)
        for index, shard in enumerate(shards)
    ]
    # The fan-out span covers the workers' whole lifetime: while any of
    # them is scanning the database's shards/indexes, the sanitizer
    # rejects mutations of it from every thread.
    with fan_out:
        for worker in workers:
            worker.start()
        buffered: list[list[list[Binding]]] = [[] for __ in shards]
        finished: set[int] = set()
        failure: BaseException | None = None
        next_shard = 0
        try:
            while next_shard < len(shards):
                kind, index, payload = results.get()
                if kind == "error":
                    failure = failure or payload
                    finished.add(index)
                else:
                    if kind == "done":
                        finished.add(index)
                    buffered[index].append(payload)
                if failure is not None:
                    if len(finished) == len(shards):
                        break
                    continue
                while next_shard < len(shards):
                    chunks = buffered[next_shard]
                    while chunks:
                        yield from chunks.pop(0)
                    if next_shard in finished:
                        next_shard += 1
                    else:
                        break
        finally:
            # Runs on normal completion, worker failure, and generator
            # close (the consumer stopped early): tell workers to stop,
            # then wait — they check the flag per binding, so this is
            # prompt.
            cancelled.set()
            for worker in workers:
                worker.join()
    if failure is not None:
        raise failure


# -- storage-shard seeding ----------------------------------------------------


def _storage_seed_step(
    plan: QueryPlan, db: Database, min_partition: int
) -> JoinStep | None:
    """The first step, when storage-shard fan-out can serve its seeding.

    Eligible first steps are scans and hash probes (``range_position``
    is ``None``) of a base relation whose storage is partitioned and
    large enough to pay for fanning out; everything else (virtual
    relations, ordered/composite access paths, unsharded or tiny
    relations) keeps the serial seeding path.
    """
    if len(plan.steps) < 2:
        return None
    step = plan.steps[0]
    if step.virtual or step.range_position is not None:
        return None
    if not all(isinstance(term, Constant) for term in step.lookup_terms):
        return None  # defensive: a first step can only probe constants
    instance = db.relation(step.atom.relation)
    if instance.shard_count <= 1:
        return None
    if len(instance) < max(2, min_partition):
        return None
    return step


def _constant_probe(step: JoinStep) -> tuple[Any, ...] | None:
    """The step's probe values, or ``None`` for a NaN probe.

    A first-step probe is all constants, so the NaN guard (a NaN probe
    ``==``-matches no row; see :class:`~repro.cq.executor
    .IndexJoinOperator`) is decided once here instead of per row.
    """
    probe = tuple(term.value for term in step.lookup_terms)
    if any(value != value for value in probe):
        return None
    return probe


def _seed_across_shards(
    step: JoinStep,
    db: Database,
    instance: RelationInstance,
    check: Any,
    parallelism: int,
) -> list[tuple[int, Binding]]:
    """Materialize first-step seeds by probing every storage shard
    concurrently, merged back into exact serial order.

    Each thread scans or hash-probes one shard (shard indexes are
    shard-local, so there is no construction race) and keeps each
    surviving binding's global insertion ordinal; merging the per-shard
    streams by ordinal reproduces the aggregate probe's insertion order
    — the serial executor's seed order — exactly.
    """
    from concurrent.futures import ThreadPoolExecutor

    probe = _constant_probe(step)
    if probe is None:
        return []
    positions = step.lookup_positions

    def seed_shard(shard: int) -> list[tuple[int, Binding]]:
        pairs = instance.shard_lookup_pairs(shard, positions, probe)
        return seed_bindings_from_pairs(step, pairs, check)

    if _sanitizer._active:
        _sanitizer.check_shard_partition(instance)
    fan_out = (
        _sanitizer.parallel_region(db)
        if _sanitizer._active
        else contextlib.nullcontext()
    )
    workers = min(parallelism, instance.shard_count)
    with fan_out, ThreadPoolExecutor(max_workers=workers) as pool:
        per_shard = list(pool.map(seed_shard, range(instance.shard_count)))
    merged = list(heapq.merge(*per_shard, key=itemgetter(0)))
    if _sanitizer._active:
        _sanitizer.check_ordinal_run("storage-shard seed merge", merged)
    return merged


# -- process-pool workers -----------------------------------------------------


def _suffix_virtual_rows(
    plan: QueryPlan,
    from_step: int,
    virtual: IndexedVirtualRelations | None,
) -> dict[str, list[tuple[Any, ...]]] | None:
    """Rows of only the virtual relations the plan suffix references."""
    names = {
        step.atom.relation
        for step in plan.steps[from_step:]
        if step.virtual
    }
    if not names:
        return None
    assert virtual is not None
    return {name: list(virtual[name]) for name in names}


def _execute_shard(payload: bytes) -> list[Binding]:
    """Process-pool worker: plan suffix over one whole-database payload.

    The ``shipping="world"`` baseline — the parent pickled the entire
    database for this worker regardless of what the suffix touches.
    """
    plan, from_step, db, virtual_rows, shard = pickle.loads(payload)
    virtual = (
        IndexedVirtualRelations(virtual_rows)
        if virtual_rows is not None
        else None
    )
    check = _comparison_checker(plan.query.name, set())
    operator = build_operator_chain(
        SequenceSourceOperator(shard), plan.steps[from_step:], db, virtual,
        check
    )
    return list(operator)


def _execute_projected_shard(
    common: bytes, shard_payload: bytes
) -> list[Binding]:
    """Process-pool worker: plan suffix over one binding shard, against a
    database rebuilt from only the suffix-referenced extensions."""
    plan, from_step, schema, relations, virtual_rows = pickle.loads(common)
    shard = pickle.loads(shard_payload)
    db = Database.from_projection(schema, relations)
    virtual = (
        IndexedVirtualRelations(virtual_rows)
        if virtual_rows is not None
        else None
    )
    check = _comparison_checker(plan.query.name, set())
    operator = build_operator_chain(
        SequenceSourceOperator(shard), plan.steps[from_step:], db, virtual,
        check
    )
    return list(operator)


def _execute_storage_shard(
    common: bytes, pairs_payload: bytes
) -> list[tuple[int, Binding]]:
    """Process-pool worker: seed from one storage shard's ``(ordinal,
    values)`` slice, run the suffix, and tag every output binding with
    its seed's ordinal for the parent's order-exact merge."""
    plan, schema, relations, virtual_rows = pickle.loads(common)
    pairs = pickle.loads(pairs_payload)
    db = Database.from_projection(schema, relations)
    virtual = (
        IndexedVirtualRelations(virtual_rows)
        if virtual_rows is not None
        else None
    )
    check = _comparison_checker(plan.query.name, set())
    seeds = seed_bindings_from_pairs(plan.steps[0], pairs, check)
    source = OrdinalSourceOperator(seeds)
    chain = build_operator_chain(source, plan.steps[1:], db, virtual, check)
    # Depth-first pipelining: every binding the chain yields derives
    # from the seed the source pulled last, so ``source.current`` read
    # after each yield is that binding's seed ordinal.
    return [(source.current, binding) for binding in chain]


def _run_process_shards(
    plan: QueryPlan,
    from_step: int,
    db: Database,
    virtual: IndexedVirtualRelations | None,
    shards: list[Sequence[Binding]],
    shipping: str = "plan",
) -> Iterator[Binding]:
    """One process per binding shard.

    With ``shipping="plan"`` (the default) each worker receives the
    plan, its shard of seed bindings, and a projection of only the
    relations the plan suffix touches; ``shipping="world"`` is the
    legacy baseline that pickles the whole database to every worker.
    Payloads are pickled here in the parent so :data:`SHIPPING` records
    the exact shipped byte volume.
    """
    from concurrent.futures import ProcessPoolExecutor

    if shipping == "world":
        virtual_rows = (
            {name: list(virtual[name]) for name in virtual}
            if virtual is not None
            else None
        )
        payloads = [
            pickle.dumps((plan, from_step, db, virtual_rows, shard))
            for shard in shards
        ]
        SHIPPING.note(sum(len(p) for p in payloads), len(payloads))
        submit = lambda pool, payload: pool.submit(_execute_shard, payload)  # noqa: E731
    else:
        common = pickle.dumps((
            plan,
            from_step,
            db.schema,
            db.project_for_plan(plan, from_step),
            _suffix_virtual_rows(plan, from_step, virtual),
        ))
        payloads = [pickle.dumps(list(shard)) for shard in shards]
        SHIPPING.note(
            len(common) * len(payloads) + sum(len(p) for p in payloads),
            len(payloads),
        )
        submit = lambda pool, payload: pool.submit(  # noqa: E731
            _execute_projected_shard, common, payload
        )
    with ProcessPoolExecutor(max_workers=len(shards)) as pool:
        futures = [submit(pool, payload) for payload in payloads]
        try:
            for future in futures:
                yield from future.result()
        finally:
            # Runs on normal completion and on generator close (the
            # consumer abandoned the stream): cancel every shard that
            # has not started so pool shutdown only waits for the ones
            # already running.
            for future in futures:
                future.cancel()


def _run_storage_process_shards(
    plan: QueryPlan,
    db: Database,
    virtual: IndexedVirtualRelations | None,
    parallelism: int,
) -> Iterator[Binding]:
    """One process per storage shard of the first step's relation.

    Each worker receives the plan, its shard's ``(ordinal, values)``
    slice (already narrowed to the probe's matches when the first step
    is a hash probe), and a projection of only the relations the plan
    *suffix* touches — never the whole database.  Workers return
    ordinal-tagged bindings; merging by ordinal reconstructs the serial
    executor's output order exactly, because the seed ordinals are
    globally unique and each belongs to exactly one shard.
    """
    from concurrent.futures import ProcessPoolExecutor

    step = plan.steps[0]
    instance = db.relation(step.atom.relation)
    probe = _constant_probe(step)
    if probe is None:
        return
    common = pickle.dumps((
        plan,
        db.schema,
        db.project_for_plan(plan, 1),
        _suffix_virtual_rows(plan, 1, virtual),
    ))
    payloads = []
    for shard in range(instance.shard_count):
        pairs = instance.shard_lookup_pairs(
            shard, step.lookup_positions, probe
        )
        if pairs:
            payloads.append(pickle.dumps(pairs))
    if not payloads:
        return
    SHIPPING.note(
        len(common) * len(payloads) + sum(len(p) for p in payloads),
        len(payloads),
    )
    workers = min(parallelism, len(payloads))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_execute_storage_shard, common, payload)
            for payload in payloads
        ]
        try:
            results = [future.result() for future in futures]
        finally:
            for future in futures:
                future.cancel()
        merged: Iterator[tuple[int, Binding]] = heapq.merge(
            *results, key=itemgetter(0)
        )
        if _sanitizer._active:
            # Non-strict: every output binding carries its *seed's*
            # ordinal, so one seed's derivations share one ordinal.
            merged = _sanitizer.monotonic_stream(
                "storage-shard process merge",
                merged,
                itemgetter(0),
                strict=False,
            )
        for __, binding in merged:
            yield binding


def execute_plan_parallel(
    plan: QueryPlan,
    db: Database,
    virtual: VirtualRelations | None = None,
    parallelism: int = 2,
    use_processes: bool = False,
    min_partition: int = DEFAULT_MIN_PARTITION,
    shipping: str = "plan",
) -> Iterator[Binding]:
    """Stream a plan's bindings using up to ``parallelism`` workers.

    Produces exactly the binding sequence of
    :func:`~repro.cq.executor.execute_plan` — same multiset, same order
    (binding shards are contiguous and merged in shard order; storage
    shards merge on insertion ordinals).  When the first step is a scan
    or hash probe of a storage-sharded base relation, seeding fans out
    across the relation's shards (threads probe shards concurrently;
    process workers receive only their shard's slice).  Falls back to
    serial execution whenever sharding cannot pay for itself;
    ``min_partition`` is the first-step binding count below which that
    fallback triggers (tests lower it to force the parallel path on
    small data).  ``shipping`` selects the process-pool payload shape
    (``"plan"``: suffix-projected relations; ``"world"``: the legacy
    whole-database pickle, kept as a benchmark baseline).
    """
    if plan.empty:
        return
    if parallelism <= 1 or len(plan.steps) < 2:
        yield from execute_plan(plan, db, virtual)
        return
    indexed = IndexedVirtualRelations.wrap(virtual)
    step0 = (
        _storage_seed_step(plan, db, min_partition)
        if shipping != "world"
        else None
    )
    if step0 is not None:
        if use_processes:
            yield from _run_storage_process_shards(
                plan, db, indexed, parallelism
            )
            return
        check = _comparison_checker(plan.query.name, set())
        seeds = [
            binding
            for __, binding in _seed_across_shards(
                step0,
                db,
                db.relation(step0.atom.relation),
                check,
                parallelism,
            )
        ]
    else:
        check = _comparison_checker(plan.query.name, set())
        first = build_operator_chain(
            SingletonBindingOperator(), plan.steps[:1], db, indexed, check
        )
        seeds = list(first)
    yield from execute_seeded_parallel(
        plan,
        1,
        seeds,
        db,
        indexed,
        parallelism=parallelism,
        use_processes=use_processes,
        min_partition=min_partition,
        shipping=shipping,
    )


def execute_seeded_parallel(
    plan: QueryPlan,
    from_step: int,
    seeds: Sequence[Binding],
    db: Database,
    virtual: VirtualRelations | None = None,
    parallelism: int = 1,
    use_processes: bool = False,
    min_partition: int = DEFAULT_MIN_PARTITION,
    shipping: str = "plan",
) -> Iterator[Binding]:
    """Stream ``plan.steps[from_step:]`` over the given seed bindings.

    This is the shard-and-merge driver with the seed materialization
    factored out: :func:`execute_plan_parallel` materializes the first
    step itself, while the sub-plan memo (:mod:`repro.cq.subplan`)
    materializes a shared prefix *once* and fans the suffix of each
    consumer out from here.  Output order is the serial executor's
    exactly — seeds are taken in order, shards are contiguous runs, and
    the merge releases them in shard order — and the serial fallback
    (``parallelism <= 1``, no suffix steps, or fewer seeds than
    ``min_partition``) iterates the same chain inline.
    """
    indexed = IndexedVirtualRelations.wrap(virtual)
    rest = plan.steps[from_step:]
    if parallelism <= 1 or not rest or len(seeds) < max(2, min_partition):
        yield from execute_plan_seeded(plan, db, indexed, seeds, from_step)
        return
    check = _comparison_checker(plan.query.name, set())
    shards = partition_bindings(seeds, parallelism)
    if use_processes:
        yield from _run_process_shards(
            plan, from_step, db, indexed, shards, shipping
        )
        return
    _warm_access_paths(rest, db, indexed)
    yield from _run_thread_shards(shards, rest, db, indexed, check)
