"""Shard-and-merge parallel execution of query plans.

The iterator operators of :mod:`repro.cq.executor` are pull-based and
stateless, so a plan's step pipeline can run over any partition of its
input bindings.  This module exploits that: it materializes the *first*
join step's bindings, partitions them into balanced contiguous shards
(:func:`repro.relational.statistics.shard_cardinalities` supplies the
split arithmetic), runs the remaining steps of each shard on a worker,
and streams the merged bindings back to the caller.

Partitioning the first step — rather than the queries of a batch — keeps
the sharding inside a single plan execution, so every layer above
(:func:`repro.cq.evaluation.enumerate_bindings`,
:meth:`repro.citation.generator.CitationEngine.cite_batch`,
:func:`repro.workload.runner.run_workload`, the ``cite-batch`` CLI) gets
a ``parallelism`` knob for free.

Workers are **threads** by default: they share the database's and the
materialization's hash indexes (warmed up front so workers never race to
build the same index), and the driver falls back to serial execution
whenever sharding cannot pay for itself (``parallelism <= 1``,
single-step plans, or fewer first-step bindings than ``min_partition``).
A **process pool** is available behind ``use_processes=True`` for
CPU-bound plans on interpreters where threads contend for the GIL; it
pickles the plan, database, and shard to each worker, so it only pays
off when the surviving work dwarfs the copy.  Mixed-type comparison
warnings raised inside process workers are emitted in the child and not
re-raised in the parent; thread workers warn normally.

Bindings are streamed in chunks as workers produce them, and the merge
releases chunks in shard order: since shards are contiguous runs of the
first step's bindings, the merged stream is the serial executor's
binding sequence exactly — same multiset (the property suite asserts
this) *and* same order, so upper layers behave identically at any
``parallelism``.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Iterator, Sequence
from typing import Any

from repro.cq.executor import (
    Binding,
    IndexedVirtualRelations,
    SequenceSourceOperator,
    SingletonBindingOperator,
    VirtualRelations,
    _comparison_checker,
    build_operator_chain,
    execute_plan,
    execute_plan_seeded,
)
from repro.cq.plan import JoinStep, QueryPlan
from repro.relational.database import Database
from repro.relational.statistics import shard_cardinalities

#: Below this many first-step bindings, sharding overhead (threads,
#: queues) cannot win; the driver runs the plan suffix serially instead.
DEFAULT_MIN_PARTITION = 64

#: Bindings per queue message: workers batch results so the merge queue
#: costs one put/get per chunk, not per binding.
_CHUNK_BINDINGS = 256


def partition_bindings(
    seeds: Sequence[Binding], shards: int
) -> list[Sequence[Binding]]:
    """Split ``seeds`` into at most ``shards`` balanced contiguous runs.

    Empty runs (when ``len(seeds) < shards``) are dropped, so every
    returned shard has work.
    """
    partitions: list[Sequence[Binding]] = []
    start = 0
    for size in shard_cardinalities(len(seeds), shards):
        if size:
            partitions.append(seeds[start:start + size])
        start += size
    return partitions


def _warm_access_paths(
    steps: Sequence[JoinStep],
    db: Database,
    virtual: IndexedVirtualRelations | None,
) -> None:
    """Build every hash index the steps will probe before fanning out.

    Index construction is lazy on first probe; warming serially avoids N
    workers each building (and all but one discarding) the same index.
    """
    for step in steps:
        if step.range_position is not None and step.lookup_positions:
            # Composite path: hash buckets sorted on the ordered
            # position (the plain hash index below stays warmed too —
            # it is the fallback for degraded buckets).
            if step.virtual:
                assert virtual is not None
                virtual.ensure_composite_index(
                    step.atom.relation,
                    step.lookup_positions,
                    step.range_position,
                )
            else:
                db.relation(step.atom.relation).ensure_composite_index(
                    step.lookup_positions, step.range_position
                )
        elif step.range_position is not None:
            if step.virtual:
                assert virtual is not None
                virtual.ensure_sorted_index(
                    step.atom.relation, step.range_position
                )
            else:
                db.relation(step.atom.relation).ensure_sorted_index(
                    step.range_position
                )
        if not step.lookup_positions:
            continue
        if step.virtual:
            assert virtual is not None
            virtual.ensure_index(step.atom.relation, step.lookup_positions)
        else:
            db.relation(step.atom.relation).ensure_index(
                step.lookup_positions
            )


def _run_thread_shards(
    shards: list[Sequence[Binding]],
    rest: Sequence[JoinStep],
    db: Database,
    virtual: IndexedVirtualRelations | None,
    check: Any,
) -> Iterator[Binding]:
    """One thread per shard; bindings stream back through a merge queue.

    Workers emit chunks as they go, but the merge releases them *in shard
    order*: because shards are contiguous runs of the first step's
    bindings, the merged stream is exactly the serial executor's order,
    so parallelism never changes downstream iteration order (citation
    record order, first-derivation dedup order, ...).
    """
    results: queue.SimpleQueue = queue.SimpleQueue()
    cancelled = threading.Event()

    def work(index: int, shard: Sequence[Binding]) -> None:
        chunk: list[Binding] = []
        try:
            operator = build_operator_chain(
                SequenceSourceOperator(shard), rest, db, virtual, check
            )
            for binding in operator:
                if cancelled.is_set():
                    # The consumer abandoned the iterator; stop burning
                    # CPU and filling the (unbounded) merge queue.
                    return
                chunk.append(binding)
                if len(chunk) >= _CHUNK_BINDINGS:
                    results.put(("chunk", index, chunk))
                    chunk = []
            results.put(("done", index, chunk))
        except BaseException as exc:  # propagated to the consumer below
            results.put(("error", index, exc))

    workers = [
        threading.Thread(target=work, args=(index, shard), daemon=True)
        for index, shard in enumerate(shards)
    ]
    for worker in workers:
        worker.start()
    buffered: list[list[list[Binding]]] = [[] for __ in shards]
    finished: set[int] = set()
    failure: BaseException | None = None
    next_shard = 0
    try:
        while next_shard < len(shards):
            kind, index, payload = results.get()
            if kind == "error":
                failure = failure or payload
                finished.add(index)
            else:
                if kind == "done":
                    finished.add(index)
                buffered[index].append(payload)
            if failure is not None:
                if len(finished) == len(shards):
                    break
                continue
            while next_shard < len(shards):
                chunks = buffered[next_shard]
                while chunks:
                    yield from chunks.pop(0)
                if next_shard in finished:
                    next_shard += 1
                else:
                    break
    finally:
        # Runs on normal completion, worker failure, and generator close
        # (the consumer stopped early): tell workers to stop, then wait —
        # they check the flag per binding, so this is prompt.
        cancelled.set()
        for worker in workers:
            worker.join()
    if failure is not None:
        raise failure


def _execute_shard(
    payload: tuple[
        QueryPlan,
        int,
        Database,
        dict[str, list[tuple[Any, ...]]] | None,
        Sequence[Binding],
    ],
) -> list[Binding]:
    """Process-pool worker: run the plan suffix over one pickled shard."""
    plan, from_step, db, virtual_rows, shard = payload
    virtual = (
        IndexedVirtualRelations(virtual_rows)
        if virtual_rows is not None
        else None
    )
    check = _comparison_checker(plan.query.name, set())
    operator = build_operator_chain(
        SequenceSourceOperator(shard), plan.steps[from_step:], db, virtual,
        check
    )
    return list(operator)


def _run_process_shards(
    plan: QueryPlan,
    from_step: int,
    db: Database,
    virtual: IndexedVirtualRelations | None,
    shards: list[Sequence[Binding]],
) -> Iterator[Binding]:
    """One process per shard; each receives a pickled copy of the world."""
    from concurrent.futures import ProcessPoolExecutor

    virtual_rows = (
        {name: list(virtual[name]) for name in virtual}
        if virtual is not None
        else None
    )
    with ProcessPoolExecutor(max_workers=len(shards)) as pool:
        futures = [
            pool.submit(
                _execute_shard, (plan, from_step, db, virtual_rows, shard)
            )
            for shard in shards
        ]
        try:
            for future in futures:
                yield from future.result()
        finally:
            # Runs on normal completion and on generator close (the
            # consumer abandoned the stream): cancel every shard that
            # has not started so pool shutdown only waits for the ones
            # already running.
            for future in futures:
                future.cancel()


def execute_plan_parallel(
    plan: QueryPlan,
    db: Database,
    virtual: VirtualRelations | None = None,
    parallelism: int = 2,
    use_processes: bool = False,
    min_partition: int = DEFAULT_MIN_PARTITION,
) -> Iterator[Binding]:
    """Stream a plan's bindings using up to ``parallelism`` workers.

    Produces exactly the binding sequence of
    :func:`~repro.cq.executor.execute_plan` — same multiset, same order
    (shards are contiguous and merged in shard order).  Falls back to
    serial execution whenever sharding cannot pay for itself;
    ``min_partition`` is the first-step binding count below which that
    fallback triggers (tests lower it to force the parallel path on
    small data).
    """
    if plan.empty:
        return
    if parallelism <= 1 or len(plan.steps) < 2:
        yield from execute_plan(plan, db, virtual)
        return
    indexed = IndexedVirtualRelations.wrap(virtual)
    check = _comparison_checker(plan.query.name, set())
    first = build_operator_chain(
        SingletonBindingOperator(), plan.steps[:1], db, indexed, check
    )
    seeds = list(first)
    yield from execute_seeded_parallel(
        plan,
        1,
        seeds,
        db,
        indexed,
        parallelism=parallelism,
        use_processes=use_processes,
        min_partition=min_partition,
    )


def execute_seeded_parallel(
    plan: QueryPlan,
    from_step: int,
    seeds: Sequence[Binding],
    db: Database,
    virtual: VirtualRelations | None = None,
    parallelism: int = 1,
    use_processes: bool = False,
    min_partition: int = DEFAULT_MIN_PARTITION,
) -> Iterator[Binding]:
    """Stream ``plan.steps[from_step:]`` over the given seed bindings.

    This is the shard-and-merge driver with the seed materialization
    factored out: :func:`execute_plan_parallel` materializes the first
    step itself, while the sub-plan memo (:mod:`repro.cq.subplan`)
    materializes a shared prefix *once* and fans the suffix of each
    consumer out from here.  Output order is the serial executor's
    exactly — seeds are taken in order, shards are contiguous runs, and
    the merge releases them in shard order — and the serial fallback
    (``parallelism <= 1``, no suffix steps, or fewer seeds than
    ``min_partition``) iterates the same chain inline.
    """
    indexed = IndexedVirtualRelations.wrap(virtual)
    rest = plan.steps[from_step:]
    if parallelism <= 1 or not rest or len(seeds) < max(2, min_partition):
        yield from execute_plan_seeded(plan, db, indexed, seeds, from_step)
        return
    check = _comparison_checker(plan.query.name, set())
    shards = partition_bindings(seeds, parallelism)
    if use_processes:
        yield from _run_process_shards(plan, from_step, db, indexed, shards)
        return
    _warm_access_paths(rest, db, indexed)
    yield from _run_thread_shards(shards, rest, db, indexed, check)
