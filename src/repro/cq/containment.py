"""Containment and equivalence of conjunctive queries.

Classical result (Chandra & Merlin): for pure CQs, ``Q1 ⊆ Q2`` iff there is
a homomorphism from ``Q2`` to ``Q1`` mapping head to head.  With comparison
predicates the test becomes: a homomorphism ``h`` such that every comparison
of ``Q2`` is *entailed* (after applying ``h``) by the comparisons of ``Q1``.

Entailment is decided by :class:`ComparisonClosure`, a fixpoint closure over
``=, !=, <, <=`` facts (transitivity, equality merging, constant
evaluation).  The resulting containment test is **sound** (a ``True`` answer
is always correct) and complete for the equality-only fragment used by the
paper's examples; for dense-order corner cases involving inequalities it may
return ``False`` conservatively.  This is the standard trade-off and is
documented in DESIGN.md.

λ-parameterized queries are compared by instantiating both sides with the
same fresh constants (parameters are positional, per Def 2.1).
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Term, Variable
from repro.errors import ParameterError
from repro.relational.expressions import ComparisonOp

Homomorphism = dict[Variable, Term]


class ComparisonClosure:
    """Entailment closure of a set of comparison atoms.

    Maintains a union-find over terms for equalities and transitive
    ``<`` / ``<=`` / ``!=`` relations over class representatives, with
    constant comparisons folded in.  Exposes :attr:`satisfiable` and
    :meth:`entails`.
    """

    def __init__(self, comparisons: tuple[ComparisonAtom, ...] = ()) -> None:
        self._parent: dict[Term, Term] = {}
        self._lt: set[tuple[Term, Term]] = set()
        self._le: set[tuple[Term, Term]] = set()
        self._ne: set[frozenset[Term]] = set()
        self._atoms: tuple[ComparisonAtom, ...] = tuple(comparisons)
        self.satisfiable = True
        for comparison in comparisons:
            self.add(comparison)
        self._close()

    # -- union-find -----------------------------------------------------------

    def _find(self, term: Term) -> Term:
        root = term
        while root in self._parent:
            root = self._parent[root]
        # Path compression: repoint every node on the chain at the root.
        while term in self._parent and term != root:
            next_term = self._parent[term]
            self._parent[term] = root
            term = next_term
        return root

    def _union(self, left: Term, right: Term) -> None:
        left_root, right_root = self._find(left), self._find(right)
        if left_root == right_root:
            return
        # Prefer constants as class representatives.
        if isinstance(left_root, Constant) and isinstance(right_root, Constant):
            if left_root.value != right_root.value:
                self.satisfiable = False
            # Merge anyway to keep the structure consistent.
            self._parent[right_root] = left_root
        elif isinstance(left_root, Constant):
            self._parent[right_root] = left_root
        else:
            self._parent[left_root] = right_root

    # -- construction ----------------------------------------------------------

    def add(self, comparison: ComparisonAtom) -> None:
        """Record one comparison fact (closure is recomputed lazily)."""
        left, op, right = comparison.left, comparison.op, comparison.right
        if op is ComparisonOp.EQ:
            self._union(left, right)
        elif op is ComparisonOp.NE:
            self._ne.add(frozenset((left, right)))
        elif op is ComparisonOp.LT:
            self._lt.add((left, right))
        elif op is ComparisonOp.LE:
            self._le.add((left, right))
        elif op is ComparisonOp.GT:
            self._lt.add((right, left))
        elif op is ComparisonOp.GE:
            self._le.add((right, left))

    def _canonical_pairs(
        self, pairs: set[tuple[Term, Term]]
    ) -> set[tuple[Term, Term]]:
        return {(self._find(a), self._find(b)) for a, b in pairs}

    def _close(self) -> None:
        """Compute the transitive/equality closure to fixpoint."""
        changed = True
        while changed:
            changed = False
            lt = self._canonical_pairs(self._lt)
            le = self._canonical_pairs(self._le)
            ne = {frozenset(self._find(t) for t in pair) for pair in self._ne}

            # Constant-vs-constant facts derived from values.
            constants = {
                term for pair in itertools.chain(lt, le) for term in pair
                if isinstance(term, Constant)
            }
            constants.update(
                term for pair in ne for term in pair
                if isinstance(term, Constant)
            )
            for c1, c2 in itertools.combinations(sorted(
                    constants, key=repr), 2):
                fact = _constant_order(c1, c2)
                if fact == "lt" and (c1, c2) not in lt:
                    lt.add((c1, c2))
                elif fact == "gt" and (c2, c1) not in lt:
                    lt.add((c2, c1))
                if c1.value != c2.value:
                    ne.add(frozenset((c1, c2)))

            # Transitivity.
            new_lt = set(lt)
            new_le = set(le)
            for a, b in list(lt):
                for c, d in list(lt):
                    if b == c:
                        new_lt.add((a, d))
                for c, d in list(le):
                    if b == c:
                        new_lt.add((a, d))
            for a, b in list(le):
                for c, d in list(lt):
                    if b == c:
                        new_lt.add((a, d))
                for c, d in list(le):
                    if b == c:
                        new_le.add((a, d))

            # le both ways -> equality.
            for a, b in list(new_le):
                if a != b and (b, a) in new_le:
                    self._union(a, b)
                    changed = True

            # lt implies le and ne.
            for a, b in new_lt:
                new_le.add((a, b))
                if a != b:
                    ne.add(frozenset((a, b)))

            if new_lt != self._lt or new_le != self._le or ne != self._ne:
                changed = True
            self._lt, self._le, self._ne = new_lt, new_le, ne

        # Contradictions.
        for a, b in self._lt:
            if self._find(a) == self._find(b):
                self.satisfiable = False
        for pair in self._ne:
            if len({self._find(t) for t in pair}) == 1:
                self.satisfiable = False
        # A class whose representative chain merged two distinct constants
        # was already flagged in _union.

    # -- queries ---------------------------------------------------------------

    def equal(self, left: Term, right: Term) -> bool:
        """Are the two terms entailed equal?"""
        left_root, right_root = self._find(left), self._find(right)
        if left_root == right_root:
            return True
        if isinstance(left_root, Constant) and isinstance(right_root, Constant):
            return left_root.value == right_root.value
        return False

    def entails(self, comparison: ComparisonAtom) -> bool:
        """Is ``comparison`` a logical consequence of the closed facts?

        Fast paths first (ground evaluation, class equality, direct pair
        membership); otherwise decide by *refutation*: the comparison is
        entailed iff the facts plus its negation are unsatisfiable.  The
        contradiction detection only reports genuine contradictions, so
        the test is sound.  An unsatisfiable closure entails everything.
        """
        if not self.satisfiable:
            return True
        left = self._find(comparison.left)
        right = self._find(comparison.right)
        op = comparison.op
        if isinstance(left, Constant) and isinstance(right, Constant):
            try:
                return op.function(left.value, right.value)
            except TypeError:
                return False
        if op is ComparisonOp.EQ and self.equal(left, right):
            return True
        if op is ComparisonOp.LT and (left, right) in self._lt:
            return True
        if op is ComparisonOp.GT and (right, left) in self._lt:
            return True
        if op is ComparisonOp.LE and (
                (left, right) in self._le or (left, right) in self._lt
                or self.equal(left, right)):
            return True
        if op is ComparisonOp.GE and (
                (right, left) in self._le or (right, left) in self._lt
                or self.equal(left, right)):
            return True
        if op is ComparisonOp.NE and (
                frozenset((left, right)) in self._ne
                or (left, right) in self._lt
                or (right, left) in self._lt):
            return True
        if op is ComparisonOp.EQ and (
                frozenset((left, right)) in self._ne
                or (left, right) in self._lt
                or (right, left) in self._lt):
            return False  # provably different: skip the refutation test
        # Refutation: entailed iff facts + negation are contradictory.
        negated = ComparisonAtom(
            comparison.left, op.negate(), comparison.right
        )
        refutation = ComparisonClosure(self._atoms + (negated,))
        return not refutation.satisfiable


def _constant_order(c1: Constant, c2: Constant) -> str | None:
    try:
        if c1.value < c2.value:
            return "lt"
        if c2.value < c1.value:
            return "gt"
    except TypeError:
        return None
    return None


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


def normalize_query(query: ConjunctiveQuery) -> tuple[ConjunctiveQuery, bool]:
    """Propagate equalities and simplify; returns ``(query, satisfiable)``.

    - ``x = c`` substitutes the constant for the variable everywhere;
    - ``x = y`` unifies the variables (head/parameter variables are kept as
      the representative so the head shape survives);
    - ground comparisons are evaluated: true ones dropped, a false one makes
      the query unsatisfiable;
    - duplicate atoms/comparisons and trivial ``t = t`` are removed.
    """
    current = query
    protected = set(query.head_variables()) | set(query.parameters)
    while True:
        substitution: dict[Variable, Term] = {}
        for comparison in current.comparisons:
            if comparison.op is not ComparisonOp.EQ:
                continue
            left, right = comparison.left, comparison.right
            if isinstance(left, Variable) and isinstance(right, Constant):
                if left not in protected:
                    substitution[left] = right
            elif isinstance(right, Variable) and isinstance(left, Constant):
                if right not in protected:
                    substitution[right] = left
            elif isinstance(left, Variable) and isinstance(right, Variable):
                if left == right:
                    continue
                if left not in protected:
                    substitution[left] = right
                elif right not in protected:
                    substitution[right] = left
                # Both protected: keep the comparison as-is.
        if not substitution:
            break
        current = current.substitute(substitution)

    satisfiable = True
    comparisons: dict[ComparisonAtom, None] = {}
    for comparison in current.comparisons:
        if comparison.is_ground:
            if not comparison.evaluate_ground():
                satisfiable = False
            continue
        if (comparison.op is ComparisonOp.EQ
                and comparison.left == comparison.right):
            continue
        comparisons.setdefault(comparison.normalized())
    atoms = list(dict.fromkeys(current.atoms))
    normalized = ConjunctiveQuery(
        current.name, current.head, atoms, list(comparisons),
        current.parameters,
    )
    if satisfiable:
        closure = ComparisonClosure(normalized.comparisons)
        satisfiable = closure.satisfiable
    return normalized, satisfiable


# ---------------------------------------------------------------------------
# Homomorphisms
# ---------------------------------------------------------------------------


def _extend(
    mapping: Homomorphism,
    source_term: Term,
    target_term: Term,
    closure: ComparisonClosure,
) -> Homomorphism | None:
    """Try to extend ``mapping`` with ``source_term -> target_term``."""
    if isinstance(source_term, Constant):
        if isinstance(target_term, Constant):
            return mapping if source_term.value == target_term.value else None
        # A source constant may map onto a target variable only if the
        # target's comparisons pin that variable to the same constant.
        if closure.equal(target_term, source_term):
            return mapping
        return None
    existing = mapping.get(source_term)
    if existing is not None:
        if existing == target_term or closure.equal(existing, target_term):
            return mapping
        return None
    extended = dict(mapping)
    extended[source_term] = target_term
    return extended


def find_homomorphism(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    require_head: bool = True,
    seed: Mapping[Variable, Term] | None = None,
) -> Homomorphism | None:
    """Find a homomorphism from ``source`` into ``target``.

    A homomorphism maps each variable of ``source`` to a term of ``target``
    such that every relational atom of ``source`` lands on a relational atom
    of ``target``, every comparison of ``source`` is entailed by ``target``'s
    comparison closure, and (if ``require_head``) the head maps onto the
    head positionally.

    ``seed`` optionally pre-binds some variables (used for λ-parameter
    alignment).
    """
    closure = ComparisonClosure(target.comparisons)

    mapping: Homomorphism = dict(seed) if seed else {}
    if require_head:
        if len(source.head) != len(target.head):
            return None
        for source_term, target_term in zip(source.head, target.head):
            extended = _extend(mapping, source_term, target_term, closure)
            if extended is None:
                return None
            mapping = extended

    # Index target atoms by relation for candidate generation.
    by_relation: dict[str, list[RelationalAtom]] = {}
    for atom in target.atoms:
        by_relation.setdefault(atom.relation, []).append(atom)

    source_atoms = list(source.atoms)

    def atom_constrainedness(atom: RelationalAtom, bound: set[Variable]) -> int:
        return sum(1 for v in atom.variables() if v in bound) + len(
            atom.constants()
        )

    def search(
        remaining: list[RelationalAtom], mapping: Homomorphism
    ) -> Homomorphism | None:
        if not remaining:
            for comparison in source.comparisons:
                mapped = comparison.substitute(mapping)
                if mapped.is_ground:
                    if not mapped.evaluate_ground():
                        return None
                elif not closure.entails(mapped):
                    return None
            return mapping
        bound = set(mapping)
        # Most-constrained-first ordering.
        atom = max(remaining, key=lambda a: atom_constrainedness(a, bound))
        rest = [a for a in remaining if a is not atom]
        for candidate in by_relation.get(atom.relation, ()):
            if candidate.arity != atom.arity:
                continue
            extended: Homomorphism | None = mapping
            for source_term, target_term in zip(atom.terms, candidate.terms):
                extended = _extend(extended, source_term, target_term, closure)
                if extended is None:
                    break
            if extended is None:
                continue
            result = search(rest, extended)
            if result is not None:
                return result
        return None

    return search(source_atoms, mapping)


# ---------------------------------------------------------------------------
# Containment and equivalence
# ---------------------------------------------------------------------------


def _freeze_parameters(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """Instantiate both queries' λ-parameters with shared fresh constants.

    Parameters are positional (Def 2.1): the i-th parameter of one query
    corresponds to the i-th of the other.  Queries with different parameter
    counts are incomparable.
    """
    if len(q1.parameters) != len(q2.parameters):
        raise ParameterError(
            "cannot compare queries with different λ-parameter counts: "
            f"{len(q1.parameters)} vs {len(q2.parameters)}"
        )
    if not q1.parameters:
        return q1, q2
    fresh = [f"\x00param{i}\x00" for i in range(len(q1.parameters))]
    return q1.instantiate(fresh), q2.instantiate(fresh)


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Is ``Q1 ⊆ Q2`` on every database instance?

    Sound; complete for the equality-constant fragment (see module docs).
    """
    if len(q1.head) != len(q2.head):
        return False
    q1, q2 = _freeze_parameters(q1, q2)
    q1_norm, q1_sat = normalize_query(q1)
    if not q1_sat:
        return True  # the empty query is contained in everything
    q2_norm, q2_sat = normalize_query(q2)
    if not q2_sat:
        return False
    return find_homomorphism(q2_norm, q1_norm) is not None


def are_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Are the two queries equivalent (mutual containment)?"""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)
