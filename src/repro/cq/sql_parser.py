"""A SQL SELECT-FROM-WHERE front-end producing conjunctive queries.

GtoPdb users think in SQL, not Datalog; the paper's scenario ("allow users
to issue general queries against the relational database") implies a SQL
surface.  This module parses the conjunctive fragment of SQL::

    SELECT f.FName, i.Text
    FROM Family f, FamilyIntro i
    WHERE f.FID = i.FID AND f.Type = 'gpcr'

into a :class:`~repro.cq.query.ConjunctiveQuery`:

- each table reference contributes one relational atom with one variable
  per column (named ``<alias>_<column>``);
- ``col = col`` predicates unify the corresponding variables (equi-joins);
- ``col op literal`` and non-equality ``col op col`` predicates remain as
  comparison atoms, so the rewriting engine can absorb them into view
  λ-parameters exactly as in the paper's Example 2.2.

Only the conjunctive fragment is supported: a single ``SELECT``, comma
(cross) joins or ``JOIN ... ON`` with conjunctive conditions, ``WHERE``
with ``AND``.  ``OR``, subqueries, grouping and aggregation raise
:class:`~repro.errors.ParseError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Term, Variable
from repro.errors import ParseError
from repro.relational.database import Database
from repro.relational.expressions import ComparisonOp
from repro.relational.schema import Schema

_SQL_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<star>\*)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "as", "join", "on", "inner", "distinct"}

_UNSUPPORTED = {"or", "group", "order", "having", "union", "not", "left", "right",
                "outer", "limit", "exists", "in"}


@dataclass
class _Token:
    kind: str
    text: str
    position: int

    @property
    def lowered(self) -> str:
        return self.text.lower()


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _SQL_TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


@dataclass
class _ColumnRef:
    """A (possibly alias-qualified) column reference."""

    alias: str | None
    column: str
    position: int


@dataclass
class _TableRef:
    relation: str
    alias: str


class _SqlParser:
    def __init__(self, text: str, schema: Schema) -> None:
        self._tokens = _tokenize(text)
        self._index = 0
        self._schema = schema

    # -- token plumbing ------------------------------------------------------

    @property
    def _current(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._current
        self._index += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._current
        if token.kind != "ident" or token.lowered != word:
            raise ParseError(f"expected {word.upper()}, found {token.text!r}",
                             token.position)
        self._advance()

    def _at_keyword(self, *words: str) -> bool:
        token = self._current
        return token.kind == "ident" and token.lowered in words

    def _check_unsupported(self) -> None:
        token = self._current
        if token.kind == "ident" and token.lowered in _UNSUPPORTED:
            raise ParseError(
                f"unsupported SQL construct: {token.text!r} (only the "
                "conjunctive SELECT-FROM-WHERE fragment is supported)",
                token.position,
            )

    # -- grammar ------------------------------------------------------------

    def parse(self, name: str) -> ConjunctiveQuery:
        self._expect_keyword("select")
        if self._at_keyword("distinct"):
            self._advance()
        select_list = self._parse_select_list()
        self._expect_keyword("from")
        tables, join_conditions = self._parse_from_clause()
        conditions = list(join_conditions)
        if self._at_keyword("where"):
            self._advance()
            conditions.extend(self._parse_condition_list())
        self._check_unsupported()
        if self._current.kind != "eof":
            raise ParseError(
                f"unexpected trailing input: {self._current.text!r}",
                self._current.position,
            )
        return self._build_query(name, select_list, tables, conditions)

    def _parse_select_list(self) -> list[_ColumnRef]:
        columns = [self._parse_column_ref()]
        while self._current.kind == "comma":
            self._advance()
            columns.append(self._parse_column_ref())
        return columns

    def _parse_column_ref(self) -> _ColumnRef:
        self._check_unsupported()
        token = self._current
        if token.kind == "star":
            raise ParseError("SELECT * is not supported; list columns "
                             "explicitly", token.position)
        if token.kind != "ident":
            raise ParseError(f"expected a column, found {token.text!r}",
                             token.position)
        first = self._advance()
        if self._current.kind == "dot":
            self._advance()
            second = self._advance()
            if second.kind != "ident":
                raise ParseError("expected a column name after '.'",
                                 second.position)
            return _ColumnRef(first.text, second.text, first.position)
        return _ColumnRef(None, first.text, first.position)

    def _parse_from_clause(self) -> tuple[list[_TableRef], list[ComparisonAtom]]:
        tables = [self._parse_table_ref()]
        conditions: list[ComparisonAtom] = []
        while True:
            if self._current.kind == "comma":
                self._advance()
                tables.append(self._parse_table_ref())
            elif self._at_keyword("join", "inner"):
                if self._at_keyword("inner"):
                    self._advance()
                self._expect_keyword("join")
                tables.append(self._parse_table_ref())
                self._expect_keyword("on")
                # Defer condition translation until all tables are known;
                # store raw conditions, translated in _build_query.
                conditions.extend(self._parse_condition_list(stop_at_join=True))
            else:
                break
        return tables, conditions

    def _parse_table_ref(self) -> _TableRef:
        self._check_unsupported()
        token = self._current
        if token.kind != "ident":
            raise ParseError(f"expected a table name, found {token.text!r}",
                             token.position)
        relation = self._advance().text
        alias = relation
        if self._at_keyword("as"):
            self._advance()
            alias = self._advance().text
        elif (self._current.kind == "ident"
              and self._current.lowered not in _KEYWORDS
              and self._current.lowered not in _UNSUPPORTED):
            alias = self._advance().text
        return _TableRef(relation, alias)

    def _parse_condition_list(self, stop_at_join: bool = False) -> list[ComparisonAtom]:
        conditions = [self._parse_condition()]
        while self._at_keyword("and"):
            self._advance()
            conditions.append(self._parse_condition())
        return conditions

    def _parse_condition(self) -> ComparisonAtom:
        left = self._parse_operand()
        op_token = self._current
        if op_token.kind != "op":
            raise ParseError(f"expected a comparison operator, found "
                             f"{op_token.text!r}", op_token.position)
        self._advance()
        right = self._parse_operand()
        return ComparisonAtom(left, ComparisonOp.parse(op_token.text), right)

    def _parse_operand(self) -> Term:
        self._check_unsupported()
        token = self._current
        if token.kind == "string":
            self._advance()
            return Constant(token.text[1:-1])
        if token.kind == "number":
            self._advance()
            text = token.text
            return Constant(float(text) if "." in text else int(text))
        column = self._parse_column_ref()
        # Column refs become placeholder variables resolved in _build_query;
        # encode them so resolution can find them.
        return Variable(_placeholder(column))

    # -- translation ----------------------------------------------------------

    def _build_query(
        self,
        name: str,
        select_list: list[_ColumnRef],
        tables: list[_TableRef],
        conditions: list[ComparisonAtom],
    ) -> ConjunctiveQuery:
        alias_to_relation: dict[str, str] = {}
        for table in tables:
            if table.relation not in self._schema:
                raise ParseError(f"unknown table: {table.relation!r}")
            if table.alias in alias_to_relation:
                raise ParseError(f"duplicate table alias: {table.alias!r}")
            alias_to_relation[table.alias] = table.relation

        # One variable per (alias, column).
        variables: dict[tuple[str, str], Variable] = {}
        atoms: list[RelationalAtom] = []
        for table in tables:
            rel_schema = self._schema.relation(table.relation)
            terms: list[Term] = []
            for attr in rel_schema.attribute_names:
                var = Variable(f"{table.alias}_{attr}")
                variables[(table.alias, attr)] = var
                terms.append(var)
            atoms.append(RelationalAtom(table.relation, terms))

        def resolve(term: Term) -> Term:
            if isinstance(term, Variable) and term.name.startswith("\x00col:"):
                alias, column, position = _decode_placeholder(term.name)
                return self._resolve_column(
                    alias, column, position, alias_to_relation, variables
                )
            return term

        resolved_conditions = [
            ComparisonAtom(resolve(c.left), c.op, resolve(c.right))
            for c in conditions
        ]

        # Unify col = col equalities into shared variables (equi-joins).
        substitution: dict[Variable, Term] = {}
        comparisons: list[ComparisonAtom] = []
        for condition in resolved_conditions:
            left = _walk(condition.left, substitution)
            right = _walk(condition.right, substitution)
            if (condition.op is ComparisonOp.EQ
                    and isinstance(left, Variable)
                    and isinstance(right, Variable)):
                if left != right:
                    substitution[left] = right
            else:
                comparisons.append(ComparisonAtom(left, condition.op, right))

        def deep(term: Term) -> Term:
            return _walk(term, substitution)

        final_atoms = [
            RelationalAtom(atom.relation, [deep(t) for t in atom.terms])
            for atom in atoms
        ]
        final_comparisons = [
            ComparisonAtom(deep(c.left), c.op, deep(c.right))
            for c in comparisons
        ]
        head: list[Term] = []
        for column in select_list:
            var = self._resolve_column(
                column.alias, column.column, column.position,
                alias_to_relation, variables,
            )
            head.append(deep(var))
        query = ConjunctiveQuery(name, head, final_atoms, final_comparisons)
        query.check_safety()
        return query

    def _resolve_column(
        self,
        alias: str | None,
        column: str,
        position: int,
        alias_to_relation: dict[str, str],
        variables: dict[tuple[str, str], Variable],
    ) -> Variable:
        if alias is not None:
            if alias not in alias_to_relation:
                raise ParseError(f"unknown table alias: {alias!r}", position)
            key = (alias, column)
            if key not in variables:
                raise ParseError(
                    f"table {alias_to_relation[alias]!r} has no column "
                    f"{column!r}", position
                )
            return variables[key]
        matches = [key for key in variables if key[1] == column]
        if not matches:
            raise ParseError(f"unknown column: {column!r}", position)
        if len(matches) > 1:
            raise ParseError(
                f"ambiguous column {column!r}: qualify it with a table alias",
                position,
            )
        return variables[matches[0]]


def _placeholder(column: _ColumnRef) -> str:
    return f"\x00col:{column.alias or ''}:{column.column}:{column.position}"


def _decode_placeholder(name: str) -> tuple[str | None, str, int]:
    __, alias, column, position = name.split(":")
    return (alias or None), column, int(position)


def _walk(term: Term, substitution: dict[Variable, Term]) -> Term:
    """Follow a substitution chain to its representative."""
    while isinstance(term, Variable) and term in substitution:
        term = substitution[term]
    return term


def parse_sql(
    text: str, schema: Schema | Database, name: str = "Q"
) -> ConjunctiveQuery:
    """Parse a conjunctive ``SELECT`` statement into a CQ.

    Parameters
    ----------
    text:
        The SQL text.
    schema:
        The database schema (or a :class:`Database`, whose schema is used)
        needed to expand table columns into positional variables.
    name:
        Head predicate name for the resulting query.
    """
    if isinstance(schema, Database):
        schema = schema.schema
    return _SqlParser(text, schema).parse(name)
