"""Plan execution with iterator-style operators.

This is stage three of the **statistics → logical plan → executor**
pipeline: it takes a :class:`~repro.cq.plan.QueryPlan` and streams the
satisfying bindings.  Each :class:`~repro.cq.plan.JoinStep` becomes an
:class:`IndexJoinOperator` pulling bindings from its upstream operator,
probing the step's access path, and emitting extended bindings — the
pipelined (non-blocking) shape of a classic iterator/Volcano executor,
replacing the recursive closure the old interpreter used.

Virtual relations (materialized view instances used while evaluating
rewritings) are served through :class:`IndexedVirtualRelations`, which
validates arity once and builds hash indexes per bound-position set —
the old evaluator re-scanned the whole extension and re-checked arity on
every probe.  Ordered access paths (range comparisons pushed by the
planner's interval closure) probe sorted secondary indexes via bisect,
and composite access paths (equality + range pushed onto one step)
probe hash indexes whose buckets are kept sorted for in-bucket bisect —
on base relations and virtual relations alike, degrading to a hash
probe or scan plus residual re-checks on mixed-type columns/buckets.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Iterator, Mapping, Sequence
from typing import Any

from repro.cq.atoms import ComparisonAtom
from repro.cq.plan import JoinStep, QueryPlan, _content_token
from repro.cq.terms import Constant, Variable
from repro.errors import MixedTypeComparisonWarning, QueryError
from repro.relational.database import (
    CompositeIndex,
    Database,
    SortedIndex,
    build_composite_index,
    build_sorted_index,
    composite_index_slice,
    sorted_index_slice,
)
from repro.relational.statistics import (
    Interval,
    RelationStatistics,
    statistics_of,
)

#: A binding maps every body variable to a concrete value.
Binding = dict[Variable, Any]

#: Rows of one virtual relation, and the mapping the caller supplies.
VirtualRows = Sequence[tuple[Any, ...]]
VirtualRelations = Mapping[str, VirtualRows]


class IndexedVirtualRelations(Mapping):
    """Virtual relations with per-position hash indexes and statistics.

    Wraps a plain ``{name: rows}`` mapping.  Arity is validated once per
    relation (not once per row per probe), statistics are computed once
    for the planner, and hash indexes over bound positions are built
    lazily and reused across probes *and* across queries — the
    :class:`~repro.citation.generator.CitationEngine` keeps one instance
    per materialization, so every rewriting of every query in a workload
    shares the same indexes.
    """

    def __init__(self, relations: VirtualRelations) -> None:
        self._relations: dict[str, VirtualRows] = dict(relations)
        self._validated_arity: dict[str, int] = {}
        self._stats: dict[str, RelationStatistics] = {}
        self._indexes: dict[
            tuple[str, tuple[int, ...]],
            dict[tuple[Any, ...], list[tuple[Any, ...]]],
        ] = {}
        # Sorted secondary indexes for range probes; a cached ``None``
        # records a mixed-type (unsortable) column.
        self._sorted: dict[tuple[str, int], SortedIndex | None] = {}
        # Composite indexes for combined equality+range probes, keyed by
        # (name, hash positions, ordered position); buckets degrade
        # individually on mixed-type order keys.
        self._composite: dict[
            tuple[str, tuple[int, ...], int], CompositeIndex
        ] = {}
        # Content fingerprints served to the plan cache (see
        # QueryPlanner._virtual_fingerprint); rows are immutable for the
        # lifetime of a wrapper, so each is computed at most once.
        self._tokens: dict[str, tuple] = {}

    @classmethod
    def wrap(
        cls, virtual: VirtualRelations | None
    ) -> "IndexedVirtualRelations | None":
        """Adopt a caller-supplied mapping (idempotent, None-preserving)."""
        if virtual is None or isinstance(virtual, cls):
            return virtual
        return cls(virtual)

    # -- Mapping protocol (legacy callers see a plain mapping) ---------------

    def __getitem__(self, name: str) -> VirtualRows:
        return self._relations[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    # -- planner/executor services -------------------------------------------

    def validate_arity(self, name: str, arity: int) -> None:
        """Check every row once; subsequent calls are O(1)."""
        known = self._validated_arity.get(name)
        if known == arity:
            return
        for values in self._relations[name]:
            if len(values) != arity:
                raise QueryError(
                    f"virtual relation {name!r} arity mismatch"
                )
        self._validated_arity[name] = arity

    def statistics_for(self, name: str, arity: int) -> RelationStatistics:
        """Statistics for the planner's cost model (computed once)."""
        self.validate_arity(name, arity)
        stats = self._stats.get(name)
        if stats is None:
            stats = statistics_of(self._relations[name], arity)
            self._stats[name] = stats
        return stats

    def ensure_index(self, name: str, positions: tuple[int, ...]) -> None:
        """Build the hash index on ``positions`` of ``name`` now.

        :meth:`lookup` builds indexes lazily; the parallel executor warms
        them before fanning out so shard workers never race to build the
        same one.
        """
        key = (name, positions)
        if not positions or key in self._indexes:
            return
        index: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
        for row in self._relations[name]:
            index.setdefault(tuple(row[i] for i in positions), []).append(row)
        self._indexes[key] = index

    def lookup(
        self,
        name: str,
        positions: tuple[int, ...],
        values: tuple[Any, ...],
    ) -> Sequence[tuple[Any, ...]]:
        """Rows of ``name`` whose projection on ``positions`` is ``values``."""
        if not positions:
            return self._relations[name]
        self.ensure_index(name, positions)
        return self._indexes[name, positions].get(values, ())

    def ensure_sorted_index(
        self, name: str, position: int
    ) -> SortedIndex | None:
        """Build (and cache) the sorted index on one column now.

        Returns the index, or ``None`` (also cached) when the column
        mixes incomparable types; like :meth:`ensure_index`, the parallel
        executor warms these before fanning out.
        """
        key = (name, position)
        if key not in self._sorted:
            self._sorted[key] = build_sorted_index(
                self._relations[name], lambda row: row[position]
            )
        return self._sorted[key]

    def range_lookup(
        self, name: str, position: int, interval: Interval
    ) -> Sequence[tuple[Any, ...]] | None:
        """Rows of ``name`` with ``position`` inside ``interval``.

        ``None`` means the ordered path cannot serve the probe
        (mixed-type column or incomparable bounds); the executor then
        falls back to a scan and lets the residual re-checks filter.
        """
        index = self.ensure_sorted_index(name, position)
        if index is None:
            return None
        return sorted_index_slice(index, interval)

    def ensure_composite_index(
        self, name: str, positions: tuple[int, ...], order_position: int
    ) -> CompositeIndex:
        """Build (and cache) one composite index now.

        Like :meth:`ensure_index`, the parallel executor warms these
        before fanning out so shard workers never race to build one.
        """
        key = (name, positions, order_position)
        index = self._composite.get(key)
        if index is None:
            index = build_composite_index(
                self._relations[name],
                lambda row: tuple(row[i] for i in positions),
                lambda row: row[order_position],
            )
            self._composite[key] = index
        return index

    def composite_lookup(
        self,
        name: str,
        positions: tuple[int, ...],
        values: tuple[Any, ...],
        order_position: int,
        interval: Interval,
    ) -> Sequence[tuple[Any, ...]] | None:
        """Rows of ``name`` matching the hash probe with ``order_position``
        inside ``interval`` — one hash lookup plus one bisect.

        ``None`` means the composite path cannot serve the probe
        (mixed-type bucket or incomparable bounds); the executor then
        falls back to the plain hash index plus residual re-checks.
        """
        index = self.ensure_composite_index(name, positions, order_position)
        return composite_index_slice(index, values, interval)

    def content_token(self, name: str) -> tuple:
        """Cached content fingerprint of one relation for the plan cache."""
        token = self._tokens.get(name)
        if token is None:
            token = _content_token(self._relations[name])
            self._tokens[name] = token
        return token


def _comparison_checker(
    query_name: str, warned: set[ComparisonAtom]
) -> Callable[[ComparisonAtom, Binding], bool]:
    """A comparison evaluator that warns (once per query execution) on
    mixed-type comparisons instead of silently returning False."""

    def check(comparison: ComparisonAtom, binding: Binding) -> bool:
        left = comparison.left
        right = comparison.right
        left_value = left.value if isinstance(left, Constant) else binding[left]
        right_value = (
            right.value if isinstance(right, Constant) else binding[right]
        )
        try:
            return comparison.op.function(left_value, right_value)
        except TypeError:
            if comparison not in warned:
                warned.add(comparison)
                warnings.warn(
                    MixedTypeComparisonWarning(
                        query_name,
                        repr(comparison),
                        type(left_value).__name__,
                        type(right_value).__name__,
                    ),
                    stacklevel=2,
                )
            return False

    return check


class SingletonBindingOperator:
    """The plan's source: one empty binding."""

    def __iter__(self) -> Iterator[Binding]:
        yield {}


class SequenceSourceOperator:
    """A source replaying a fixed sequence of bindings.

    The parallel executor (:mod:`repro.cq.parallel`) materializes the
    first step's bindings, partitions them into shards, and runs the
    remaining steps of each shard over one of these sources.
    """

    def __init__(self, bindings: Sequence[Binding]) -> None:
        self.bindings = bindings

    def __iter__(self) -> Iterator[Binding]:
        return iter(self.bindings)


class OrdinalSourceOperator:
    """A source replaying ``(ordinal, binding)`` pairs, tracking the
    ordinal of the most recently emitted seed.

    The operator chain is pipelined depth-first: everything an
    :class:`IndexJoinOperator` stack yields between two pulls from its
    source derives from the last pulled seed.  The shard-parallel
    executor therefore reads :attr:`current` after each downstream
    binding to tag it with its seed's global insertion ordinal, which is
    what lets per-shard result streams merge back into the exact serial
    order.
    """

    def __init__(self, pairs: Sequence[tuple[int, Binding]]) -> None:
        self.pairs = pairs
        self.current: int | None = None

    def __iter__(self) -> Iterator[Binding]:
        for ordinal, binding in self.pairs:
            self.current = ordinal
            yield binding


def seed_bindings_from_pairs(
    step: JoinStep,
    pairs: Sequence[tuple[int, tuple[Any, ...]]],
    check: Callable[[ComparisonAtom, Binding], bool],
) -> list[tuple[int, Binding]]:
    """First-step bindings from ``(ordinal, values)`` rows of the step's
    relation, keeping each binding's source ordinal.

    Mirrors :class:`IndexJoinOperator` for the plan's first step (whose
    upstream is the single empty binding): the rows must already match
    the step's probe — shard scans and shard index probes guarantee that
    — so only the residual repeated-variable checks and the comparisons
    scheduled at the step remain.  The NaN-probe guard is the caller's
    job (a first-step probe is all constants, so it is decided once, not
    per row).
    """
    introduces = step.introduces
    equal_positions = step.equal_positions
    comparisons = step.comparisons
    seeds: list[tuple[int, Binding]] = []
    for ordinal, values in pairs:
        if any(values[i] != values[j] for i, j in equal_positions):
            continue
        binding = {var: values[position] for var, position in introduces}
        if all(check(c, binding) for c in comparisons):
            seeds.append((ordinal, binding))
    return seeds


class IndexJoinOperator:
    """One join step as a pulling iterator.

    For every upstream binding, probes the step's access path (hash index
    on the bound positions), applies the residual repeated-variable
    checks, extends the binding with the newly introduced variables, and
    filters through the comparisons scheduled at this step.
    """

    def __init__(
        self,
        source: Any,
        step: JoinStep,
        rows_for: Callable[[tuple[Any, ...]], Sequence[tuple[Any, ...]]],
        check: Callable[[ComparisonAtom, Binding], bool],
    ) -> None:
        self.source = source
        self.step = step
        self.rows_for = rows_for
        self.check = check

    def __iter__(self) -> Iterator[Binding]:
        step = self.step
        rows_for = self.rows_for
        check = self.check
        lookup_terms = step.lookup_terms
        introduces = step.introduces
        equal_positions = step.equal_positions
        comparisons = step.comparisons
        for binding in self.source:
            probe = tuple(
                term.value if isinstance(term, Constant) else binding[term]
                for term in lookup_terms
            )
            if any(value != value for value in probe):
                # A NaN probe value ==-matches no row, but a hash bucket
                # would match it by *identity* (same NaN object as key) —
                # and a repeat of an already-bound variable has no
                # residual re-check to reject the row.  Skip the probe:
                # the reference evaluator's == join finds nothing here.
                continue
            for row in rows_for(probe):
                if any(row[i] != row[j] for i, j in equal_positions):
                    continue
                extension = dict(binding)
                for var, position in introduces:
                    extension[var] = row[position]
                if all(check(c, extension) for c in comparisons):
                    yield extension


def _row_source(
    step: JoinStep,
    db: Database,
    virtual: IndexedVirtualRelations | None,
) -> Callable[[tuple[Any, ...]], Sequence[tuple[Any, ...]]]:
    """Bind a step's access path to concrete storage.

    Ordered access paths (``range_position``) bisect the sorted
    secondary index, and composite access paths (``range_position``
    alongside ``lookup_positions``) bisect inside the matching hash
    bucket of a composite index; when an index cannot serve the probe
    (mixed-type column or bucket, incomparable bounds) they degrade to
    the hash probe or scan the planner would otherwise have emitted —
    the step's residual comparisons re-check every range predicate, so
    the fallback only costs time, never correctness, and genuinely mixed
    comparisons surface the usual :class:`MixedTypeComparisonWarning`
    from the residual filter.
    """
    positions = step.lookup_positions
    range_position = step.range_position
    range_interval = step.range_interval
    # Two storage adapters (virtual rows are plain tuples, base rows are
    # Row objects unwrapped to their values), one shared probe shape:
    # ``hash_rows`` is the plain hash probe / scan, ``narrowed_rows`` is
    # the ordered or composite narrowing returning ``None`` when the
    # index cannot serve the probe.
    if step.virtual:
        assert virtual is not None
        name = step.atom.relation
        virtual.validate_arity(name, step.atom.arity)

        def hash_rows(values: tuple[Any, ...]) -> Sequence[tuple[Any, ...]]:
            return virtual.lookup(name, positions, values)

        def narrowed_rows(
            values: tuple[Any, ...]
        ) -> Sequence[tuple[Any, ...]] | None:
            if positions:
                return virtual.composite_lookup(
                    name, positions, values, range_position, range_interval
                )
            return virtual.range_lookup(name, range_position, range_interval)

    else:
        instance = db.relation(step.atom.relation)

        def hash_rows(values: tuple[Any, ...]) -> list[tuple[Any, ...]]:
            return [row.values for row in instance.lookup(positions, values)]

        def narrowed_rows(
            values: tuple[Any, ...]
        ) -> list[tuple[Any, ...]] | None:
            if positions:
                rows = instance.composite_lookup(
                    positions, values, range_position, range_interval
                )
            else:
                rows = instance.range_lookup(range_position, range_interval)
            if rows is None:
                return None
            return [row.values for row in rows]

    if range_position is None:
        return hash_rows

    def ordered_rows(values: tuple[Any, ...]) -> Sequence[tuple[Any, ...]]:
        rows = narrowed_rows(values)
        if rows is None:
            return hash_rows(values)
        return rows

    return ordered_rows


def build_operator_chain(
    source: Any,
    steps: Sequence[JoinStep],
    db: Database,
    virtual: IndexedVirtualRelations | None,
    check: Callable[[ComparisonAtom, Binding], bool],
) -> Any:
    """Stack one :class:`IndexJoinOperator` per step on top of ``source``.

    Shared by :func:`execute_plan` (whole plan over the singleton source)
    and the parallel executor (plan suffix over one shard's bindings).
    """
    operator = source
    for step in steps:
        operator = IndexJoinOperator(
            operator, step, _row_source(step, db, virtual), check
        )
    return operator


def execute_plan(
    plan: QueryPlan,
    db: Database,
    virtual: VirtualRelations | None = None,
) -> Iterator[Binding]:
    """Stream every satisfying binding of a planned query.

    The operator chain is built once per call; bindings are produced
    lazily.  ``virtual`` should be the same relations the plan was built
    against (the facades in :mod:`repro.cq.evaluation` guarantee this).
    """
    if plan.empty:
        return
    indexed = IndexedVirtualRelations.wrap(virtual)
    warned: set[ComparisonAtom] = set()
    check = _comparison_checker(plan.query.name, warned)
    yield from build_operator_chain(
        SingletonBindingOperator(), plan.steps, db, indexed, check
    )


def execute_plan_seeded(
    plan: QueryPlan,
    db: Database,
    virtual: VirtualRelations | None,
    seeds: Sequence[Binding],
    from_step: int,
) -> Iterator[Binding]:
    """Prefix-seeded execution: run only ``plan.steps[from_step:]``.

    ``seeds`` must be the binding sequence the first ``from_step`` steps
    would produce — the cross-query sub-plan memo
    (:mod:`repro.cq.subplan`) supplies memoized prefix bindings here, so
    only the suffix steps (with their residual checks) run.  Because the
    seeds are exact materializations, the output is the plain
    :func:`execute_plan` sequence — same multiset, same order.
    """
    if plan.empty:
        return
    indexed = IndexedVirtualRelations.wrap(virtual)
    check = _comparison_checker(plan.query.name, set())
    yield from build_operator_chain(
        SequenceSourceOperator(seeds), plan.steps[from_step:], db, indexed,
        check
    )
