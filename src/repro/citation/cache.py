"""Caching of rewritings across queries (Section 4: "caching and
materialization").

Rewriting enumeration is the expensive step of citation generation, but
its result depends only on the query's *structure*: two queries identical
up to variable renaming share the same rewritings modulo that renaming.
:class:`CachedRewritingEngine` canonicalizes queries (deterministic
variable renaming) and memoizes the enumeration, so repeated or
template-shaped workloads (the common case for repository front-ends) pay
the Def 2.2 search once.

Note constants are part of the structure: ``Ty = "gpcr"`` and
``Ty = "vgic"`` cache separately (their absorbed λ-values differ).  A
constant-generalizing cache is possible but changes absorbed parameters;
we keep the sound per-structure cache.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cq.canonical import canonical_key
from repro.cq.query import ConjunctiveQuery
from repro.rewriting.engine import RewritingEngine
from repro.rewriting.rewriting import Rewriting
from repro.util.lru import check_max_entries, evict_lru
from repro.views.registry import ViewRegistry

__all__ = ["CachedRewritingEngine", "cached_engine", "canonical_key"]

# ``canonical_key`` now lives in :mod:`repro.cq.canonical` so the query
# planner (repro.cq.plan) can share the α-equivalence cache key without
# importing upward into the citation layer; it is re-exported here for
# backward compatibility.

#: Default rewriting-cache bound: generous for template-shaped traffic,
#: finite under millions-of-distinct-queries traffic.
DEFAULT_MAX_ENTRIES = 4096


class CachedRewritingEngine:
    """A memoizing wrapper around :class:`RewritingEngine`.

    The cache is keyed by :func:`canonical_key`; cached rewritings are
    *not* renamed back to the caller's variable names — the citation
    pipeline only consumes the rewriting structurally (its own query's
    variables), so α-equivalent reuse is sound as long as callers use
    the rewriting's query rather than the original's variable names,
    which :class:`~repro.citation.generator.CitationEngine` does.

    The cache is LRU-bounded by ``max_entries``: under traffic with
    millions of distinct query structures the least recently used
    entries are evicted (counted in :attr:`evictions`) instead of the
    cache growing without bound.
    """

    def __init__(
        self, engine: RewritingEngine, max_entries: int = DEFAULT_MAX_ENTRIES
    ) -> None:
        self.engine = engine
        self.max_entries = check_max_entries(max_entries)
        self._cache: OrderedDict[str, list[Rewriting]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def rewrite(self, query: ConjunctiveQuery) -> list[Rewriting]:
        key = canonical_key(query)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        rewritings = self.engine.rewrite(query)
        self._cache[key] = rewritings
        self.evictions += evict_lru(self._cache, self.max_entries)
        return rewritings

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def size(self) -> int:
        return len(self._cache)


def cached_engine(
    registry: ViewRegistry, **engine_options
) -> CachedRewritingEngine:
    """Convenience constructor."""
    return CachedRewritingEngine(RewritingEngine(registry, **engine_options))
