"""Caching of rewritings across queries (Section 4: "caching and
materialization").

Rewriting enumeration is the expensive step of citation generation, but
its result depends only on the query's *structure*: two queries identical
up to variable renaming share the same rewritings modulo that renaming.
:class:`CachedRewritingEngine` canonicalizes queries (deterministic
variable renaming) and memoizes the enumeration, so repeated or
template-shaped workloads (the common case for repository front-ends) pay
the Def 2.2 search once.

Note constants are part of the structure: ``Ty = "gpcr"`` and
``Ty = "vgic"`` cache separately (their absorbed λ-values differ).  A
constant-generalizing cache is possible but changes absorbed parameters;
we keep the sound per-structure cache.
"""

from __future__ import annotations

from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Variable
from repro.rewriting.engine import RewritingEngine
from repro.rewriting.rewriting import Rewriting
from repro.views.registry import ViewRegistry


def canonical_key(query: ConjunctiveQuery) -> str:
    """A cache key invariant under variable renaming.

    Variables are renamed ``v0, v1, ...`` in order of first occurrence
    across the head, the atoms (in order), and the comparisons (sorted by
    their canonical repr after renaming is deterministic enough for our
    construction order).  Two α-equivalent queries map to the same key;
    distinct structures map to distinct keys.
    """
    renaming: dict[str, str] = {}

    def canon(term: object) -> str:
        if isinstance(term, Variable):
            if term.name not in renaming:
                renaming[term.name] = f"v{len(renaming)}"
            return renaming[term.name]
        return repr(term)

    parts = ["H:" + ",".join(canon(t) for t in query.head)]
    for atom in query.atoms:
        parts.append(
            f"A:{atom.relation}(" + ",".join(canon(t) for t in atom.terms)
            + ")"
        )
    comparison_parts = []
    for comparison in query.comparisons:
        normalized = comparison.normalized()
        comparison_parts.append(
            f"C:{canon(normalized.left)}{normalized.op}"
            f"{canon(normalized.right)}"
        )
    parts.extend(sorted(comparison_parts))
    return "|".join(parts)


class CachedRewritingEngine:
    """A memoizing wrapper around :class:`RewritingEngine`.

    The cache is keyed by :func:`canonical_key`; cached rewritings are
    *not* renamed back to the caller's variable names — the citation
    pipeline only consumes the rewriting structurally (its own query's
    variables), so α-equivalent reuse is sound as long as callers use
    the rewriting's query rather than the original's variable names,
    which :class:`~repro.citation.generator.CitationEngine` does.
    """

    def __init__(self, engine: RewritingEngine) -> None:
        self.engine = engine
        self._cache: dict[str, list[Rewriting]] = {}
        self.hits = 0
        self.misses = 0

    def rewrite(self, query: ConjunctiveQuery) -> list[Rewriting]:
        key = canonical_key(query)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        rewritings = self.engine.rewrite(query)
        self._cache[key] = rewritings
        return rewritings

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    @property
    def size(self) -> int:
        return len(self._cache)


def cached_engine(
    registry: ViewRegistry, **engine_options
) -> CachedRewritingEngine:
    """Convenience constructor."""
    return CachedRewritingEngine(RewritingEngine(registry, **engine_options))
