"""Order relations over citation monomials and polynomials (Section 3.4).

The paper encodes preference through a partial order ``≤`` over monomials
and imposes *absorption*: ``a + b = a`` whenever ``b ≤ a``, lifted to
polynomials via normal forms and to ``+R`` via ``p1 +R p2 = p1`` when
``p2 ≤ p1``.  Three concrete orders are given as examples:

- :class:`FewestViewsOrder` (Example 3.6) — ``M1 ≤ M2`` iff M1 has at
  least as many view multiplicands as M2 (fewer views preferred);
- :class:`FewestUncoveredOrder` (Example 3.7) — compare by number of
  ``C_R`` atoms (fewer base-relation accesses preferred);
- :class:`ViewInclusionOrder` (Example 3.8) — a citation from view ``V2``
  dominates one from ``V1`` when ``V2`` is included in ``V1`` ("best
  fit"); lifted to monomials by Hoare-style domination after per-monomial
  normalization.

:class:`LexicographicOrder` composes orders with decreasing priority.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.citation.polynomial import (
    CitationMonomial,
    CitationPolynomial,
    base_token_count,
    view_token_count,
)
from repro.citation.tokens import CitationToken, ViewCitationToken
from repro.semiring.polynomial import ProvenanceMonomial, ProvenancePolynomial
from repro.views.inclusion import view_strictly_finer
from repro.views.registry import ViewRegistry


class MonomialOrder:
    """A partial (pre-)order over citation monomials.

    ``leq(m1, m2)`` reads "m2 is at least as preferable as m1".
    Implementations must be reflexive and transitive; antisymmetry is not
    required (the paper's Example 3.6 order is a total preorder).
    """

    def leq(self, m1: CitationMonomial, m2: CitationMonomial) -> bool:
        raise NotImplementedError

    def strictly_less(
        self, m1: CitationMonomial, m2: CitationMonomial
    ) -> bool:
        """``m1 < m2``: dominated and not equivalent."""
        return self.leq(m1, m2) and not self.leq(m2, m1)

    def equivalent(self, m1: CitationMonomial, m2: CitationMonomial) -> bool:
        return self.leq(m1, m2) and self.leq(m2, m1)


class FewestViewsOrder(MonomialOrder):
    """Example 3.6: prefer monomials with fewer view multiplicands."""

    def leq(self, m1: CitationMonomial, m2: CitationMonomial) -> bool:
        return view_token_count(m1) >= view_token_count(m2)


class FewestUncoveredOrder(MonomialOrder):
    """Example 3.7: prefer monomials with fewer ``C_R`` atoms."""

    def leq(self, m1: CitationMonomial, m2: CitationMonomial) -> bool:
        return base_token_count(m1) >= base_token_count(m2)


class ViewInclusionOrder(MonomialOrder):
    """Example 3.8: prefer citations from included ("best fit") views.

    Token level: ``a ≤ b`` when b's view is strictly finer than a's view
    (``V_b ⊆ V_a``), or the tokens are equal.  ``C_R`` tokens are the
    least-preferred: any view token dominates them.  Monomials are first
    normalized (``a · b = a`` if ``b ≤ a``: dominated multiplicands are
    dropped), then compared by Hoare domination: ``m1 ≤ m2`` iff every
    multiplicand of m1's normal form is ≤ some multiplicand of m2's.
    """

    def __init__(self, registry: ViewRegistry) -> None:
        self._registry = registry
        # Cache pairwise strict-finer decisions (containment checks are
        # not free).  The domain is view-name pairs, so the bound only
        # matters for very large registries — but every cache is bounded.
        self._finer_cache: dict[tuple[str, str], bool] = {}
        self._finer_cache_max = 4096

    def _finer(self, finer_name: str, coarser_name: str) -> bool:
        key = (finer_name, coarser_name)
        cached = self._finer_cache.get(key)
        if cached is None:
            cached = view_strictly_finer(
                self._registry.get(finer_name),
                self._registry.get(coarser_name),
            )
            self._finer_cache[key] = cached
            if len(self._finer_cache) > self._finer_cache_max:
                self._finer_cache.pop(next(iter(self._finer_cache)))
        return cached

    def token_leq(self, a: CitationToken, b: CitationToken) -> bool:
        """Is token ``b`` at least as preferable as token ``a``?"""
        if a == b:
            return True
        a_is_view = isinstance(a, ViewCitationToken)
        b_is_view = isinstance(b, ViewCitationToken)
        if not a_is_view and b_is_view:
            return True  # any view citation beats a bare C_R
        if a_is_view and b_is_view:
            return self._finer(b.view_name, a.view_name)
        return False

    def normalize_monomial(self, monomial: CitationMonomial) -> CitationMonomial:
        """Drop multiplicands dominated by another multiplicand."""
        tokens = monomial.tokens()
        kept: list[CitationToken] = []
        for token in tokens:
            dominated = any(
                other != token and self.token_leq(token, other)
                and not self.token_leq(other, token)
                for other in tokens
            )
            if not dominated:
                kept.append(token)
        return ProvenanceMonomial(kept)

    def leq(self, m1: CitationMonomial, m2: CitationMonomial) -> bool:
        n1 = self.normalize_monomial(m1)
        n2 = self.normalize_monomial(m2)
        return all(
            any(self.token_leq(a, b) for b in n2.tokens())
            for a in n1.tokens()
        )


class LexicographicOrder(MonomialOrder):
    """Compose orders with decreasing priority.

    ``m1 ≤ m2`` iff at the first order where they are not equivalent,
    ``m1 ≤ m2`` holds (and they are ≤ when equivalent everywhere).
    """

    def __init__(self, orders: Sequence[MonomialOrder]) -> None:
        if not orders:
            raise ValueError("LexicographicOrder needs at least one order")
        self._orders = tuple(orders)

    def leq(self, m1: CitationMonomial, m2: CitationMonomial) -> bool:
        for order in self._orders:
            if order.equivalent(m1, m2):
                continue
            return order.leq(m1, m2)
        return True


# ---------------------------------------------------------------------------
# Lifting to polynomials (Section 3.4)
# ---------------------------------------------------------------------------


def normal_form(
    polynomial: CitationPolynomial, order: MonomialOrder
) -> CitationPolynomial:
    """Remove every monomial strictly dominated by another monomial.

    The paper removes ``M2`` when some ``M1 ≥ M2`` exists; taken literally
    with preorders this would remove mutually-equivalent monomials too, so
    we drop only *strictly* dominated ones and keep equivalence classes
    intact (their members carry genuinely different citations, e.g. two
    different single-view monomials under Example 3.6's count order).
    """
    monomials = polynomial.monomials()
    kept: dict[CitationMonomial, int] = {}
    for monomial in monomials:
        dominated = any(
            other != monomial and order.strictly_less(monomial, other)
            for other in monomials
        )
        if not dominated:
            kept[monomial] = polynomial.terms[monomial]
    return ProvenancePolynomial(kept)


def polynomial_leq(
    p1: CitationPolynomial,
    p2: CitationPolynomial,
    order: MonomialOrder,
) -> bool:
    """``p1 ≤ p2``: every NF-monomial of p1 is ≤ some NF-monomial of p2."""
    nf1 = normal_form(p1, order)
    nf2 = normal_form(p2, order)
    monomials2 = nf2.monomials()
    return all(
        any(order.leq(m1, m2) for m2 in monomials2)
        for m1 in nf1.monomials()
    )


def absorbing_sum(
    polynomials: Sequence[CitationPolynomial], order: MonomialOrder
) -> CitationPolynomial:
    """``+`` with absorption: union of monomials, then normal form."""
    union: dict[CitationMonomial, int] = {}
    for polynomial in polynomials:
        for monomial, coefficient in polynomial.terms.items():
            union[monomial] = union.get(monomial, 0) + coefficient
    return normal_form(ProvenancePolynomial(union), order)


def best_polynomials(
    polynomials: Sequence[CitationPolynomial], order: MonomialOrder
) -> list[CitationPolynomial]:
    """``+R`` with absorption: drop strictly dominated polynomials.

    ``p1 +R p2 = p1`` when ``p2 ≤ p1``; incomparable polynomials are all
    kept (the caller unions them afterwards).
    """
    kept: list[CitationPolynomial] = []
    for index, candidate in enumerate(polynomials):
        dominated = False
        for other_index, other in enumerate(polynomials):
            if other_index == index or other == candidate:
                continue
            if (polynomial_leq(candidate, other, order)
                    and not polynomial_leq(other, candidate, order)):
                dominated = True
                break
        if not dominated and candidate not in kept:
            kept.append(candidate)
    return kept
