"""Rendering citation results: JSON, plain text, XML, BibTeX.

Definition 2.1 leaves the output format to the citation function ("JSON or
XML"); these helpers serialize a whole
:class:`~repro.citation.generator.CitationResult` in several formats so
repositories can embed citations wherever they need them.
"""

from __future__ import annotations

import json
from typing import Any
from xml.sax.saxutils import escape

from repro.citation.generator import CitationResult, Record


def render_json(
    result: CitationResult,
    indent: int | None = 2,
    include_tuples: bool = False,
) -> str:
    """Serialize the result-set citation (optionally per-tuple) as JSON."""
    payload: dict[str, Any] = result.citation()
    if include_tuples:
        payload["tuples"] = [
            {
                "tuple": list(tc.output),
                "citations": tc.records,
                "polynomial": repr(tc.polynomial),
            }
            for tc in result.tuples.values()
        ]
    return json.dumps(payload, indent=indent, sort_keys=False, default=str)


def _record_lines(record: Record, indent: str) -> list[str]:
    lines = []
    for key, value in record.items():
        if isinstance(value, list):
            rendered = ", ".join(str(v) for v in value)
            lines.append(f"{indent}{key}: {rendered}")
        else:
            lines.append(f"{indent}{key}: {value}")
    return lines


def render_text(result: CitationResult) -> str:
    """A human-readable citation block (for terminals and logs)."""
    lines = [f"Citation for {result.query.name} "
             f"({len(result.tuples)} result tuple(s), "
             f"policy={result.policy.name})"]
    if result.database_citation:
        lines.append("Database:")
        for record in result.database_citation:
            lines.extend(_record_lines(record, "  "))
    body = [r for r in result.records if r not in result.database_citation]
    if body:
        lines.append("Sources:")
        for index, record in enumerate(body, start=1):
            lines.append(f"  [{index}]")
            lines.extend(_record_lines(record, "    "))
    return "\n".join(lines)


def _xml_value(value: Any, tag: str, indent: str) -> str:
    if isinstance(value, list):
        inner = "".join(
            _xml_value(item, "item", indent + "  ") for item in value
        )
        return f"{indent}<{tag}>{inner}\n{indent}</{tag}>\n"
    if isinstance(value, dict):
        inner = "".join(
            _xml_value(v, escape(str(k)), indent + "  ")
            for k, v in value.items()
        )
        return f"{indent}<{tag}>\n{inner}{indent}</{tag}>\n"
    return f"{indent}<{tag}>{escape(str(value))}</{tag}>\n"


def render_xml(result: CitationResult) -> str:
    """Serialize the result-set citation as XML."""
    parts = ['<?xml version="1.0" encoding="UTF-8"?>\n<citation>\n']
    parts.append(f'  <query>{escape(repr(result.query))}</query>\n')
    parts.append(f'  <policy>{escape(result.policy.name)}</policy>\n')
    for record in result.database_citation:
        parts.append(_xml_value(record, "database", "  "))
    for record in result.records:
        if record in result.database_citation:
            continue
        parts.append(_xml_value(record, "source", "  "))
    parts.append("</citation>\n")
    return "".join(parts)


def _record_authors(record: Record) -> list[str]:
    """Pull contributor/committee names out of a citation record."""
    authors: list[str] = []
    for field in ("Committee", "Contributors", "Curators"):
        value = record.get(field)
        if isinstance(value, list):
            for member in value:
                if isinstance(member, dict):
                    authors.extend(member.get("Committee", []))
                else:
                    authors.append(str(member))
        elif value:
            authors.append(str(value))
    return list(dict.fromkeys(authors))


def render_dublin_core(result: CitationResult) -> str:
    """Render the citation as Dublin Core XML (``oai_dc`` style).

    Repository harvesters (OAI-PMH) consume Dublin Core; contributors map
    to ``dc:creator``, the database URL to ``dc:identifier``, version tags
    to ``dc:date``-like coverage fields.
    """
    parts = [
        '<?xml version="1.0" encoding="UTF-8"?>\n',
        '<oai_dc:dc xmlns:oai_dc="http://www.openarchives.org/OAI/2.0/'
        'oai_dc/" xmlns:dc="http://purl.org/dc/elements/1.1/">\n',
    ]

    def element(tag: str, value: Any) -> None:
        parts.append(f"  <dc:{tag}>{escape(str(value))}</dc:{tag}>\n")

    element("type", "Dataset")
    element("description",
            f"Data extracted via query {result.query.name} under policy "
            f"{result.policy.name}")
    for record in result.database_citation:
        if "Owner" in record:
            element("publisher", record["Owner"])
        if "URL" in record:
            element("identifier", record["URL"])
        if "Version" in record:
            element("hasVersion", record["Version"])
    for record in result.records:
        if record in result.database_citation:
            continue
        for author in _record_authors(record):
            element("creator", author)
        title = record.get("Name") or record.get("Type")
        if title:
            element("source", title)
    parts.append("</oai_dc:dc>\n")
    return "".join(parts)


def render_ris(result: CitationResult) -> str:
    """Render the citation as RIS (reference-manager import format).

    One ``TY - DATA`` entry per citation record; authors in ``AU`` lines,
    database URL in ``UR``, version in ``ET`` (edition).
    """
    entries = []
    version = None
    url = None
    for record in result.database_citation:
        version = record.get("Version", version)
        url = record.get("URL", url)
    for record in result.records:
        if record in result.database_citation:
            continue
        lines = ["TY  - DATA"]
        title = record.get("Name") or record.get("Type") or \
            result.query.name
        lines.append(f"TI  - {title}")
        for author in _record_authors(record):
            lines.append(f"AU  - {author}")
        if url:
            lines.append(f"UR  - {url}")
        if version:
            lines.append(f"ET  - {version}")
        if "Text" in record:
            lines.append(f"AB  - {record['Text']}")
        lines.append("ER  - ")
        entries.append("\n".join(lines))
    if not entries:
        # Database-only citation (empty result set).
        lines = ["TY  - DATA", f"TI  - {result.query.name}"]
        if url:
            lines.append(f"UR  - {url}")
        lines.append("ER  - ")
        entries.append("\n".join(lines))
    return "\n\n".join(entries)


def _bibtex_escape(value: Any) -> str:
    return str(value).replace("{", "\\{").replace("}", "\\}")


def render_bibtex(result: CitationResult) -> str:
    """Render each citation record as a ``@misc`` BibTeX entry.

    Heuristics: ``Committee``/``Contributors`` fields become authors;
    ``Name``/``Text`` become the title; everything else lands in ``note``.
    """
    entries = []
    for index, record in enumerate(result.records, start=1):
        key = f"{result.query.name.lower()}-{index}"
        fields: list[str] = []
        authors: list[str] = []
        for field in ("Committee", "Contributors"):
            value = record.get(field)
            if isinstance(value, list):
                for member in value:
                    if isinstance(member, dict):
                        authors.extend(member.get("Committee", []))
                    else:
                        authors.append(str(member))
            elif value:
                authors.append(str(value))
        if authors:
            fields.append(f"  author = {{{' and '.join(authors)}}}")
        title = record.get("Name") or record.get("Text") or record.get("Type")
        if title:
            fields.append(f"  title = {{{_bibtex_escape(title)}}}")
        url = record.get("URL")
        if url:
            fields.append(f"  howpublished = {{\\url{{{url}}}}}")
        note_fields = {
            k: v for k, v in record.items()
            if k not in ("Committee", "Contributors", "Name", "Text", "URL")
        }
        if note_fields:
            note = "; ".join(f"{k}: {v}" for k, v in note_fields.items())
            fields.append(f"  note = {{{_bibtex_escape(note)}}}")
        entries.append(f"@misc{{{key},\n" + ",\n".join(fields) + "\n}")
    return "\n\n".join(entries)
