"""Citation policies: the database owner's choice of interpretations.

Section 3.3: "The database owner specifies a policy by which citations to
general queries are constructed by choosing an interpretation of the
combining functions ``+``, ``·``, ``+R``, and ``Agg``."  A
:class:`CitationPolicy` bundles those choices plus the optional order
relation of Section 3.4.

Three policies ship with the library:

- :func:`comprehensive_policy` — keep everything: ``+R`` unions all
  rewritings' citations, records stay side by side.  Mirrors Def 3.3's
  formal semantics (plan-independent sum over all rewritings).
- :func:`focused_policy` — ``+R`` keeps only the best rewritings under a
  lexicographic order (fewest uncovered terms, then fewest views), and
  ``·`` merges records.  This is the paper's preferred reading of
  Examples 2.2/2.3 ("we might prefer Q4 ...").
- :func:`compact_policy` — like focused, but also merges across tuples
  into a single result-set record (Example 3.4's single-citation
  outcome under idempotent ``+``/``Agg``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.citation.combiners import (
    AGG_INTERPRETATIONS,
    DOT_INTERPRETATIONS,
    PLUS_INTERPRETATIONS,
)
from repro.citation.order import (
    FewestUncoveredOrder,
    FewestViewsOrder,
    LexicographicOrder,
    MonomialOrder,
    ViewInclusionOrder,
)
from repro.errors import PolicyError
from repro.views.registry import ViewRegistry


@dataclass(frozen=True)
class CitationPolicy:
    """Interpretations of ``+``, ``·``, ``+R``, ``Agg`` plus an order.

    Attributes
    ----------
    name:
        Identifier for display and EXPERIMENTS.md bookkeeping.
    dot:
        ``·`` at record level: ``"merge"`` (join records, factoring shared
        fields) or ``"union"`` (keep side by side) — Example 3.5.
    plus:
        ``+`` across bindings: ``"union"`` (idempotent, set-like — the
        default throughout the paper's examples) or ``"counted"`` (keep
        binding multiplicities as ``"count"`` fields).
    plus_r:
        ``+R`` across rewritings: ``"union"`` (Def 3.3's formal sum) or
        ``"best"`` (order-based absorption, Section 3.4; requires
        ``order``).
    agg:
        ``Agg`` across output tuples: ``"union"`` or ``"merge"``.
    order:
        The monomial order used for absorption and ``plus_r="best"``.
    include_database_citation:
        Inject the Agg neutral element (database-level citation records)
        into every result — even for empty outputs (Def 3.4).
    """

    name: str
    dot: str = "merge"
    plus: str = "union"
    plus_r: str = "union"
    agg: str = "union"
    order: MonomialOrder | None = None
    include_database_citation: bool = True

    def __post_init__(self) -> None:
        if self.dot not in DOT_INTERPRETATIONS:
            raise PolicyError(f"unknown · interpretation: {self.dot!r}")
        if self.plus not in ("union", "counted"):
            raise PolicyError(f"unknown + interpretation: {self.plus!r}")
        if self.plus_r not in ("union", "best"):
            raise PolicyError(f"unknown +R interpretation: {self.plus_r!r}")
        if self.agg not in AGG_INTERPRETATIONS:
            raise PolicyError(f"unknown Agg interpretation: {self.agg!r}")
        if self.plus_r == "best" and self.order is None:
            raise PolicyError(
                'plus_r="best" needs an order relation (Section 3.4)'
            )

    # -- record-level combiner lookups ------------------------------------------

    @property
    def dot_combiner(self) -> Callable:
        return DOT_INTERPRETATIONS[self.dot]

    @property
    def plus_combiner(self) -> Callable:
        return PLUS_INTERPRETATIONS["union"]

    @property
    def agg_combiner(self) -> Callable:
        return AGG_INTERPRETATIONS[self.agg]

    @property
    def idempotent_plus(self) -> bool:
        """Is ``+`` idempotent under this policy (Example 3.4)?"""
        return self.plus == "union"


def default_order(registry: ViewRegistry | None = None) -> MonomialOrder:
    """The library's default preference order.

    Lexicographic: fewest uncovered base relations (Example 3.7), then
    fewest views (Example 3.6), then — when a registry is supplied — view
    inclusion (Example 3.8).  This realizes the Section 2.3 discussion:
    total rewritings beat partial ones, then compactness, then best fit.
    """
    orders: list[MonomialOrder] = [FewestUncoveredOrder(), FewestViewsOrder()]
    if registry is not None:
        orders.append(ViewInclusionOrder(registry))
    return LexicographicOrder(orders)


def comprehensive_policy() -> CitationPolicy:
    """Keep all alternatives from all rewritings (Def 3.3 verbatim)."""
    return CitationPolicy(
        name="comprehensive", dot="union", plus="union", plus_r="union",
        agg="union",
    )


def focused_policy(registry: ViewRegistry | None = None) -> CitationPolicy:
    """Order-based absorption: cite only the preferred rewritings."""
    return CitationPolicy(
        name="focused", dot="merge", plus="union", plus_r="best",
        agg="union", order=default_order(registry),
    )


def compact_policy(registry: ViewRegistry | None = None) -> CitationPolicy:
    """Single merged citation for the whole result set (Example 3.4)."""
    return CitationPolicy(
        name="compact", dot="merge", plus="union", plus_r="best",
        agg="merge", order=default_order(registry),
    )
