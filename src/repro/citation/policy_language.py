"""A specification language for the model's "black boxes" (Section 4).

The paper lists as future work "designing a language for the
specification of the black boxes [citation functions, semiring
operations, order relations], allowing for their analysis".  This module
implements a small declarative language for the combining-function side:

.. code-block:: text

    policy curated {
        dot    = merge
        plus   = union
        plusR  = best
        agg    = union
        order  = fewest-uncovered > fewest-views > view-inclusion
        neutral = on
    }

Grammar (whitespace-insensitive)::

    spec     := "policy" name "{" setting* "}"
    setting  := key "=" value
    key      := "dot" | "plus" | "plusR" | "agg" | "order" | "neutral"
    value    := identifier | order-chain | "on" | "off"
    order-chain := order-name (">" order-name)*
    order-name  := "fewest-views" | "fewest-uncovered" | "view-inclusion"

:func:`parse_policy` builds a
:class:`~repro.citation.policy.CitationPolicy`;
:func:`analyze_policy` performs the static analysis the paper asks for:
idempotence, determinism of ``+R``, sensitivity to rewriting
enumeration order, and whether Example 3.4's single-citation collapse
can apply.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.citation.order import (
    FewestUncoveredOrder,
    FewestViewsOrder,
    LexicographicOrder,
    MonomialOrder,
    ViewInclusionOrder,
)
from repro.citation.policy import CitationPolicy
from repro.errors import PolicyError
from repro.views.registry import ViewRegistry

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<eq>=)
  | (?P<gt>>)
  | (?P<ident>[A-Za-z][A-Za-z0-9_-]*)
    """,
    re.VERBOSE,
)

_ORDER_NAMES = {
    "fewest-views": lambda registry: FewestViewsOrder(),
    "fewest-uncovered": lambda registry: FewestUncoveredOrder(),
    "view-inclusion": lambda registry: _require_registry(registry),
}


def _require_registry(registry: ViewRegistry | None) -> MonomialOrder:
    if registry is None:
        raise PolicyError(
            "the view-inclusion order needs a ViewRegistry (pass one to "
            "parse_policy)"
        )
    return ViewInclusionOrder(registry)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PolicyError(
                f"policy spec: unexpected character {text[position]!r} at "
                f"offset {position}"
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append((kind, match.group()))
        position = match.end()
    tokens.append(("eof", ""))
    return tokens


def parse_policy(
    text: str, registry: ViewRegistry | None = None
) -> CitationPolicy:
    """Parse a policy specification into a :class:`CitationPolicy`."""
    tokens = _tokenize(text)
    index = 0

    def expect(kind: str) -> str:
        nonlocal index
        token_kind, token_text = tokens[index]
        if token_kind != kind:
            raise PolicyError(
                f"policy spec: expected {kind}, found {token_text!r}"
            )
        index += 1
        return token_text

    def at(kind: str) -> bool:
        return tokens[index][0] == kind

    keyword = expect("ident")
    if keyword != "policy":
        raise PolicyError("policy spec must start with 'policy <name>'")
    name = expect("ident")
    expect("lbrace")

    settings: dict[str, object] = {}
    while not at("rbrace"):
        key = expect("ident")
        expect("eq")
        value = expect("ident")
        if key == "order":
            chain = [value]
            while at("gt"):
                expect("gt")
                chain.append(expect("ident"))
            settings["order"] = chain
        else:
            settings[key] = value
    expect("rbrace")
    if not at("eof"):
        raise PolicyError("policy spec: trailing input after '}'")

    order: MonomialOrder | None = None
    chain = settings.get("order")
    if chain:
        orders = []
        for order_name in chain:  # type: ignore[union-attr]
            factory = _ORDER_NAMES.get(str(order_name))
            if factory is None:
                raise PolicyError(
                    f"unknown order {order_name!r}; choose from "
                    f"{sorted(_ORDER_NAMES)}"
                )
            orders.append(factory(registry))
        order = orders[0] if len(orders) == 1 else LexicographicOrder(orders)

    neutral = str(settings.get("neutral", "on")).lower()
    if neutral not in ("on", "off"):
        raise PolicyError("neutral must be 'on' or 'off'")

    return CitationPolicy(
        name=name,
        dot=str(settings.get("dot", "merge")),
        plus=str(settings.get("plus", "union")),
        plus_r=str(settings.get("plusR", settings.get("plusr", "union"))),
        agg=str(settings.get("agg", "union")),
        order=order,
        include_database_citation=(neutral == "on"),
    )


# ---------------------------------------------------------------------------
# Static analysis ("allowing for their analysis")
# ---------------------------------------------------------------------------


@dataclass
class PolicyAnalysis:
    """What the combining-function choices imply."""

    policy_name: str
    plus_idempotent: bool
    plan_independent: bool
    single_citation_possible: bool
    keeps_all_alternatives: bool
    notes: list[str]

    def describe(self) -> str:
        lines = [f"analysis of policy {self.policy_name!r}:"]
        lines.append(
            f"  + idempotent: {'yes' if self.plus_idempotent else 'no'}"
        )
        lines.append(
            "  plan-independent: "
            + ("yes" if self.plan_independent else "no")
        )
        lines.append(
            "  Example 3.4 single-citation collapse possible: "
            + ("yes" if self.single_citation_possible else "no")
        )
        lines.append(
            "  keeps all rewriting alternatives: "
            + ("yes" if self.keeps_all_alternatives else "no")
        )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def analyze_policy(policy: CitationPolicy) -> PolicyAnalysis:
    """Derive the semantic properties of a policy's choices.

    - *plan independence* (Def 3.3's guarantee) holds for ``+R = union``
      always, and for ``+R = best`` because the absorption operates on the
      full set of rewritings (a deterministic function of the query);
      it would fail for a hypothetical "first rewriting wins" choice —
      the analysis exists to catch such extensions.
    - Example 3.4's collapse needs idempotent ``+`` *and* either an
      order-based ``+R`` or an idempotent ``Agg`` interpretation.
    """
    notes: list[str] = []
    plus_idempotent = policy.idempotent_plus
    if not plus_idempotent:
        notes.append(
            "counted + keeps derivation multiplicities; citation size "
            "grows with the number of bindings (Def 3.2)"
        )
    keeps_all = policy.plus_r == "union"
    if policy.plus_r == "best" and policy.order is None:
        notes.append("plusR=best without an order is rejected at build "
                     "time")
    single_possible = plus_idempotent and (
        policy.plus_r == "best" or policy.agg == "merge"
    )
    if policy.order is not None and keeps_all:
        notes.append(
            "order given but +R=union: the order still normalizes "
            "per-tuple polynomials (absorption inside +)"
        )
    if not policy.include_database_citation:
        notes.append(
            "neutral element disabled: empty results produce empty "
            "citations (Def 3.4 recommends against this)"
        )
    return PolicyAnalysis(
        policy_name=policy.name,
        plus_idempotent=plus_idempotent,
        plan_independent=True,
        single_citation_possible=single_possible,
        keeps_all_alternatives=keeps_all,
        notes=notes,
    )
