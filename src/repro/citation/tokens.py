"""Citation tokens — the base annotations of the citation semiring.

Two kinds (paper, Sections 3.2 and 3.4):

- :class:`ViewCitationToken` — ``F_V(C_V(B_i))`` for a view used with a
  λ-parameter valuation.  The token records *which* view and *which*
  valuation; the actual record is produced lazily at rendering time, so
  the algebra stays purely symbolic (the paper's "formal semantics, not a
  means of computation").
- :class:`BaseRelationToken` — the ``C_R`` atom of Example 3.7, placed in
  the citation whenever a rewriting accesses a base relation directly;
  counting them drives the "fewest uncovered terms" preference.
"""

from __future__ import annotations

from typing import Any


class CitationToken:
    """Abstract base class of citation tokens."""

    __slots__ = ()


class ViewCitationToken(CitationToken):
    """Citation of one view instance: view name + λ-parameter values."""

    __slots__ = ("view_name", "parameters", "_hash")

    def __init__(self, view_name: str, parameters: tuple[Any, ...] = ()) -> None:
        self.view_name = view_name
        self.parameters = tuple(parameters)
        self._hash = hash(("view", view_name, self.parameters))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViewCitationToken):
            return NotImplemented
        return (
            self.view_name == other.view_name
            and self.parameters == other.parameters
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self.parameters:
            return f"C[{self.view_name}]"
        inner = ",".join(repr(p) for p in self.parameters)
        return f"C[{self.view_name}({inner})]"


class BaseRelationToken(CitationToken):
    """The ``C_R`` citation atom for direct base-relation access."""

    __slots__ = ("relation", "_hash")

    def __init__(self, relation: str) -> None:
        self.relation = relation
        self._hash = hash(("base", relation))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BaseRelationToken):
            return NotImplemented
        return self.relation == other.relation

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"C_R[{self.relation}]"
