"""Citation monomials and polynomials.

The citation semiring reuses the free-semiring machinery of
:mod:`repro.semiring.polynomial` with citation tokens as the variables: a
*monomial* is the ``·``-combination of view citations (and ``C_R`` atoms)
inside one binding of one rewriting (Def 3.1); a *polynomial* sums
monomials over alternative bindings and — after ``+R`` flattening —
alternative rewritings (Defs 3.2 / 3.3).

Coefficients count derivations (how many bindings produced the same
monomial).  Idempotent interpretations of ``+`` (Example 3.4, "assuming
that + is idempotent, e.g. as in set union") simply ignore coefficients;
:meth:`CitationPolynomial.support`-style helpers expose both readings.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.citation.tokens import (
    BaseRelationToken,
    CitationToken,
    ViewCitationToken,
)
from repro.semiring.polynomial import ProvenanceMonomial, ProvenancePolynomial

#: Citation monomials/polynomials are provenance monomials/polynomials
#: whose variables are :class:`~repro.citation.tokens.CitationToken`s.
CitationMonomial = ProvenanceMonomial
CitationPolynomial = ProvenancePolynomial


def monomial_from_tokens(tokens: Iterable[CitationToken]) -> CitationMonomial:
    """Build the ``·``-product of the given tokens (Def 3.1)."""
    return ProvenanceMonomial(list(tokens))


def polynomial_from_monomials(
    monomials: Iterable[CitationMonomial],
) -> CitationPolynomial:
    """Sum monomials with multiplicity (Def 3.2's Σ over bindings)."""
    terms: dict[CitationMonomial, int] = {}
    for monomial in monomials:
        terms[monomial] = terms.get(monomial, 0) + 1
    return ProvenancePolynomial(terms)


def view_tokens(monomial: CitationMonomial) -> list[ViewCitationToken]:
    """The view-citation tokens of a monomial, in canonical order."""
    return [
        token for token in monomial.tokens()
        if isinstance(token, ViewCitationToken)
    ]


def base_tokens(monomial: CitationMonomial) -> list[BaseRelationToken]:
    """The ``C_R`` tokens of a monomial, in canonical order."""
    return [
        token for token in monomial.tokens()
        if isinstance(token, BaseRelationToken)
    ]


def view_token_count(monomial: CitationMonomial) -> int:
    """Number of view multiplicands, *with* multiplicity.

    Example 3.6 compares monomials by their number of multiplicands,
    counting views only ("note that we only cite views, not base
    relations").
    """
    return sum(
        exponent
        for token, exponent in monomial.powers.items()
        if isinstance(token, ViewCitationToken)
    )


def base_token_count(monomial: CitationMonomial) -> int:
    """Number of ``C_R`` multiplicands with multiplicity (Example 3.7)."""
    return sum(
        exponent
        for token, exponent in monomial.powers.items()
        if isinstance(token, BaseRelationToken)
    )


def polynomial_support(
    polynomial: CitationPolynomial,
) -> list[CitationMonomial]:
    """Monomials without coefficients — the idempotent-``+`` reading."""
    return polynomial.monomials()


def idempotent_sum(
    polynomials: Iterable[CitationPolynomial],
) -> CitationPolynomial:
    """Union of monomial supports: ``+`` as set union (Example 3.4)."""
    terms: dict[CitationMonomial, int] = {}
    for polynomial in polynomials:
        for monomial in polynomial.monomials():
            terms[monomial] = 1
    return ProvenancePolynomial(terms)
