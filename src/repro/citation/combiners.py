"""Record-level interpretations of the combining functions (Example 3.5).

The algebra of :mod:`repro.citation.polynomial` is symbolic; at rendering
time each token becomes a JSON-like record and the abstract operations get
concrete interpretations:

- ``·`` — :func:`dot_union` keeps the records side by side;
  :func:`dot_merge` joins them, factoring out common fields (the paper's
  two suggested readings);
- ``+`` / ``+R`` — :func:`plus_union` unions alternative records;
  :func:`plus_merge` merges them into one record;
- ``Agg`` — :func:`agg_union` / :func:`agg_merge`, with
  :func:`with_neutral` injecting the always-present records (Def 3.4's
  neutral element: the database name, its NAR publication, ...).
"""

from __future__ import annotations

from typing import Any

from repro.util.jsonutil import merge_records, union_records

Record = dict[str, Any]


def dot_union(records: list[Record]) -> list[Record]:
    """``·`` as union of records: keep each part of the joint citation."""
    return union_records(records)


def dot_merge(records: list[Record]) -> list[Record]:
    """``·`` as join/merge: factor out common fields into one record."""
    if not records:
        return []
    return [merge_records(records)]


def plus_union(alternatives: list[list[Record]]) -> list[Record]:
    """``+`` / ``+R`` as union: keep every alternative citation."""
    flattened: list[Record] = []
    for records in alternatives:
        flattened.extend(records)
    return union_records(flattened)


def plus_merge(alternatives: list[list[Record]]) -> list[Record]:
    """``+`` / ``+R`` as merge: fold all alternatives into one record.

    Reproduces the paper's example::

        {ID, Name, Committee: [Hay, Poyner]}
        +R {ID, Committee: [Brown], Contributors: [Smith]}
        = {ID, Name, Committee: [Hay, Poyner, Brown], Contributors: [Smith]}
    """
    flattened: list[Record] = []
    for records in alternatives:
        flattened.extend(records)
    if not flattened:
        return []
    return [merge_records(flattened)]


def agg_union(per_tuple: list[list[Record]]) -> list[Record]:
    """``Agg`` as union of all per-tuple citations."""
    return plus_union(per_tuple)


def agg_merge(per_tuple: list[list[Record]]) -> list[Record]:
    """``Agg`` as a single merged result-set citation."""
    return plus_merge(per_tuple)


def with_neutral(
    records: list[Record], neutral: list[Record]
) -> list[Record]:
    """Prepend the neutral-element records (deduplicated).

    Even an empty result set carries these (Def 3.4): typically the
    database's own citation.
    """
    return union_records(list(neutral) + records)


DOT_INTERPRETATIONS = {"union": dot_union, "merge": dot_merge}
PLUS_INTERPRETATIONS = {"union": plus_union, "merge": plus_merge}
AGG_INTERPRETATIONS = {"union": agg_union, "merge": agg_merge}
