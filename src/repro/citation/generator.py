"""End-to-end citation generation: ``cite(D, Q, V)`` (Defs 3.1–3.4).

The :class:`CitationEngine` pipeline:

1. enumerate the rewritings of the query over the registry (Section 2.2);
2. evaluate each rewriting (views materialized as virtual relations) and
   build, per output tuple and per binding, the ``·``-monomial of view
   citation tokens and ``C_R`` tokens (Def 3.1);
3. sum monomials over bindings into a per-rewriting polynomial (Def 3.2);
4. combine the per-rewriting polynomials with ``+R`` (Def 3.3) — union
   (the formal, plan-independent semantics) or order-based absorption
   ("best", Section 3.4) according to the policy;
5. aggregate per-tuple citations with ``Agg`` (Def 3.4), injecting the
   neutral-element database citation;
6. render tokens into citation records via the views' citation functions
   ``F_V`` and the policy's record-level interpretations of ``·``/``+``.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.analysis.sanitizer import set_sanitize
from repro.citation.combiners import with_neutral
from repro.citation.order import absorbing_sum, best_polynomials, normal_form
from repro.citation.policy import CitationPolicy, focused_policy
from repro.citation.polynomial import (
    CitationMonomial,
    CitationPolynomial,
    idempotent_sum,
)
from repro.citation.tokens import (
    BaseRelationToken,
    CitationToken,
    ViewCitationToken,
)
from repro.cq.evaluation import evaluate_with_bindings
from repro.cq.executor import IndexedVirtualRelations
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlan, QueryPlanner
from repro.cq.query import ConjunctiveQuery
from repro.cq.sql_parser import parse_sql
from repro.cq.subplan import SubplanMemo, reserve_shared_prefixes
from repro.cq.terms import Constant, Variable
from repro.relational.database import Database
from repro.rewriting.engine import RewritingEngine
from repro.rewriting.rewriting import Rewriting
from repro.semiring.polynomial import ProvenanceMonomial, ProvenancePolynomial
from repro.views.registry import ViewRegistry

Record = dict[str, Any]


@dataclass
class TupleCitation:
    """The citation of one output tuple.

    Attributes
    ----------
    output:
        The output tuple's values.
    per_rewriting:
        One citation polynomial per rewriting (aligned with
        :attr:`CitationResult.rewritings`); the paper's
        ``cite(t, Q, Q', V)``.
    polynomial:
        The combined citation after ``+R`` — ``cite(t, Q, V)``.
    records:
        The rendered citation records under the policy's interpretations.
    """

    output: tuple[Any, ...]
    per_rewriting: tuple[CitationPolynomial, ...]
    polynomial: CitationPolynomial
    records: list[Record]


@dataclass
class CitationResult:
    """The citation of a whole query result — ``cite(D, Q, V)``."""

    query: ConjunctiveQuery
    policy: CitationPolicy
    rewritings: tuple[Rewriting, ...]
    tuples: dict[tuple[Any, ...], TupleCitation]
    aggregate_polynomial: CitationPolynomial
    records: list[Record]
    database_citation: list[Record]

    @property
    def output_tuples(self) -> list[tuple[Any, ...]]:
        return list(self.tuples)

    def citation(self) -> Record:
        """A single JSON-ready citation object for the result set."""
        return {
            "query": repr(self.query),
            "policy": self.policy.name,
            "database": self.database_citation,
            "citations": self.records,
        }

    def __repr__(self) -> str:
        return (
            f"CitationResult({len(self.tuples)} tuples, "
            f"{len(self.rewritings)} rewritings, policy={self.policy.name})"
        )


def _default_database_citation(db: Database) -> list[Record]:
    """Derive the Agg neutral element from a ``MetaData`` relation.

    The paper's Def 3.4 suggests the neutral element carry citations
    "needed regardless of the query output", e.g. the database name; the
    GtoPdb schema stores those in ``MetaData``.
    """
    if "MetaData" not in db.schema:
        return []
    record: Record = {}
    for row in db.relation("MetaData"):
        record[str(row[0])] = row[1]
    return [record] if record else []


class CitationEngine:
    """Generates citations for conjunctive queries over a database.

    Parameters
    ----------
    db:
        The database instance.
    registry:
        The citation views declared by the database owner.
    policy:
        Interpretation of the combining functions; defaults to
        :func:`~repro.citation.policy.focused_policy` over the registry.
    database_citation:
        The Agg neutral element records; defaults to a record built from
        the ``MetaData`` relation when present.
    include_partial / validate / max_rewritings:
        Passed to the :class:`~repro.rewriting.engine.RewritingEngine`.
    parallelism / use_processes:
        Worker count (and thread/process choice) for the shard-and-merge
        executor (:mod:`repro.cq.parallel`) used by every rewriting
        evaluation; 1 runs serially.  Results are identical at any
        setting.  :meth:`cite_batch` can override both per batch.
    shards:
        When given, repartitions the database's relation storage into
        that many shards (:meth:`~repro.relational.database.Database
        .reshard`), enabling shard-parallel first-step scans and probes
        and shard-sliced process-pool payloads.  Like ``parallelism``,
        results are identical at any shard count.
    share_subplans:
        When True (the default), :meth:`cite_batch` groups each batch by
        shared plan prefixes and evaluates every shared join prefix
        *once* through the :attr:`subplan_memo`
        (:mod:`repro.cq.subplan`); False keeps per-query evaluation (the
        unshared baseline the batch-overlap benchmark compares against).
        Results are identical either way.
    verify_plans:
        Per-engine override of the plan-verification mode
        (:func:`~repro.cq.plan.set_plan_verification`): ``"always"``
        runs the structural verifier of :mod:`repro.analysis.verifier`
        on every plan this engine's planner hands out, ``"off"``
        disables it, None (the default) defers to the process-wide
        switch.
    sanitize:
        Sets the **process-wide** concurrency-sanitizer mode
        (:func:`~repro.analysis.sanitizer.set_sanitize`): ``"always"``
        turns on lane-ownership/affinity checks, independent cache-serve
        re-validation, ordinal-merge monotonicity checks and event-loop
        blocking detection for the whole process; ``"off"`` disables
        them; None (the default) leaves the current mode (seeded from
        ``REPRO_SANITIZE``) untouched.

    Plans for queries with range comparisons run unchanged through this
    engine: the shared :class:`~repro.cq.plan.QueryPlanner` pushes them
    into ordered access paths, and the per-engine
    :class:`~repro.cq.executor.IndexedVirtualRelations` materialization
    caches the sorted indexes (and the content fingerprints the plan
    cache keys on) across every rewriting of every query.
    """

    def __init__(
        self,
        db: Database,
        registry: ViewRegistry,
        policy: CitationPolicy | None = None,
        database_citation: list[Record] | None = None,
        include_partial: bool = True,
        validate: bool = True,
        max_rewritings: int | None = None,
        cache_rewritings: bool = False,
        parallelism: int = 1,
        use_processes: bool = False,
        shards: int | None = None,
        share_subplans: bool = True,
        verify_plans: str | None = None,
        sanitize: str | None = None,
    ) -> None:
        if sanitize is not None:
            # Process-wide, like REPRO_SANITIZE: ownership and fan-out
            # state are properties of the whole process, not one engine.
            set_sanitize(sanitize)
        self.db = db
        if shards is not None:
            db.reshard(shards)
        self.registry = registry
        self.policy = policy or focused_policy(registry)
        engine = RewritingEngine(
            registry,
            include_partial=include_partial,
            validate=validate,
            max_rewritings=max_rewritings,
        )
        if cache_rewritings:
            from repro.citation.cache import CachedRewritingEngine
            self.rewriting_engine: Any = CachedRewritingEngine(engine)
        else:
            self.rewriting_engine = engine
        if database_citation is None:
            database_citation = _default_database_citation(db)
        self.database_citation = database_citation
        #: Shared plan cache: every rewriting of every query evaluated by
        #: this engine reuses plans across α-equivalent structures.
        #: ``verify_plans="always"`` makes it a sanitizing planner: every
        #: plan behind every citation is checked against the structural
        #: rulebook of :mod:`repro.analysis.verifier` before it runs.
        self.planner = QueryPlanner(db, verify=verify_plans)
        #: Cross-query sub-plan memo: batches evaluate each shared join
        #: prefix once (:mod:`repro.cq.subplan`).
        self.subplan_memo = SubplanMemo()
        self.share_subplans = share_subplans
        self.parallelism = parallelism
        self.use_processes = use_processes
        self._virtual: IndexedVirtualRelations | None = None
        self._record_cache: dict[CitationToken, Record] = {}
        self._record_cache_max = 4096
        # Serializes the async entry points (acite_batch/acite_union):
        # the engine and its caches are not thread-safe, so concurrent
        # awaiters take turns on the engine while the event loop stays
        # free.  Reentrant because cite_union batches through the same
        # pipeline internally.
        self._exec_lock = threading.RLock()

    @property
    def shards(self) -> int:
        """The database's current storage shard count."""
        return self.db.shards

    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Drop materialized views and cached records after DB updates."""
        self._virtual = None
        self._record_cache.clear()
        self.planner.clear()
        self.subplan_memo.clear()

    def invalidate_data(self) -> None:
        """Graceful invalidation after database mutations.

        Unlike :meth:`refresh` — which drops *everything* — this keeps
        the version-aware caches warm: the plan cache and the sub-plan
        memo key their entries on
        :attr:`~repro.relational.database.Database.stats_version` (and
        virtual-content fingerprints), so the mutation's version bump
        already makes them refuse stale entries lazily.  Only state
        derived from the data with no version tag is dropped — the
        materialized-view relations and the rendered-record cache.  The
        citation service calls this after every ``/insert``/``/delete``.
        """
        self._virtual = None
        self._record_cache.clear()

    def materialized_views(self) -> IndexedVirtualRelations:
        """The (lazily built) indexed materialization of the registry.

        Public accessor for callers that plan against the same virtual
        relations this engine evaluates with (the service's ``/plan``
        endpoint shares plan-cache entries with ``/cite`` through it).
        """
        return self._materialized()

    # ------------------------------------------------------------------
    # async-safe entry points
    # ------------------------------------------------------------------

    def locked_call(self, fn: Any, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` holding the engine's execution lock.

        The building block of the async entry points: anything that
        touches the engine off the event loop (a mutation job, a batch)
        can route through here to serialize with concurrent
        :meth:`acite_batch`/:meth:`acite_union` calls.
        """
        with self._exec_lock:
            return fn(*args, **kwargs)

    async def acite_batch(
        self,
        queries: "Sequence[ConjunctiveQuery | str]",
        parallelism: int | None = None,
        use_processes: bool | None = None,
        shards: int | None = None,
    ) -> list[CitationResult]:
        """Async-safe :meth:`cite_batch`: awaitable from an event loop.

        The batch runs on a worker thread (:func:`asyncio.to_thread`)
        under the engine's execution lock, so the loop keeps serving
        while the engine computes and concurrent awaiters never
        interleave engine state.  This is the entry point the service's
        micro-batcher drives; results are identical to
        :meth:`cite_batch`.
        """
        import asyncio

        return await asyncio.to_thread(
            self.locked_call, self.cite_batch, queries,
            parallelism, use_processes, shards,
        )

    async def acite_union(self, union: "UnionQuery | str") -> CitationResult:
        """Async-safe :meth:`cite_union` (same contract as
        :meth:`acite_batch`)."""
        import asyncio

        return await asyncio.to_thread(
            self.locked_call, self.cite_union, union
        )

    def ensure_rewriting_cache(self) -> Any:
        """Upgrade to a memoizing rewriting engine (idempotent).

        :meth:`cite_batch` performs this upgrade transparently; callers
        that account for cache effectiveness
        (:func:`repro.workload.runner.run_workload`) invoke it *before*
        snapshotting counters, so before/after always read from the
        engine actually used.  Returns the (possibly pre-existing)
        :class:`~repro.citation.cache.CachedRewritingEngine`.
        """
        from repro.citation.cache import CachedRewritingEngine

        if not isinstance(self.rewriting_engine, CachedRewritingEngine):
            self.rewriting_engine = CachedRewritingEngine(
                self.rewriting_engine
            )
        return self.rewriting_engine

    def _materialized(self) -> IndexedVirtualRelations:
        if self._virtual is None:
            self._virtual = IndexedVirtualRelations(
                self.registry.materialize(self.db, planner=self.planner)
            )
        return self._virtual

    # ------------------------------------------------------------------
    # the symbolic pipeline
    # ------------------------------------------------------------------

    def _binding_monomial(
        self, rewriting: Rewriting, binding: dict
    ) -> CitationMonomial:
        """Def 3.1: the ``·`` of citation tokens for one binding."""
        tokens: list[CitationToken] = []
        for application in rewriting.applications:
            values = []
            for term in application.parameter_terms:
                if isinstance(term, Constant):
                    values.append(term.value)
                elif isinstance(term, Variable):
                    values.append(binding[term])
                else:  # pragma: no cover - parameter terms are const/var
                    values.append(term)
            tokens.append(
                ViewCitationToken(application.view.name, tuple(values))
            )
        for atom in rewriting.uncovered_atoms:
            tokens.append(BaseRelationToken(atom.relation))
        return ProvenanceMonomial(tokens)

    def _active_memo(self) -> SubplanMemo | None:
        """The sub-plan memo, when consulting it can pay off.

        ``None`` while sharing is disabled or the memo neither holds nor
        wants anything — the executor then skips prefix-key computation
        entirely, so engines that never batch pay zero overhead.
        """
        if self.share_subplans and self.subplan_memo.worth_checking:
            return self.subplan_memo
        return None

    def _rewriting_polynomials(
        self, rewriting: Rewriting, plan: QueryPlan | None = None
    ) -> dict[tuple[Any, ...], CitationPolynomial]:
        """Def 3.2: per-tuple polynomials for one rewriting."""
        grouped = evaluate_with_bindings(
            rewriting.query,
            self.db,
            virtual=self._materialized(),
            planner=self.planner,
            parallelism=self.parallelism,
            use_processes=self.use_processes,
            plan=plan,
            memo=self._active_memo(),
        )
        result: dict[tuple[Any, ...], CitationPolynomial] = {}
        for output, bindings in grouped.items():
            terms: dict[CitationMonomial, int] = {}
            for binding in bindings:
                monomial = self._binding_monomial(rewriting, binding)
                terms[monomial] = terms.get(monomial, 0) + 1
            result[output] = ProvenancePolynomial(terms)
        return result

    def _combine_rewritings(
        self, polynomials: list[CitationPolynomial]
    ) -> CitationPolynomial:
        """Def 3.3 / Section 3.4: the ``+R`` combination for one tuple."""
        policy = self.policy
        nonzero = [p for p in polynomials if not p.is_zero]
        if not nonzero:
            return ProvenancePolynomial.zero()
        if policy.plus_r == "best" and policy.order is not None:
            nonzero = best_polynomials(nonzero, policy.order)
        if policy.idempotent_plus:
            combined = idempotent_sum(nonzero)
        else:
            combined = ProvenancePolynomial.zero()
            for polynomial in nonzero:
                combined = combined.add(polynomial)
        if policy.order is not None:
            combined = normal_form(combined, policy.order)
        return combined

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def _token_record(self, token: CitationToken) -> Record:
        cached = self._record_cache.get(token)
        if cached is not None:
            return cached
        if isinstance(token, ViewCitationToken):
            view = self.registry.get(token.view_name)
            record = view.citation_for(
                self.db, token.parameters, planner=self.planner
            )
        elif isinstance(token, BaseRelationToken):
            record = {"Relation": token.relation}
        else:  # pragma: no cover - no other token kinds exist
            record = {"Token": repr(token)}
        self._record_cache[token] = record
        if len(self._record_cache) > self._record_cache_max:
            # FIFO bound: distinct tokens grow with the view registry
            # and parameter space, so a long-lived service engine must
            # not accumulate rendered records without limit.
            self._record_cache.pop(next(iter(self._record_cache)))
        return record

    def _monomial_records(self, monomial: CitationMonomial) -> list[Record]:
        records = [self._token_record(token) for token in monomial.tokens()]
        return self.policy.dot_combiner(records)

    def _polynomial_records(
        self, polynomial: CitationPolynomial
    ) -> list[Record]:
        alternatives: list[list[Record]] = []
        for monomial, coefficient in polynomial.terms.items():
            records = self._monomial_records(monomial)
            if self.policy.plus == "counted" and coefficient > 1:
                records = [
                    {**record, "DerivationCount": coefficient}
                    for record in records
                ]
            alternatives.append(records)
        return self.policy.plus_combiner(alternatives)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def cite(self, query: ConjunctiveQuery | str) -> CitationResult:
        """Compute ``cite(D, Q, V)`` — the paper's Defs 3.1–3.4, end to end.

        Enumerates the Def 2.2 rewritings of the query, builds one
        ``·``-monomial per binding (Def 3.1), sums them into per-tuple,
        per-rewriting polynomials (Def 3.2), combines the rewritings with
        ``+R`` (Def 3.3 / Section 3.4 "best"), and aggregates across the
        result set with ``Agg`` (Def 3.4).

        Parameters
        ----------
        query:
            The user query — a :class:`~repro.cq.query.ConjunctiveQuery`
            or a Datalog string (parsed with
            :func:`~repro.cq.parser.parse_query`).

        Returns
        -------
        CitationResult
            Per-tuple citations (:attr:`CitationResult.tuples`), the
            aggregated polynomial, and the rendered citation records
            under this engine's policy.
        """
        if isinstance(query, str):
            query = parse_query(query)
        rewritings = tuple(self.rewriting_engine.rewrite(query))
        return self._cite_with_rewritings(query, rewritings)

    def _cite_with_rewritings(
        self,
        query: ConjunctiveQuery,
        rewritings: tuple[Rewriting, ...],
        plans: Sequence[QueryPlan] | None = None,
    ) -> CitationResult:
        """The Def 3.1–3.4 pipeline over pre-enumerated rewritings.

        ``plans``, when given, is aligned with ``rewritings`` — the
        batch path plans while grouping shared prefixes and passes the
        plans through so nothing is planned (or counted) twice.
        """
        per_rewriting = [
            self._rewriting_polynomials(
                rewriting, plans[index] if plans is not None else None
            )
            for index, rewriting in enumerate(rewritings)
        ]
        outputs: dict[tuple[Any, ...], None] = {}
        for polynomials in per_rewriting:
            for output in polynomials:
                outputs.setdefault(output)

        tuples: dict[tuple[Any, ...], TupleCitation] = {}
        for output in outputs:
            aligned = tuple(
                polynomials.get(output, ProvenancePolynomial.zero())
                for polynomials in per_rewriting
            )
            combined = self._combine_rewritings(list(aligned))
            records = self._polynomial_records(combined)
            tuples[output] = TupleCitation(output, aligned, combined, records)

        # Agg (Def 3.4): symbolic aggregate plus rendered records.
        per_tuple_polynomials = [tc.polynomial for tc in tuples.values()]
        if self.policy.idempotent_plus:
            aggregate = idempotent_sum(per_tuple_polynomials)
        else:
            aggregate = ProvenancePolynomial.zero()
            for polynomial in per_tuple_polynomials:
                aggregate = aggregate.add(polynomial)
        if self.policy.order is not None:
            aggregate = absorbing_sum([aggregate], self.policy.order)
        aggregated_records = self.policy.agg_combiner(
            [tc.records for tc in tuples.values()]
        )
        if self.policy.include_database_citation:
            aggregated_records = with_neutral(
                aggregated_records, self.database_citation
            )
        return CitationResult(
            query=query,
            policy=self.policy,
            rewritings=rewritings,
            tuples=tuples,
            aggregate_polynomial=aggregate,
            records=aggregated_records,
            database_citation=list(self.database_citation),
        )

    def cite_batch(
        self,
        queries: "Sequence[ConjunctiveQuery | str]",
        parallelism: int | None = None,
        use_processes: bool | None = None,
        shards: int | None = None,
    ) -> list[CitationResult]:
        """Cite a whole workload, sharing work across the queries.

        This is the repository-front-end entry point: repeated or
        template-shaped traffic pays each expensive step once —

        - rewriting enumeration is memoized per α-equivalence class (the
          engine is upgraded to a
          :class:`~repro.citation.cache.CachedRewritingEngine` if it is
          not one already; the upgrade is transparent and persists, so a
          follow-up batch starts warm);
        - query plans are shared through :attr:`planner`;
        - views are materialized once up front, and their hash indexes
          accumulate across the batch.

        Parameters
        ----------
        queries:
            The workload, as query objects or Datalog strings.
        parallelism:
            When given, sets the engine's shard-and-merge worker count
            (:mod:`repro.cq.parallel`) for this and later batches; every
            rewriting evaluation partitions its first join step across
            that many workers.  Like the rewriting-cache upgrade, the
            setting persists on the engine.
        use_processes:
            When given, switches the workers between threads (False,
            default) and a process pool (True).
        shards:
            When given, repartitions the database's relation storage
            into that many shards before the batch
            (:meth:`~repro.relational.database.Database.reshard`); the
            repartitioning persists on the database like the other
            knobs persist on the engine.

        Returns
        -------
        One :class:`CitationResult` per query, in order.  Results are
        identical at any parallelism and shard count (bindings merge in
        serial order), and identical with sub-plan sharing on or off.
        """
        if parallelism is not None:
            self.parallelism = parallelism
        if use_processes is not None:
            self.use_processes = use_processes
        if shards is not None:
            self.db.reshard(shards)
        self.ensure_rewriting_cache()
        self._materialized()
        batch = self._group_batch(queries)
        return [
            self._cite_with_rewritings(query, rewritings, plans)
            for query, rewritings, plans in batch
        ]

    def _group_batch(
        self, queries: "Sequence[ConjunctiveQuery | str]"
    ) -> list[
        tuple[ConjunctiveQuery, tuple[Rewriting, ...], tuple[QueryPlan, ...]]
    ]:
        """Rewrite and plan the batch, reserving shared plan prefixes.

        Every rewriting of every query is enumerated (through the
        rewriting cache) and planned (through the plan cache) exactly
        once here; the prefix keys of all the plans are counted, and
        each plan's *longest* prefix key carried by two or more plans is
        reserved in the :attr:`subplan_memo` — the first execution of a
        reserved prefix materializes its bindings, every later plan in
        the batch (and in follow-up traffic) seeds from them.  Prefixes
        unique to one plan are never reserved, so unshared queries skip
        materialization entirely; and reserving only maximal shared
        prefixes keeps intermediate levels nobody would seed from out of
        the memo (a plan that shares a *shorter* prefix with the group
        reserves that shorter key itself).
        """
        virtual = self._materialized()
        batch: list[
            tuple[
                ConjunctiveQuery,
                tuple[Rewriting, ...],
                tuple[QueryPlan, ...],
            ]
        ] = []
        for query in queries:
            if isinstance(query, str):
                query = parse_query(query)
            rewritings = tuple(self.rewriting_engine.rewrite(query))
            plans = tuple(
                self.planner.plan(rewriting.query, virtual)
                for rewriting in rewritings
            )
            batch.append((query, rewritings, plans))
        if self.share_subplans:
            reserve_shared_prefixes(
                [plan for __, __, plans in batch for plan in plans],
                self.subplan_memo,
            )
        return batch

    def cite_sql(self, sql: str) -> CitationResult:
        """Compute the citation for a SQL SELECT statement."""
        return self.cite(parse_sql(sql, self.db.schema))

    def cite_union(self, union: "UnionQuery | str") -> CitationResult:
        """Citation for a union of conjunctive queries (SPJU's U).

        Disjuncts are alternative derivations of the same output tuples,
        so per-tuple citations combine with ``+`` across disjuncts —
        exactly the alternative-use semantics of Section 3.1 — and the
        aggregate then proceeds as usual.

        Disjuncts ride the batch pipeline: every rewriting of every
        disjunct is planned through the shared plan cache, and the
        disjuncts' common join prefixes — unions overlap heavily by
        construction — are reserved in the sub-plan memo so each shared
        prefix is materialized once per union rather than once per
        disjunct (``share_subplans=False`` restores per-disjunct
        evaluation; results are identical either way).
        """
        from repro.cq.ucq import UnionQuery, parse_union_query

        if isinstance(union, str):
            union = parse_union_query(union)
        union = union.minimized()
        partial_results = [
            self._cite_with_rewritings(query, rewritings, plans)
            for query, rewritings, plans in self._group_batch(union.disjuncts)
        ]

        outputs: dict[tuple[Any, ...], None] = {}
        for result in partial_results:
            for output in result.tuples:
                outputs.setdefault(output)

        tuples: dict[tuple[Any, ...], TupleCitation] = {}
        for output in outputs:
            contributions = [
                result.tuples[output].polynomial
                for result in partial_results
                if output in result.tuples
            ]
            if self.policy.idempotent_plus:
                combined = idempotent_sum(contributions)
            else:
                combined = ProvenancePolynomial.zero()
                for polynomial in contributions:
                    combined = combined.add(polynomial)
            if self.policy.order is not None:
                combined = normal_form(combined, self.policy.order)
            # Keep per_rewriting aligned with the concatenated rewriting
            # list: a disjunct that does not produce this tuple
            # contributes zero polynomials for each of its rewritings.
            per_rewriting = tuple(
                polynomial
                for result in partial_results
                for polynomial in (
                    result.tuples[output].per_rewriting
                    if output in result.tuples
                    else (ProvenancePolynomial.zero(),)
                    * len(result.rewritings)
                )
            )
            records = self._polynomial_records(combined)
            tuples[output] = TupleCitation(
                output, per_rewriting, combined, records
            )

        per_tuple_polynomials = [tc.polynomial for tc in tuples.values()]
        if self.policy.idempotent_plus:
            aggregate = idempotent_sum(per_tuple_polynomials)
        else:
            aggregate = ProvenancePolynomial.zero()
            for polynomial in per_tuple_polynomials:
                aggregate = aggregate.add(polynomial)
        if self.policy.order is not None:
            aggregate = absorbing_sum([aggregate], self.policy.order)
        aggregated_records = self.policy.agg_combiner(
            [tc.records for tc in tuples.values()]
        )
        if self.policy.include_database_citation:
            aggregated_records = with_neutral(
                aggregated_records, self.database_citation
            )
        all_rewritings = tuple(
            rewriting
            for result in partial_results
            for rewriting in result.rewritings
        )
        return CitationResult(
            query=union.disjuncts[0],
            policy=self.policy,
            rewritings=all_rewritings,
            tuples=tuples,
            aggregate_polynomial=aggregate,
            records=aggregated_records,
            database_citation=list(self.database_citation),
        )

    def cite_view(
        self, view_name: str, params: tuple[Any, ...] = ()
    ) -> Record:
        """Directly cite a view instance (the hard-coded web-page case)."""
        return self.registry.get(view_name).citation_for(
            self.db, params, planner=self.planner
        )
