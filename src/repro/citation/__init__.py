"""The citation algebra (paper, Section 3).

Citations are annotations combined through four abstract operations:

- ``·`` — joint use of views within one binding of one rewriting
  (Def 3.1);
- ``+`` — alternative bindings yielding the same output tuple (Def 3.2);
- ``+R`` — alternative rewritings of the query (Def 3.3);
- ``Agg`` — aggregation of per-tuple citations into one result-set
  citation (Def 3.4), whose neutral element carries always-present
  citations such as the database's own publication.

The structure is a commutative semiring over citation tokens
(:mod:`repro.citation.tokens` / :mod:`repro.citation.polynomial`); the
database owner chooses interpretations of the operations via a
:class:`~repro.citation.policy.CitationPolicy`, optionally refined by an
order relation (:mod:`repro.citation.order`, Section 3.4).  The
:class:`~repro.citation.generator.CitationEngine` runs the full pipeline:
rewrite → per-binding monomials → per-tuple polynomials → ``+R`` → ``Agg``
→ rendered citation records (:mod:`repro.citation.formatting`).
"""

from repro.citation.tokens import (
    CitationToken,
    ViewCitationToken,
    BaseRelationToken,
)
from repro.citation.polynomial import (
    CitationMonomial,
    CitationPolynomial,
    monomial_from_tokens,
    view_token_count,
    base_token_count,
)
from repro.citation.order import (
    MonomialOrder,
    FewestViewsOrder,
    FewestUncoveredOrder,
    ViewInclusionOrder,
    LexicographicOrder,
    normal_form,
    polynomial_leq,
)
from repro.citation.policy import (
    CitationPolicy,
    comprehensive_policy,
    focused_policy,
    compact_policy,
)
from repro.citation.generator import (
    CitationEngine,
    CitationResult,
    TupleCitation,
)
from repro.citation.formatting import (
    render_json,
    render_text,
    render_xml,
    render_bibtex,
    render_dublin_core,
    render_ris,
)
from repro.citation.explain import Explanation, explain
from repro.citation.policy_language import (
    PolicyAnalysis,
    analyze_policy,
    parse_policy,
)
from repro.citation.cache import CachedRewritingEngine, canonical_key

__all__ = [
    "CitationToken",
    "ViewCitationToken",
    "BaseRelationToken",
    "CitationMonomial",
    "CitationPolynomial",
    "monomial_from_tokens",
    "view_token_count",
    "base_token_count",
    "MonomialOrder",
    "FewestViewsOrder",
    "FewestUncoveredOrder",
    "ViewInclusionOrder",
    "LexicographicOrder",
    "normal_form",
    "polynomial_leq",
    "CitationPolicy",
    "comprehensive_policy",
    "focused_policy",
    "compact_policy",
    "CitationEngine",
    "CitationResult",
    "TupleCitation",
    "render_json",
    "render_text",
    "render_xml",
    "render_bibtex",
    "Explanation",
    "explain",
    "CachedRewritingEngine",
    "canonical_key",
    "render_dublin_core",
    "render_ris",
    "PolicyAnalysis",
    "analyze_policy",
    "parse_policy",
]
