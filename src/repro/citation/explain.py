"""Explanations: why a citation result looks the way it does.

Repositories adopting fine-grained citation need to justify outputs to
curators ("why is this committee credited?").  :func:`explain` walks a
:class:`~repro.citation.generator.CitationResult` and produces a
structured, renderable account:

- the rewritings found, classified per Section 2.2/2.3 (total/partial,
  view count, absorbed λ-parameters, residual comparisons);
- per output tuple, which monomials survived and which views (with which
  λ-valuations) they credit;
- when an order-based policy dropped alternatives, which rewritings were
  absorbed and by which preference criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.citation.generator import CitationResult
from repro.citation.polynomial import base_tokens, view_tokens
from repro.rewriting.rewriting import Rewriting


@dataclass
class RewritingExplanation:
    """One rewriting's role in the citation."""

    rewriting: Rewriting
    used: bool  # did any of its monomials survive +R for some tuple?

    def describe(self) -> str:
        kind = "total" if self.rewriting.is_total else "partial"
        bits = [
            f"{kind} rewriting",
            f"{self.rewriting.view_count} view(s)",
        ]
        if self.rewriting.absorbed_parameter_count:
            bits.append(
                f"{self.rewriting.absorbed_parameter_count} comparison(s) "
                "absorbed into λ-parameters"
            )
        if self.rewriting.residual_comparison_count:
            bits.append(
                f"{self.rewriting.residual_comparison_count} residual "
                "selection(s)"
            )
        if self.rewriting.uncovered_count:
            bits.append(
                f"{self.rewriting.uncovered_count} base relation(s) "
                "accessed directly"
            )
        status = "USED" if self.used else "absorbed by preference order"
        return f"[{status}] {self.rewriting.query!r} — {', '.join(bits)}"


@dataclass
class TupleExplanation:
    """Why one output tuple is cited the way it is."""

    output: tuple
    credited_views: list[str] = field(default_factory=list)
    base_accesses: list[str] = field(default_factory=list)
    alternative_count: int = 0

    def describe(self) -> str:
        lines = [f"tuple {self.output}:"]
        if self.credited_views:
            lines.append("  credits " + ", ".join(self.credited_views))
        if self.base_accesses:
            lines.append(
                "  direct access to " + ", ".join(self.base_accesses)
            )
        if self.alternative_count > 1:
            lines.append(
                f"  {self.alternative_count} alternative derivations kept"
            )
        return "\n".join(lines)


@dataclass
class Explanation:
    """The full account of a citation result."""

    result: CitationResult
    rewritings: list[RewritingExplanation]
    tuples: list[TupleExplanation]

    def describe(self) -> str:
        lines = [
            f"Citation explanation for {self.result.query.name} "
            f"(policy={self.result.policy.name})",
            f"{len(self.rewritings)} rewriting(s) found:",
        ]
        for rw in self.rewritings:
            lines.append("  " + rw.describe())
        lines.append("")
        for tc in self.tuples:
            lines.append(tc.describe())
        if not self.tuples:
            lines.append(
                "empty result set: only the database-level citation "
                "applies (Agg neutral element)"
            )
        return "\n".join(lines)


def _views_surviving(result: CitationResult) -> set[str]:
    survivors: set[str] = set()
    for tc in result.tuples.values():
        for monomial in tc.polynomial.monomials():
            for token in view_tokens(monomial):
                survivors.add(token.view_name)
    return survivors


def explain(result: CitationResult) -> Explanation:
    """Build a structured explanation of a citation result."""
    surviving_views = _views_surviving(result)
    rewriting_explanations = []
    for rewriting in result.rewritings:
        declared = {a.view.name for a in rewriting.applications}
        used = (
            bool(declared & surviving_views)
            if declared
            else bool(result.tuples)  # identity rewriting w/ C_R tokens
        )
        rewriting_explanations.append(
            RewritingExplanation(rewriting, used)
        )

    tuple_explanations = []
    for output, tc in result.tuples.items():
        credited: list[str] = []
        bases: list[str] = []
        for monomial in tc.polynomial.monomials():
            for token in view_tokens(monomial):
                label = token.view_name
                if token.parameters:
                    inner = ", ".join(repr(p) for p in token.parameters)
                    label = f"{token.view_name}({inner})"
                if label not in credited:
                    credited.append(label)
            for token in base_tokens(monomial):
                if token.relation not in bases:
                    bases.append(token.relation)
        tuple_explanations.append(TupleExplanation(
            output=output,
            credited_views=credited,
            base_accesses=bases,
            alternative_count=len(tc.polynomial.monomials()),
        ))
    return Explanation(result, rewriting_explanations, tuple_explanations)
