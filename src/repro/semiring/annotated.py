"""K-relations: conjunctive-query evaluation over annotated databases.

A K-relation attaches a semiring annotation to every tuple.  Query
evaluation combines annotations exactly as in Green et al.:

- a *binding* (one way of jointly using base tuples) contributes the ``·``
  of the annotations of the tuples it uses, with multiplicity: an atom used
  twice contributes its annotation twice;
- an output tuple's annotation is the ``+`` over all its bindings.

This mirrors — at the tuple level — what the citation algebra does at the
view level (paper, Defs 3.1 / 3.2), and tests use the correspondence to
validate the citation machinery.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.cq.evaluation import enumerate_bindings, head_tuple
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant
from repro.relational.database import Database
from repro.relational.tuples import Row
from repro.semiring.base import Semiring


class AnnotatedDatabase:
    """A database whose rows carry semiring annotations.

    Rows without an explicit annotation default to ``semiring.one`` —
    i.e. plain set membership — so partially annotated databases behave
    sensibly.
    """

    def __init__(self, db: Database, semiring: Semiring) -> None:
        self.db = db
        self.semiring = semiring
        self._annotations: dict[Row, Any] = {}

    def annotate(self, row: Row, annotation: Any) -> None:
        """Attach an annotation to a row (must be present in the database)."""
        if row.relation not in self.db or row not in self.db.relation(row.relation):
            raise KeyError(f"row {row!r} not present in the database")
        self._annotations[row] = annotation

    def annotate_all(self, token_factory: Callable[[Row], Any]) -> None:
        """Annotate every row via a factory (e.g. fresh provenance tokens)."""
        for instance in self.db.relations():
            for row in instance:
                self._annotations[row] = token_factory(row)

    def annotation(self, row: Row) -> Any:
        """The annotation of a row (``one`` if not explicitly annotated)."""
        return self._annotations.get(row, self.semiring.one)


def _binding_rows(
    query: ConjunctiveQuery, binding: dict, db: Database
) -> list[Row]:
    """The base rows used by a binding, one per atom occurrence.

    An atom used twice yields its row twice — K-relation semantics
    multiplies annotations per *use*, not per distinct tuple.
    """
    rows = []
    for atom in query.atoms:
        values = []
        for term in atom.terms:
            if isinstance(term, Constant):
                values.append(term.value)
            else:
                values.append(binding[term])
        rows.append(Row(atom.relation, values))
    return rows


def evaluate_annotated(
    query: ConjunctiveQuery,
    annotated: AnnotatedDatabase,
    params: Sequence[Any] | None = None,
) -> dict[tuple[Any, ...], Any]:
    """Evaluate a CQ over a K-relation.

    Returns a map from output tuple to its semiring annotation.  Output
    tuples whose annotation is ``zero`` are omitted.
    """
    if params is not None:
        query = query.instantiate(params)
    semiring = annotated.semiring
    results: dict[tuple[Any, ...], Any] = {}
    for binding in enumerate_bindings(query, annotated.db):
        annotation = semiring.product(
            annotated.annotation(row)
            for row in _binding_rows(query, binding, annotated.db)
        )
        key = head_tuple(query, binding)
        if key in results:
            results[key] = semiring.add(results[key], annotation)
        else:
            results[key] = annotation
    return {
        key: value
        for key, value in results.items()
        if not semiring.is_zero(value)
    }


def row_token_factory(row: Row) -> str:
    """Default token naming for :meth:`AnnotatedDatabase.annotate_all`:
    ``Relation(v1,v2,...)`` string tokens, readable in polynomial output."""
    inner = ",".join(str(v) for v in row.values)
    return f"{row.relation}({inner})"
