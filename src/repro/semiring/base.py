"""The commutative-semiring interface.

A commutative semiring ``(K, +, ·, 0, 1)`` has two commutative, associative
operations with neutral elements ``0`` (for ``+``) and ``1`` (for ``·``),
``·`` distributing over ``+`` and ``0`` annihilating ``·``.  Section 3.1 of
the paper requires exactly this structure for citations.

Concrete semirings subclass :class:`Semiring`; :func:`check_semiring_laws`
verifies the axioms on sample elements (used by unit and property tests).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any, Generic, TypeVar

K = TypeVar("K")


class Semiring(Generic[K]):
    """Abstract commutative semiring over element type ``K``."""

    #: Human-readable name (for reprs and error messages).
    name: str = "semiring"

    #: True when ``a + a = a`` holds for all elements (e.g. set union).
    idempotent_add: bool = False

    @property
    def zero(self) -> K:
        """Neutral element of ``+`` (annihilator of ``·``)."""
        raise NotImplementedError

    @property
    def one(self) -> K:
        """Neutral element of ``·``."""
        raise NotImplementedError

    def add(self, left: K, right: K) -> K:
        """Alternative use (``+``)."""
        raise NotImplementedError

    def multiply(self, left: K, right: K) -> K:
        """Joint use (``·``)."""
        raise NotImplementedError

    # -- derived operations ----------------------------------------------------

    def sum(self, values: Iterable[K]) -> K:
        """Fold ``+`` over values (``0`` for the empty iterable)."""
        result = self.zero
        for value in values:
            result = self.add(result, value)
        return result

    def product(self, values: Iterable[K]) -> K:
        """Fold ``·`` over values (``1`` for the empty iterable)."""
        result = self.one
        for value in values:
            result = self.multiply(result, value)
        return result

    def is_zero(self, value: K) -> bool:
        return value == self.zero

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def check_semiring_laws(
    semiring: Semiring[K], samples: Sequence[K]
) -> list[str]:
    """Check the commutative-semiring axioms on all triples of ``samples``.

    Returns a list of human-readable violation descriptions (empty when all
    axioms hold on the samples).  Used by tests, including hypothesis
    property tests that feed randomly generated elements.
    """
    violations: list[str] = []

    def note(law: str, *elements: Any) -> None:
        violations.append(f"{semiring.name}: {law} violated on {elements!r}")

    zero, one = semiring.zero, semiring.one
    for a in samples:
        if semiring.add(a, zero) != a:
            note("additive identity", a)
        if semiring.multiply(a, one) != a:
            note("multiplicative identity", a)
        if semiring.multiply(a, zero) != zero:
            note("annihilation", a)
        if semiring.idempotent_add and semiring.add(a, a) != a:
            note("additive idempotence", a)
        for b in samples:
            if semiring.add(a, b) != semiring.add(b, a):
                note("additive commutativity", a, b)
            if semiring.multiply(a, b) != semiring.multiply(b, a):
                note("multiplicative commutativity", a, b)
            for c in samples:
                if semiring.add(semiring.add(a, b), c) != semiring.add(
                        a, semiring.add(b, c)):
                    note("additive associativity", a, b, c)
                if semiring.multiply(
                        semiring.multiply(a, b), c) != semiring.multiply(
                        a, semiring.multiply(b, c)):
                    note("multiplicative associativity", a, b, c)
                left = semiring.multiply(a, semiring.add(b, c))
                right = semiring.add(
                    semiring.multiply(a, b), semiring.multiply(a, c)
                )
                if left != right:
                    note("distributivity", a, b, c)
    return violations
