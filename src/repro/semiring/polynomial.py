"""Provenance polynomials: the free commutative semiring ℕ[X].

ℕ[X] is *universal* among commutative semirings (Green et al., PODS 2007):
evaluate a query once with polynomial annotations, then specialize the
tokens to any other semiring via :meth:`ProvenancePolynomial.specialize`.
The citation algebra (:mod:`repro.citation.polynomial`) reuses the same
monomial/polynomial representation with citation tokens.

Representation
--------------
- :class:`ProvenanceMonomial`: a multiset of tokens (token -> exponent),
  canonicalized and hashable.
- :class:`ProvenancePolynomial`: a map monomial -> positive integer
  coefficient; the zero polynomial has no monomials.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from typing import Any

from repro.semiring.base import Semiring


class ProvenanceMonomial:
    """A commutative product of tokens with multiplicities, e.g. ``x²y``."""

    __slots__ = ("_powers", "_hash")

    def __init__(self, powers: Mapping[Any, int] | Iterable[Any] = ()) -> None:
        if isinstance(powers, Mapping):
            items = {
                token: exponent
                for token, exponent in powers.items()
                if exponent > 0
            }
        else:
            items = {}
            for token in powers:
                items[token] = items.get(token, 0) + 1
        # Canonical order by repr for deterministic display and hashing.
        self._powers: dict[Any, int] = dict(
            sorted(items.items(), key=lambda kv: repr(kv[0]))
        )
        self._hash = hash(frozenset(self._powers.items()))

    # -- inspection -----------------------------------------------------------

    @property
    def powers(self) -> Mapping[Any, int]:
        return dict(self._powers)

    def tokens(self) -> list[Any]:
        """Distinct tokens, in canonical order."""
        return list(self._powers)

    @property
    def degree(self) -> int:
        """Total degree (sum of exponents)."""
        return sum(self._powers.values())

    @property
    def is_one(self) -> bool:
        return not self._powers

    def support(self) -> frozenset:
        """Set of distinct tokens (drop exponents)."""
        return frozenset(self._powers)

    # -- algebra ----------------------------------------------------------------

    def multiply(self, other: "ProvenanceMonomial") -> "ProvenanceMonomial":
        powers = dict(self._powers)
        for token, exponent in other._powers.items():
            powers[token] = powers.get(token, 0) + exponent
        return ProvenanceMonomial(powers)

    def dropped_exponents(self) -> "ProvenanceMonomial":
        """Idempotent-· image: every exponent clamped to 1 (e.g. for Trio)."""
        return ProvenanceMonomial(dict.fromkeys(self._powers, 1))

    def divides(self, other: "ProvenanceMonomial") -> bool:
        """Does this monomial divide ``other`` (pointwise ≤ exponents)?"""
        return all(
            other._powers.get(token, 0) >= exponent
            for token, exponent in self._powers.items()
        )

    # -- value semantics -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProvenanceMonomial):
            return NotImplemented
        return self._powers == other._powers

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._powers:
            return "1"
        parts = []
        for token, exponent in self._powers.items():
            text = str(token)
            parts.append(text if exponent == 1 else f"{text}^{exponent}")
        return "·".join(parts)


class ProvenancePolynomial:
    """An element of ℕ[X]: a sum of monomials with ℕ coefficients."""

    __slots__ = ("_terms", "_hash")

    def __init__(
        self, terms: Mapping[ProvenanceMonomial, int] | None = None
    ) -> None:
        cleaned = {
            monomial: coefficient
            for monomial, coefficient in (terms or {}).items()
            if coefficient > 0
        }
        self._terms: dict[ProvenanceMonomial, int] = dict(
            sorted(cleaned.items(), key=lambda kv: repr(kv[0]))
        )
        self._hash = hash(frozenset(self._terms.items()))

    # -- constructors -----------------------------------------------------------

    @classmethod
    def zero(cls) -> "ProvenancePolynomial":
        return cls({})

    @classmethod
    def one(cls) -> "ProvenancePolynomial":
        return cls({ProvenanceMonomial(): 1})

    @classmethod
    def token(cls, token: Any) -> "ProvenancePolynomial":
        """The polynomial consisting of a single variable."""
        return cls({ProvenanceMonomial([token]): 1})

    # -- inspection -------------------------------------------------------------

    @property
    def terms(self) -> Mapping[ProvenanceMonomial, int]:
        return dict(self._terms)

    def monomials(self) -> list[ProvenanceMonomial]:
        return list(self._terms)

    @property
    def is_zero(self) -> bool:
        return not self._terms

    def variables(self) -> frozenset:
        result: set = set()
        for monomial in self._terms:
            result.update(monomial.support())
        return frozenset(result)

    # -- algebra ------------------------------------------------------------------

    def add(self, other: "ProvenancePolynomial") -> "ProvenancePolynomial":
        terms = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            terms[monomial] = terms.get(monomial, 0) + coefficient
        return ProvenancePolynomial(terms)

    def multiply(self, other: "ProvenancePolynomial") -> "ProvenancePolynomial":
        terms: dict[ProvenanceMonomial, int] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                product = m1.multiply(m2)
                terms[product] = terms.get(product, 0) + c1 * c2
        return ProvenancePolynomial(terms)

    def specialize(
        self, semiring: Semiring, valuation: Callable[[Any], Any]
    ) -> Any:
        """Evaluate the polynomial in another semiring.

        ``valuation`` maps each token to an element of ``semiring``; the
        universality of ℕ[X] guarantees this commutes with query
        evaluation.
        """
        total = semiring.zero
        for monomial, coefficient in self._terms.items():
            product = semiring.one
            for token, exponent in monomial.powers.items():
                value = valuation(token)
                for __ in range(exponent):
                    product = semiring.multiply(product, value)
            term = semiring.zero
            for __ in range(coefficient):
                term = semiring.add(term, product)
            total = semiring.add(total, term)
        return total

    # -- value semantics --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProvenancePolynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for monomial, coefficient in self._terms.items():
            if coefficient == 1:
                parts.append(str(monomial))
            else:
                parts.append(f"{coefficient}·{monomial}")
        return " + ".join(parts)


class PolynomialSemiring(Semiring[ProvenancePolynomial]):
    """ℕ[X] packaged as a :class:`Semiring` instance."""

    name = "polynomial"
    idempotent_add = False

    @property
    def zero(self) -> ProvenancePolynomial:
        return ProvenancePolynomial.zero()

    @property
    def one(self) -> ProvenancePolynomial:
        return ProvenancePolynomial.one()

    def add(
        self, left: ProvenancePolynomial, right: ProvenancePolynomial
    ) -> ProvenancePolynomial:
        return left.add(right)

    def multiply(
        self, left: ProvenancePolynomial, right: ProvenancePolynomial
    ) -> ProvenancePolynomial:
        return left.multiply(right)

    def token(self, token: Any) -> ProvenancePolynomial:
        return ProvenancePolynomial.token(token)


#: Shared instance.
POLYNOMIAL = PolynomialSemiring()
