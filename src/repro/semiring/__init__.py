"""Provenance semirings (Green, Karvounarakis & Tannen, PODS 2007).

The paper's Section 3 grounds its citation algebra in provenance semirings:
joint use of tuples is ``·``, alternative use is ``+``.  This subpackage is
a from-scratch implementation of that substrate:

- :mod:`repro.semiring.base` — the :class:`Semiring` interface and law
  checking helpers;
- concrete semirings: Boolean, counting (ℕ), tropical (min-plus),
  lineage, why-provenance, and the free semiring of provenance polynomials
  ℕ[X] (:mod:`repro.semiring.polynomial`);
- :mod:`repro.semiring.annotated` — K-relation evaluation: conjunctive
  queries over databases whose tuples carry semiring annotations.

The citation algebra of :mod:`repro.citation` mirrors the polynomial
construction here, extended with the paper's ``+R`` and ``Agg`` levels.
"""

from repro.semiring.base import Semiring, check_semiring_laws
from repro.semiring.boolean import BooleanSemiring, BOOLEAN
from repro.semiring.counting import CountingSemiring, COUNTING
from repro.semiring.tropical import TropicalSemiring, TROPICAL
from repro.semiring.lineage import LineageSemiring, LINEAGE
from repro.semiring.why import WhySemiring, WHY
from repro.semiring.polynomial import (
    ProvenanceMonomial,
    ProvenancePolynomial,
    PolynomialSemiring,
    POLYNOMIAL,
)
from repro.semiring.posbool import PosBoolSemiring, POSBOOL
from repro.semiring.annotated import AnnotatedDatabase, evaluate_annotated

__all__ = [
    "Semiring",
    "check_semiring_laws",
    "BooleanSemiring",
    "BOOLEAN",
    "CountingSemiring",
    "COUNTING",
    "TropicalSemiring",
    "TROPICAL",
    "LineageSemiring",
    "LINEAGE",
    "WhySemiring",
    "WHY",
    "ProvenanceMonomial",
    "ProvenancePolynomial",
    "PolynomialSemiring",
    "POLYNOMIAL",
    "PosBoolSemiring",
    "POSBOOL",
    "AnnotatedDatabase",
    "evaluate_annotated",
]
