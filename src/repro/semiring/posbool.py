"""PosBool[X]: positive Boolean expressions with absorption.

PosBool[X] (free distributive lattice) is the provenance semiring in which
both operations are idempotent *and* absorption ``a + a·b = a`` holds.  It
is the theoretical mirror of the paper's Section 3.4 machinery: dropping a
monomial dominated by a sub-monomial is exactly PosBool's normal form of
*minimal implicants*.  Tests use this correspondence to cross-check the
citation order code: under the "fewer tokens is better, sub-monomials
dominate" order, citation normal forms and PosBool normal forms agree.

Elements are represented as frozensets of frozensets of tokens (sets of
minimal implicants — an antichain under ⊆).
"""

from __future__ import annotations

from repro.semiring.base import Semiring

Implicant = frozenset[object]
PosBoolValue = frozenset[Implicant]


def _minimal(implicants: frozenset[Implicant]) -> PosBoolValue:
    """Keep only ⊆-minimal implicants (the absorption normal form)."""
    return frozenset(
        implicant for implicant in implicants
        if not any(other < implicant for other in implicants)
    )


class PosBoolSemiring(Semiring[PosBoolValue]):
    """Positive Boolean expressions in minimal-implicant normal form."""

    name = "posbool"
    idempotent_add = True

    @property
    def zero(self) -> PosBoolValue:
        return frozenset()

    @property
    def one(self) -> PosBoolValue:
        return frozenset((frozenset(),))

    def add(self, left: PosBoolValue, right: PosBoolValue) -> PosBoolValue:
        return _minimal(left | right)

    def multiply(
        self, left: PosBoolValue, right: PosBoolValue
    ) -> PosBoolValue:
        return _minimal(frozenset(
            a | b for a in left for b in right
        ))

    def token(self, value: object) -> PosBoolValue:
        return frozenset((frozenset((value,)),))

    def implied(self, left: PosBoolValue, right: PosBoolValue) -> bool:
        """Does ``left`` logically imply ``right``?

        Every implicant of ``left`` must contain some implicant of
        ``right`` (monotone Boolean implication on minimal forms).
        """
        return all(
            any(r_implicant <= l_implicant for r_implicant in right)
            for l_implicant in left
        )


#: Shared instance.
POSBOOL = PosBoolSemiring()
