"""The counting semiring ``(ℕ, +, ·, 0, 1)``.

Annotating every base tuple with 1 and evaluating a query computes bag
(multiplicity) semantics — how many derivations produce each output tuple.
"""

from __future__ import annotations

from repro.semiring.base import Semiring


class CountingSemiring(Semiring[int]):
    """Bag-semantics / derivation-counting semiring."""

    name = "counting"
    idempotent_add = False

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, left: int, right: int) -> int:
        return left + right

    def multiply(self, left: int, right: int) -> int:
        return left * right


#: Shared instance.
COUNTING = CountingSemiring()
