"""The lineage semiring: sets of contributing tokens.

Lineage collapses all structure: the annotation of an output tuple is just
the set of base tuples that contributed to it in *some* derivation.  Both
``+`` and ``·`` are union (with 0 = a distinguished empty bottom and
1 = ∅).  We follow the standard formulation where elements are
``None`` (zero) or frozensets of tokens.
"""

from __future__ import annotations

from repro.semiring.base import Semiring

LineageValue = frozenset[object] | None


class LineageSemiring(Semiring[LineageValue]):
    """Which-provenance: the set of all contributing tokens."""

    name = "lineage"
    idempotent_add = True

    @property
    def zero(self) -> LineageValue:
        return None

    @property
    def one(self) -> LineageValue:
        return frozenset()

    def add(self, left: LineageValue, right: LineageValue) -> LineageValue:
        if left is None:
            return right
        if right is None:
            return left
        return left | right

    def multiply(self, left: LineageValue, right: LineageValue) -> LineageValue:
        if left is None or right is None:
            return None
        return left | right

    def token(self, value: object) -> LineageValue:
        """Annotation of a base tuple carrying ``value`` as its token."""
        return frozenset((value,))


#: Shared instance.
LINEAGE = LineageSemiring()
