"""The why-provenance semiring: sets of witnesses (sets of sets of tokens).

A *witness* is a set of base tuples sufficient to derive the output tuple;
why-provenance keeps every witness.  ``+`` is union of witness sets, ``·``
is pairwise union of witnesses: ``A · B = {a ∪ b | a ∈ A, b ∈ B}``.

This is the closest classical analogue of the paper's citation polynomials
with idempotent ``+``/``·``: each monomial of a citation corresponds to a
witness built from views instead of tuples.
"""

from __future__ import annotations

from repro.semiring.base import Semiring

Witness = frozenset[object]
WhyValue = frozenset[Witness]


class WhySemiring(Semiring[WhyValue]):
    """Witness-set provenance."""

    name = "why"
    idempotent_add = True

    @property
    def zero(self) -> WhyValue:
        return frozenset()

    @property
    def one(self) -> WhyValue:
        return frozenset((frozenset(),))

    def add(self, left: WhyValue, right: WhyValue) -> WhyValue:
        return left | right

    def multiply(self, left: WhyValue, right: WhyValue) -> WhyValue:
        return frozenset(a | b for a in left for b in right)

    def token(self, value: object) -> WhyValue:
        """Annotation of a base tuple: one singleton witness."""
        return frozenset((frozenset((value,)),))

    def minimized(self, value: WhyValue) -> WhyValue:
        """Drop non-minimal witnesses (the *minimal why-provenance*).

        A witness is redundant when a strict subset of it is also a
        witness.  This mirrors the citation order-based absorption of
        Section 3.4: dominated monomials are removed.
        """
        return frozenset(
            witness for witness in value
            if not any(other < witness for other in value)
        )


#: Shared instance.
WHY = WhySemiring()
