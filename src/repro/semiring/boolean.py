"""The Boolean semiring ``({F, T}, ∨, ∧, F, T)``.

Annotating tuples with Booleans and evaluating a query computes ordinary
set-semantics membership: the homomorphism target of every provenance
polynomial (specialize tokens to truth values).
"""

from __future__ import annotations

from repro.semiring.base import Semiring


class BooleanSemiring(Semiring[bool]):
    """Set-semantics membership semiring."""

    name = "boolean"
    idempotent_add = True

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, left: bool, right: bool) -> bool:
        return left or right

    def multiply(self, left: bool, right: bool) -> bool:
        return left and right


#: Shared instance.
BOOLEAN = BooleanSemiring()
