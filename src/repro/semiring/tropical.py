"""The tropical (min-plus) semiring ``(ℕ ∪ {∞}, min, +, ∞, 0)``.

Annotating tuples with costs and evaluating a query computes the cheapest
derivation of each output tuple.  Included because the paper's ``+R`` with a
*min over an order* interpretation (Section 3.4) is exactly a tropical-style
absorption — tests cross-check the citation order machinery against it.
"""

from __future__ import annotations

import math

from repro.semiring.base import Semiring


class TropicalSemiring(Semiring[float]):
    """Min-plus cost semiring."""

    name = "tropical"
    idempotent_add = True

    @property
    def zero(self) -> float:
        return math.inf

    @property
    def one(self) -> float:
        return 0.0

    def add(self, left: float, right: float) -> float:
        return min(left, right)

    def multiply(self, left: float, right: float) -> float:
        return left + right


#: Shared instance.
TROPICAL = TropicalSemiring()
