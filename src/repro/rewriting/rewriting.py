"""The :class:`Rewriting` result object.

A rewriting bundles the rewritten query (over view and base atoms), the
view applications with their λ-parameter bindings, the uncovered base
atoms, and the metrics the paper's preference model ranks by (Section 2.3):
total vs partial, number of views, residual (non-absorbed) comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cq.atoms import RelationalAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Term

if TYPE_CHECKING:
    from repro.views.citation_view import CitationView


@dataclass(frozen=True)
class ViewApplication:
    """One view atom inside a rewriting.

    ``parameter_terms`` aligns with the view's λ-parameters: a
    :class:`~repro.cq.terms.Constant` means the parameter was absorbed
    from a query comparison (the paper's ``V4(F,N,Ty)("gpcr")``); a
    variable means the parameter stays free and takes a value per binding
    at citation time (the paper's ``V1`` in rewriting ``Q1``).
    """

    view: "CitationView"
    atom: RelationalAtom
    parameter_terms: tuple[Term, ...]

    @property
    def is_fully_instantiated(self) -> bool:
        """All λ-parameters bound to constants (Example 3.4's premise)."""
        return all(isinstance(t, Constant) for t in self.parameter_terms)

    @property
    def absorbed_parameter_count(self) -> int:
        return sum(1 for t in self.parameter_terms if isinstance(t, Constant))

    def __repr__(self) -> str:
        if self.parameter_terms:
            params = ", ".join(repr(t) for t in self.parameter_terms)
            return f"{self.atom!r}({params})"
        return repr(self.atom)


@dataclass(frozen=True)
class Rewriting:
    """A validated rewriting of a query using citation views (Def 2.2)."""

    #: The rewritten query: atoms over views and (for partial rewritings)
    #: base relations, plus residual comparisons.
    query: ConjunctiveQuery
    #: View applications, in body order.
    applications: tuple[ViewApplication, ...]
    #: Base atoms left uncovered (empty for total rewritings).
    uncovered_atoms: tuple[RelationalAtom, ...]
    #: The expansion (views unfolded), cached for reuse.
    expansion: ConjunctiveQuery = field(compare=False)

    # -- classification (Section 2.2 / 2.3) ------------------------------------

    @property
    def is_total(self) -> bool:
        """Total: subgoals contain only views and comparison predicates."""
        return not self.uncovered_atoms

    @property
    def is_partial(self) -> bool:
        return bool(self.uncovered_atoms)

    @property
    def view_count(self) -> int:
        """Number of view atoms (the paper prefers fewer — Example 2.3)."""
        return len(self.applications)

    @property
    def uncovered_count(self) -> int:
        """Number of base-relation subgoals (Example 3.7's C_R count)."""
        return len(self.uncovered_atoms)

    @property
    def absorbed_parameter_count(self) -> int:
        """λ-parameters bound to constants across all applications."""
        return sum(a.absorbed_parameter_count for a in self.applications)

    @property
    def residual_comparison_count(self) -> int:
        """Selections *not* absorbed into λ-parameters.

        Counts the remaining comparison atoms plus constants sitting in
        non-λ positions of view atoms (a constant inlined into a view
        column is a selection over the view's output, exactly the
        "remaining comparison predicate" of Example 2.2's ``Q1``).
        """
        count = len(self.query.comparisons)
        for application in self.applications:
            lambda_positions = set(application.view.parameter_positions())
            for position, term in enumerate(application.atom.terms):
                if position in lambda_positions:
                    continue
                if isinstance(term, Constant):
                    count += 1
        return count

    @property
    def is_fully_instantiated(self) -> bool:
        """Every λ-parameter of every used view bound to a constant.

        Example 3.4: under idempotent ``+``/``Agg`` such a rewriting yields
        one citation for the whole result set.
        """
        return all(a.is_fully_instantiated for a in self.applications)

    def sort_key(self) -> tuple:
        """Deterministic preference-flavoured ordering for display.

        Total first, then fewer residual comparisons, fewer views, fewer
        uncovered atoms, finally repr for stability.  (The *semantic*
        preference model lives in :mod:`repro.citation.order`.)
        """
        return (
            self.is_partial,
            self.residual_comparison_count,
            self.view_count,
            self.uncovered_count,
            repr(self.query),
        )

    def __repr__(self) -> str:
        kind = "total" if self.is_total else "partial"
        return f"Rewriting<{kind}>({self.query!r})"
