"""Enumeration of all rewritings of a query using citation views.

The engine implements the search described in DESIGN.md:

1. normalize and minimize the input query (equality propagation, core);
2. generate per-view :class:`~repro.rewriting.descriptors.CoverageDescriptor`s;
3. combine descriptors over *disjoint* subsets of the query's subgoals by
   backtracking over atom indices — at each uncovered atom either apply a
   descriptor whose coverage starts there or leave the atom uncovered
   (base relation subgoal of a partial rewriting);
4. validate each candidate against Definition 2.2: expansion equivalence,
   no removable subgoal, and maximality (no descriptor applies to the
   uncovered remainder while preserving equivalence).

Definition 3.3 sums citations over *all* rewritings, so the engine
enumerates exhaustively by default; ``max_rewritings`` bounds the search
for the scaling benchmarks (E8), which measure precisely how fast
exhaustive enumeration grows.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cq.containment import normalize_query
from repro.cq.minimization import minimize
from repro.cq.query import ConjunctiveQuery
from repro.errors import RewritingError
from repro.rewriting.descriptors import CoverageDescriptor, descriptors_for
from repro.rewriting.expansion import expand_query
from repro.rewriting.rewriting import Rewriting, ViewApplication
from repro.rewriting.validity import (
    has_removable_subgoal,
    is_equivalent_rewriting,
)
from repro.util.naming import NameSupply
from repro.views.registry import ViewRegistry


class RewritingEngine:
    """Enumerates Definition 2.2 rewritings of queries over a registry.

    Parameters
    ----------
    registry:
        The citation views available for rewriting.
    include_partial:
        When False, only total rewritings are returned.
    validate:
        When False, skip the (expensive) Def 2.2 equivalence/minimality
        validation — used by the ablation benchmark E10 to measure the
        validation cost; generation is still sound for the common case.
    max_rewritings:
        Optional cap on the number of *validated* rewritings returned.
    """

    def __init__(
        self,
        registry: ViewRegistry,
        include_partial: bool = True,
        validate: bool = True,
        max_rewritings: int | None = None,
    ) -> None:
        self.registry = registry
        self.include_partial = include_partial
        self.validate = validate
        self.max_rewritings = max_rewritings

    # ------------------------------------------------------------------

    def rewrite(self, query: ConjunctiveQuery) -> list[Rewriting]:
        """All valid rewritings of ``query``, deterministically ordered.

        Ordering: total before partial, then fewer residual comparisons,
        fewer views, fewer uncovered atoms (the display order suggested by
        the paper's Section 2.3 discussion — the *semantic* preference
        model is in :mod:`repro.citation.order`).
        """
        if query.is_parameterized:
            raise RewritingError(
                "rewrite expects an unparameterized user query; instantiate "
                "λ-parameters first"
            )
        normalized, satisfiable = normalize_query(query)
        if not satisfiable:
            return []
        normalized = minimize(normalized)
        normalized.check_safety()

        supply = NameSupply(v.name for v in normalized.variables())
        descriptors: list[CoverageDescriptor] = []
        for view in self.registry:
            descriptors.extend(descriptors_for(normalized, view, supply))

        atom_count = len(normalized.atoms)
        by_min_index: dict[int, list[CoverageDescriptor]] = {}
        for descriptor in descriptors:
            by_min_index.setdefault(min(descriptor.covered), []).append(
                descriptor
            )

        results: list[Rewriting] = []
        seen: set[tuple] = set()

        def build(
            chosen: list[CoverageDescriptor], uncovered: list[int]
        ) -> None:
            if uncovered and not self.include_partial:
                return
            candidate = self._assemble(normalized, chosen, uncovered)
            key = (
                tuple(sorted(repr(atom) for atom in candidate.atoms)),
                tuple(sorted(repr(c) for c in candidate.comparisons)),
                tuple(repr(t) for t in candidate.head),
            )
            if key in seen:
                return
            seen.add(key)
            rewriting = self._validate(
                normalized, candidate, chosen, uncovered, descriptors
            )
            if rewriting is not None:
                results.append(rewriting)

        def assign(
            index: int,
            chosen: list[CoverageDescriptor],
            covered: frozenset[int],
            uncovered: list[int],
        ) -> None:
            if (self.max_rewritings is not None
                    and len(results) >= self.max_rewritings):
                return
            if index == atom_count:
                build(chosen, uncovered)
                return
            if index in covered:
                assign(index + 1, chosen, covered, uncovered)
                return
            for descriptor in by_min_index.get(index, ()):
                if descriptor.covered & covered:
                    continue
                assign(
                    index + 1,
                    chosen + [descriptor],
                    covered | descriptor.covered,
                    uncovered,
                )
            # Leave this atom uncovered (partial / identity branch).
            assign(index + 1, chosen, covered, uncovered + [index])

        assign(0, [], frozenset(), [])
        results.sort(key=Rewriting.sort_key)
        if self.max_rewritings is not None:
            results = results[: self.max_rewritings]
        return results

    # ------------------------------------------------------------------

    def _assemble(
        self,
        query: ConjunctiveQuery,
        chosen: Sequence[CoverageDescriptor],
        uncovered: Sequence[int],
    ) -> ConjunctiveQuery:
        atoms = [descriptor.view_atom for descriptor in chosen]
        atoms.extend(query.atoms[i] for i in uncovered)
        return ConjunctiveQuery(
            query.name, query.head, atoms, query.comparisons
        )

    def _validate(
        self,
        query: ConjunctiveQuery,
        candidate: ConjunctiveQuery,
        chosen: Sequence[CoverageDescriptor],
        uncovered: Sequence[int],
        descriptors: Sequence[CoverageDescriptor],
    ) -> Rewriting | None:
        try:
            candidate.check_safety()
        except Exception:
            return None
        if self.validate:
            if not is_equivalent_rewriting(candidate, query, self.registry):
                return None
            if has_removable_subgoal(candidate, query, self.registry):
                return None
            if self._coverage_extendable(
                query, chosen, uncovered, descriptors
            ):
                return None
        expansion = expand_query(candidate, self.registry)
        applications = tuple(
            ViewApplication(
                descriptor.view, descriptor.view_atom,
                descriptor.parameter_terms,
            )
            for descriptor in chosen
        )
        uncovered_atoms = tuple(query.atoms[i] for i in uncovered)
        return Rewriting(candidate, applications, uncovered_atoms, expansion)

    def _coverage_extendable(
        self,
        query: ConjunctiveQuery,
        chosen: Sequence[CoverageDescriptor],
        uncovered: Sequence[int],
        descriptors: Sequence[CoverageDescriptor],
    ) -> bool:
        """Def 2.2 condition 4: can a view replace uncovered base subgoals?

        True when some descriptor fits entirely inside the uncovered
        remainder and adding it still yields an equivalent query — the
        candidate is then not maximally covered and must be rejected.
        """
        if not uncovered:
            return False
        uncovered_set = set(uncovered)
        for descriptor in descriptors:
            if not descriptor.covered.issubset(uncovered_set):
                continue
            extended_uncovered = [
                i for i in uncovered if i not in descriptor.covered
            ]
            extended = self._assemble(
                query, list(chosen) + [descriptor], extended_uncovered
            )
            if is_equivalent_rewriting(extended, query, self.registry):
                return True
        return False


def enumerate_rewritings(
    query: ConjunctiveQuery,
    registry: ViewRegistry,
    include_partial: bool = True,
    validate: bool = True,
    max_rewritings: int | None = None,
) -> list[Rewriting]:
    """Convenience wrapper around :class:`RewritingEngine`."""
    engine = RewritingEngine(
        registry,
        include_partial=include_partial,
        validate=validate,
        max_rewritings=max_rewritings,
    )
    return engine.rewrite(query)
