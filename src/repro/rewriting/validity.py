"""Definition 2.2 validity checks for candidate rewritings.

A rewriting ``Q'`` of ``Q`` using views ``V`` must satisfy:

1. subgoals are relation names, views, or comparison predicates —
   guaranteed by construction;
2. ``Q'`` is equivalent to ``Q`` — checked on the expansion;
3. no subgoal of ``Q'`` can be removed while preserving equivalence;
4. no subset of base-relation subgoals of ``Q'`` can be replaced by a view
   while preserving equivalence (maximal view coverage).

Note on (4): the paper lists ``Q1 = V1,V2`` as a rewriting in Example 2.3
even though ``V5`` covers the union of their expansions, so the
"replaceable subset" condition applies to *base-relation* subgoals only —
otherwise ``Q1``–``Q3`` would be invalid and the example's preference
discussion moot.  DESIGN.md records this reading.
"""

from __future__ import annotations

from repro.cq.containment import are_equivalent
from repro.cq.query import ConjunctiveQuery
from repro.rewriting.expansion import expand_query
from repro.views.registry import ViewRegistry


def is_equivalent_rewriting(
    candidate: ConjunctiveQuery,
    query: ConjunctiveQuery,
    registry: ViewRegistry,
) -> bool:
    """Condition 2: the candidate's expansion is equivalent to the query."""
    return are_equivalent(expand_query(candidate, registry), query)


def has_removable_subgoal(
    candidate: ConjunctiveQuery,
    query: ConjunctiveQuery,
    registry: ViewRegistry,
) -> bool:
    """Condition 3 violation: some subgoal (atom or comparison) is
    removable while preserving equivalence to the original query."""
    for index in range(len(candidate.atoms)):
        reduced = candidate.drop_atom(index)
        try:
            reduced.check_safety()
        except Exception:
            continue
        if are_equivalent(expand_query(reduced, registry), query):
            return True
    for index in range(len(candidate.comparisons)):
        reduced = candidate.drop_comparison(index)
        if are_equivalent(expand_query(reduced, registry), query):
            return True
    return False


def check_definition_2_2(
    candidate: ConjunctiveQuery,
    query: ConjunctiveQuery,
    registry: ViewRegistry,
) -> bool:
    """Conditions 2 and 3 of Definition 2.2 (equivalence, non-redundancy).

    Condition 4 (maximal view coverage) needs the descriptor machinery and
    is enforced by :class:`~repro.rewriting.engine.RewritingEngine` during
    enumeration, where applicable descriptors are already known.
    """
    if not is_equivalent_rewriting(candidate, query, registry):
        return False
    return not has_removable_subgoal(candidate, query, registry)
