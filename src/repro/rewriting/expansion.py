"""View expansion: unfolding view atoms back to base relations.

Equivalence of a rewriting to the original query (Def 2.2) is checked on
its *expansion*: each view atom ``V(t1..tk)`` is replaced by the view's
body, with head variables substituted by ``t1..tk`` and existential
variables renamed fresh.  Repeated head variables that meet distinct terms
contribute equality comparisons.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Term, Variable
from repro.errors import RewritingError
from repro.relational.expressions import ComparisonOp
from repro.util.naming import NameSupply
from repro.views.registry import ViewRegistry


def expand_atom(
    atom: RelationalAtom,
    registry: ViewRegistry,
    supply: NameSupply,
) -> tuple[list[RelationalAtom], list[ComparisonAtom]]:
    """Unfold one view atom into base atoms plus induced comparisons."""
    view = registry.get(atom.relation)
    definition = view.view
    if atom.arity != len(definition.head):
        raise RewritingError(
            f"view atom {atom!r} has arity {atom.arity}, view head has "
            f"{len(definition.head)}"
        )
    substitution: dict[Variable, Term] = {}
    equalities: list[ComparisonAtom] = []
    for head_term, actual in zip(definition.head, atom.terms):
        if isinstance(head_term, Constant):
            if isinstance(actual, Constant):
                if head_term != actual:
                    # Unsatisfiable: the view can never produce this atom.
                    equalities.append(
                        ComparisonAtom(head_term, ComparisonOp.EQ, actual)
                    )
            else:
                equalities.append(
                    ComparisonAtom(actual, ComparisonOp.EQ, head_term)
                )
            continue
        bound = substitution.get(head_term)
        if bound is None:
            substitution[head_term] = actual
        elif bound != actual:
            equalities.append(ComparisonAtom(bound, ComparisonOp.EQ, actual))
    # Existential view variables get fresh names.
    for var in definition.body_variables():
        if var not in substitution:
            substitution[var] = Variable(supply.fresh(hint=f"_{var.name}"))
    atoms = [body_atom.substitute(substitution) for body_atom in definition.atoms]
    comparisons = [c.substitute(substitution) for c in definition.comparisons]
    comparisons.extend(equalities)
    return atoms, comparisons


def expand_query(
    query: ConjunctiveQuery,
    registry: ViewRegistry,
    avoid: Iterable[str] = (),
) -> ConjunctiveQuery:
    """Expand every view atom of ``query`` to base relations.

    Atoms over base relations (or unknown names) pass through unchanged,
    so partial rewritings expand correctly.
    """
    names = {v.name for v in query.variables()}
    names.update(avoid)
    supply = NameSupply(names)
    atoms: list[RelationalAtom] = []
    comparisons: list[ComparisonAtom] = list(query.comparisons)
    for atom in query.atoms:
        if atom.relation in registry:
            expanded_atoms, expanded_comparisons = expand_atom(
                atom, registry, supply
            )
            atoms.extend(expanded_atoms)
            comparisons.extend(expanded_comparisons)
        else:
            atoms.append(atom)
    return ConjunctiveQuery(
        query.name, query.head, atoms, comparisons, query.parameters
    )


# Public alias used by the package __init__ (reads better at call sites
# that expand Rewriting.query objects).
expand_rewriting = expand_query
