"""Coverage descriptors: the ways one view can cover query subgoals.

A :class:`CoverageDescriptor` records a *total* mapping τ from a view's
body atoms onto atoms of the (normalized) query: every view body atom maps
to a query atom of the same relation, view variables map consistently to
query terms, and view constants/comparisons are honoured by the query.
The covered query atoms are the image of the mapping.

Key soundness conditions (MiniCon-style), enforced during generation:

- a view *existential* variable may only map to a query variable that is
  local to the covered atoms — it must not occur in the query head, in a
  comparison, in a λ-parameter, or in any uncovered atom; otherwise the
  rewriting would lose access to it;
- the view's own body comparisons, under τ, must be entailed by the
  query's comparisons (else the view instance misses needed tuples);
- a query constant can only be matched by a view variable (which then
  binds to the constant — λ-parameter absorption happens exactly here) or
  by the same view constant.

Every descriptor later goes through a full expansion-equivalence check, so
these conditions prune, they do not need to be complete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cq.atoms import RelationalAtom
from repro.cq.containment import ComparisonClosure
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Term, Variable
from repro.util.naming import NameSupply
from repro.views.citation_view import CitationView


@dataclass(frozen=True)
class CoverageDescriptor:
    """One way a view covers a subset of query atoms.

    Attributes
    ----------
    view:
        The citation view.
    covered:
        Indices (into the normalized query's atom list) of covered atoms.
    view_atom:
        The atom ``V(τ(Y))`` to place in the rewriting body.
    parameter_terms:
        τ-images of the view's λ-parameters, aligned with
        ``view.parameters``; a :class:`Constant` here means the comparison
        was absorbed as a parameter value (Example 2.2).
    """

    view: CitationView
    covered: frozenset[int]
    view_atom: RelationalAtom
    parameter_terms: tuple[Term, ...]

    @property
    def absorbed_parameter_count(self) -> int:
        """How many λ-parameters were bound to constants."""
        return sum(
            1 for term in self.parameter_terms if isinstance(term, Constant)
        )

    def __repr__(self) -> str:
        covered = sorted(self.covered)
        return f"Descriptor({self.view_atom!r} covers {covered})"


def _protected_variables(query: ConjunctiveQuery) -> set[Variable]:
    """Query variables that must survive into the rewriting."""
    protected: set[Variable] = set(query.head_variables())
    protected.update(query.parameters)
    for comparison in query.comparisons:
        protected.update(comparison.variables())
    return protected


def _try_map_atom(
    view_atom: RelationalAtom,
    query_atom: RelationalAtom,
    mapping: dict[Variable, Term],
) -> dict[Variable, Term] | None:
    """Extend τ so that ``τ(view_atom) == query_atom``; None on conflict."""
    if view_atom.relation != query_atom.relation:
        return None
    if view_atom.arity != query_atom.arity:
        return None
    extended = dict(mapping)
    for view_term, query_term in zip(view_atom.terms, query_atom.terms):
        if isinstance(view_term, Constant):
            # View constant must appear verbatim in the query atom.
            if view_term != query_term:
                return None
        else:
            bound = extended.get(view_term)
            if bound is None:
                extended[view_term] = query_term
            elif bound != query_term:
                return None
    return extended


def _atom_occurrences(
    query: ConjunctiveQuery,
) -> dict[Variable, set[int]]:
    """Map each query variable to the indices of atoms that use it."""
    occurrences: dict[Variable, set[int]] = {}
    for index, atom in enumerate(query.atoms):
        for var in atom.variables():
            occurrences.setdefault(var, set()).add(index)
    return occurrences


def descriptors_for(
    query: ConjunctiveQuery,
    view: CitationView,
    supply: NameSupply | None = None,
) -> list[CoverageDescriptor]:
    """Enumerate all coverage descriptors of ``view`` over ``query``.

    ``query`` should be normalized (equality constants propagated inline);
    :class:`~repro.rewriting.engine.RewritingEngine` does this.
    """
    definition = view.view
    view_body = definition.atoms
    if not view_body:
        return []
    query_atoms = query.atoms
    if supply is None:
        supply = NameSupply(v.name for v in query.variables())

    protected = _protected_variables(query)
    occurrences = _atom_occurrences(query)
    query_closure = ComparisonClosure(query.comparisons)
    distinguished = set(definition.head_variables())

    results: list[CoverageDescriptor] = []
    seen: set[tuple[frozenset[int], RelationalAtom]] = set()

    def finish(mapping: dict[Variable, Term], covered: frozenset[int]) -> None:
        # Existential view variables must map to local query variables.
        for view_var, query_term in mapping.items():
            if view_var in distinguished:
                continue
            if isinstance(query_term, Constant):
                # An existential pinned to a constant restricts the view
                # instance below the query subgoals; the expansion check
                # would reject it, prune now.
                return
            if query_term in protected:
                return
            if not occurrences.get(query_term, set()).issubset(covered):
                return
        # Also: two distinct existential view vars mapped to the same query
        # variable is fine (the expansion only gets *more* constrained ...
        # actually less); rely on the expansion-equivalence check.
        # View body comparisons must be entailed by the query.
        for comparison in definition.comparisons:
            mapped = comparison.substitute(mapping)
            if mapped.is_ground:
                if not mapped.evaluate_ground():
                    return
            elif not query_closure.entails(mapped):
                return
        # Build the view atom: head terms under τ (head vars always occur
        # in the body of a safe query, hence are mapped).
        head_terms = []
        for term in definition.head:
            if isinstance(term, Constant):
                head_terms.append(term)
            else:
                head_terms.append(mapping[term])
        view_atom = RelationalAtom(view.name, head_terms)
        key = (covered, view_atom)
        if key in seen:
            return
        seen.add(key)
        parameter_terms = tuple(
            mapping[param] for param in definition.parameters
        )
        results.append(
            CoverageDescriptor(view, covered, view_atom, parameter_terms)
        )

    def assign(index: int, mapping: dict[Variable, Term],
               covered: frozenset[int]) -> None:
        if index == len(view_body):
            finish(mapping, covered)
            return
        body_atom = view_body[index]
        for query_index, query_atom in enumerate(query_atoms):
            extended = _try_map_atom(body_atom, query_atom, mapping)
            if extended is not None:
                assign(index + 1, extended, covered | {query_index})

    assign(0, {}, frozenset())
    return results
