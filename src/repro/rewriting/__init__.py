"""Query rewriting using citation views (paper, Section 2.2).

Given a user query and a :class:`~repro.views.ViewRegistry`, the engine
enumerates all rewritings per Definition 2.2: bodies over view atoms, base
atoms and comparisons; equivalent to the query; no removable subgoal; no
base subgoals replaceable by a view.  Comparison predicates matching a
view's λ-term are absorbed as parameter values (Example 2.2).

The algorithm is MiniCon-flavoured: per-view *coverage descriptors*
(:mod:`repro.rewriting.descriptors`) are combined over disjoint subsets of
the query's subgoals (:mod:`repro.rewriting.engine`), candidates are
*expanded* — views unfolded to base relations
(:mod:`repro.rewriting.expansion`) — and validated against Definition 2.2
(:mod:`repro.rewriting.validity`).
"""

from repro.rewriting.descriptors import CoverageDescriptor, descriptors_for
from repro.rewriting.expansion import expand_rewriting
from repro.rewriting.rewriting import Rewriting, ViewApplication
from repro.rewriting.engine import RewritingEngine, enumerate_rewritings
from repro.rewriting.validity import check_definition_2_2

__all__ = [
    "CoverageDescriptor",
    "descriptors_for",
    "expand_rewriting",
    "Rewriting",
    "ViewApplication",
    "RewritingEngine",
    "enumerate_rewritings",
    "check_definition_2_2",
]
