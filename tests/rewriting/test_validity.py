"""Direct tests for the Definition 2.2 validity checks."""


from repro.cq.parser import parse_query
from repro.rewriting.validity import (
    check_definition_2_2,
    has_removable_subgoal,
    is_equivalent_rewriting,
)


class TestEquivalence:
    def test_valid_rewriting_accepted(self, registry):
        query = parse_query(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"'
        )
        candidate = parse_query('Q(N, Tx) :- V5(F, N, "gpcr", Tx)')
        assert is_equivalent_rewriting(candidate, query, registry)

    def test_over_general_rewriting_rejected(self, registry):
        query = parse_query(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
        )
        candidate = parse_query("Q(N) :- V1(F, N, Ty)")  # lost selection
        assert not is_equivalent_rewriting(candidate, query, registry)

    def test_over_restrictive_rewriting_rejected(self, registry):
        query = parse_query("Q(N) :- Family(F, N, Ty)")
        candidate = parse_query("Q(N) :- V5(F, N, Ty, Tx)")  # added join
        assert not is_equivalent_rewriting(candidate, query, registry)


class TestRemovability:
    def test_redundant_view_atom_detected(self, registry):
        query = parse_query("Q(N) :- Family(F, N, Ty)")
        candidate = parse_query("Q(N) :- V1(F, N, Ty), V3(F2, N2, Ty2)")
        assert has_removable_subgoal(candidate, query, registry)

    def test_redundant_comparison_detected(self, registry):
        query = parse_query("Q(N) :- Family(F, N, Ty)")
        candidate = parse_query('Q(N) :- V1(F, N, Ty), F != "\x00never"')
        # The comparison filters nothing semantically detectable... the
        # check drops it and tests equivalence against the query.
        assert has_removable_subgoal(candidate, query, registry)

    def test_minimal_candidate_clean(self, registry):
        query = parse_query(
            "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)"
        )
        candidate = parse_query("Q(N, Tx) :- V5(F, N, Ty, Tx)")
        assert not has_removable_subgoal(candidate, query, registry)


class TestFullCheck:
    def test_accepts_paper_rewritings(self, registry):
        query = parse_query(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"'
        )
        for text in (
            'Q(N, Tx) :- V5(F, N, "gpcr", Tx)',
            'Q(N, Tx) :- V4(F, N, "gpcr"), V2(F, Tx)',
            'Q(N, Tx) :- V1(F, N, "gpcr"), V2(F, Tx)',
        ):
            assert check_definition_2_2(
                parse_query(text), query, registry
            ), text

    def test_rejects_wrong_projection(self, registry):
        query = parse_query(
            "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)"
        )
        candidate = parse_query("Q(Tx, N) :- V5(F, N, Ty, Tx)")  # swapped
        assert not check_definition_2_2(candidate, query, registry)
