"""Tests for the rewriting engine (Def 2.2) and the paper's Examples 2.2/2.3."""

import pytest

from repro.cq.containment import are_equivalent
from repro.cq.evaluation import evaluate_query
from repro.cq.parser import parse_query
from repro.errors import RewritingError
from repro.rewriting.engine import RewritingEngine, enumerate_rewritings
from repro.views.registry import ViewRegistry


def rewriting_bodies(rewritings):
    return {
        tuple(sorted(repr(a) for a in r.query.atoms)) for r in rewritings
    }


class TestExample22:
    """Example 2.2: gpcr families that have an introduction page."""

    QUERY = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)'

    def test_paper_rewritings_found(self, registry):
        rewritings = enumerate_rewritings(parse_query(self.QUERY), registry)
        bodies = rewriting_bodies(rewritings)
        # Q1 of the paper: V1 + V2 (constant inlined after normalization).
        assert ('FamilyIntro' not in str(bodies))
        assert ('V1(F, N, "gpcr")', 'V2(F, Tx)') in bodies
        # Q2 of the paper: V4 with the absorbed parameter + V2.
        assert ('V2(F, Tx)', 'V4(F, N, "gpcr")') in bodies

    def test_all_rewritings_total(self, registry):
        rewritings = enumerate_rewritings(parse_query(self.QUERY), registry)
        assert all(r.is_total for r in rewritings)

    def test_q2_more_specific_than_q1(self, registry):
        rewritings = enumerate_rewritings(parse_query(self.QUERY), registry)
        by_body = {
            tuple(sorted(repr(a) for a in r.query.atoms)): r
            for r in rewritings
        }
        q1 = by_body[('V1(F, N, "gpcr")', 'V2(F, Tx)')]
        q2 = by_body[('V2(F, Tx)', 'V4(F, N, "gpcr")')]
        # The paper: Q2 absorbs the comparison into V4's λ-term, Q1 leaves
        # a residual selection on V1's output.
        assert q2.absorbed_parameter_count >= 1
        assert q2.residual_comparison_count == 0
        assert q1.residual_comparison_count == 1


class TestExample23:
    """Example 2.3: name and introduction text of gpcr families."""

    QUERY = ('Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
             'Ty = "gpcr"')

    def test_exactly_the_four_paper_rewritings(self, registry):
        rewritings = enumerate_rewritings(parse_query(self.QUERY), registry)
        assert rewriting_bodies(rewritings) == {
            ('V1(F, N, "gpcr")', 'V2(F, Tx)'),     # Q1
            ('V2(F, Tx)', 'V3(F, N, "gpcr")'),     # Q2
            ('V2(F, Tx)', 'V4(F, N, "gpcr")'),     # Q3
            ('V5(F, N, "gpcr", Tx)',),             # Q4
        }

    def test_q4_preferred_in_display_order(self, registry):
        rewritings = enumerate_rewritings(parse_query(self.QUERY), registry)
        best = rewritings[0]
        # "(i) total, (ii) smallest number of views, (iii) comparison
        # matched by the lambda term."
        assert best.is_total
        assert best.view_count == 1
        assert best.residual_comparison_count == 0
        assert best.applications[0].view.name == "V5"

    def test_rewritings_evaluate_to_query_answer(self, db, registry):
        query = parse_query(self.QUERY)
        expected = sorted(evaluate_query(query, db))
        virtual = registry.materialize(db)
        for rewriting in enumerate_rewritings(query, registry):
            got = sorted(evaluate_query(rewriting.query, db,
                                        virtual=virtual))
            assert got == expected, rewriting


class TestDefinition22Conditions:
    def test_expansions_equivalent(self, registry):
        query = parse_query(TestExample23.QUERY)
        for rewriting in enumerate_rewritings(query, registry):
            assert are_equivalent(rewriting.expansion, query)

    def test_no_redundant_rewriting_emitted(self, registry):
        # A query where a naive cover could use V1 twice redundantly.
        query = parse_query(
            "Q(N) :- Family(F, N, Ty), Family(F, N2, Ty2)"
        )
        rewritings = enumerate_rewritings(query, registry)
        for rewriting in rewritings:
            # Minimization collapses the two atoms; a single view suffices.
            assert rewriting.view_count <= 1

    def test_identity_rewriting_rejected_when_views_apply(self, registry):
        query = parse_query("Q(N) :- Family(F, N, Ty)")
        rewritings = enumerate_rewritings(query, registry)
        assert all(r.view_count > 0 for r in rewritings)

    def test_identity_rewriting_survives_without_views(self, db):
        registry = ViewRegistry(db.schema)  # no views at all
        query = parse_query("Q(N) :- Family(F, N, Ty)")
        rewritings = enumerate_rewritings(query, registry)
        assert len(rewritings) == 1
        assert rewritings[0].view_count == 0
        assert rewritings[0].uncovered_count == 1


class TestPartialRewritings:
    def test_partial_when_no_view_covers_person(self, registry):
        query = parse_query(
            "Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)"
        )
        rewritings = enumerate_rewritings(query, registry)
        assert rewritings, "expected at least one partial rewriting"
        for rewriting in rewritings:
            assert rewriting.is_partial
            uncovered = {a.relation for a in rewriting.uncovered_atoms}
            assert uncovered == {"FC", "Person"}

    def test_include_partial_false_filters(self, registry):
        query = parse_query(
            "Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)"
        )
        rewritings = enumerate_rewritings(
            query, registry, include_partial=False
        )
        assert rewritings == []

    def test_partial_evaluates_correctly(self, db, registry):
        query = parse_query(
            "Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)"
        )
        expected = sorted(evaluate_query(query, db))
        virtual = registry.materialize(db)
        for rewriting in enumerate_rewritings(query, registry):
            got = sorted(
                evaluate_query(rewriting.query, db, virtual=virtual)
            )
            assert got == expected


class TestEngineOptions:
    def test_parameterized_query_rejected(self, registry):
        engine = RewritingEngine(registry)
        with pytest.raises(RewritingError):
            engine.rewrite(
                parse_query("lambda F. Q(F, N) :- Family(F, N, Ty)")
            )

    def test_unsatisfiable_query_has_no_rewritings(self, registry):
        query = parse_query(
            'Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"'
        )
        assert enumerate_rewritings(query, registry) == []

    def test_max_rewritings_cap(self, registry):
        query = parse_query(TestExample23.QUERY)
        rewritings = enumerate_rewritings(query, registry,
                                          max_rewritings=2)
        assert len(rewritings) == 2

    def test_validate_false_is_superset(self, registry):
        query = parse_query(TestExample23.QUERY)
        validated = enumerate_rewritings(query, registry)
        unvalidated = enumerate_rewritings(query, registry, validate=False)
        assert rewriting_bodies(validated) <= rewriting_bodies(unvalidated)

    def test_deterministic_order(self, registry):
        query = parse_query(TestExample23.QUERY)
        first = [repr(r.query) for r in
                 enumerate_rewritings(query, registry)]
        second = [repr(r.query) for r in
                  enumerate_rewritings(query, registry)]
        assert first == second


class TestViewApplicationMetadata:
    def test_fully_instantiated_detection(self, registry):
        query = parse_query(TestExample23.QUERY)
        rewritings = enumerate_rewritings(query, registry)
        v5 = next(r for r in rewritings
                  if r.applications and r.applications[0].view.name == "V5")
        assert v5.is_fully_instantiated  # λTy bound to "gpcr"

    def test_free_parameter_not_fully_instantiated(self, registry):
        query = parse_query("Q(N, Tx) :- Family(F, N, Ty), "
                            "FamilyIntro(F, Tx)")
        rewritings = enumerate_rewritings(query, registry)
        v5 = next(r for r in rewritings
                  if r.applications and r.applications[0].view.name == "V5")
        assert not v5.is_fully_instantiated
