"""Tests for view expansion (unfolding)."""

import pytest

from repro.cq.containment import are_equivalent
from repro.cq.parser import parse_query
from repro.cq.terms import Constant
from repro.errors import RewritingError
from repro.rewriting.expansion import expand_query


class TestExpansion:
    def test_single_view_expansion(self, registry):
        rewriting = parse_query("Q(N) :- V1(F, N, Ty)")
        expanded = expand_query(rewriting, registry)
        assert [a.relation for a in expanded.atoms] == ["Family"]
        assert are_equivalent(
            expanded, parse_query("Q(N) :- Family(F, N, Ty)")
        )

    def test_join_view_expansion(self, registry):
        rewriting = parse_query("Q(N, Tx) :- V5(F, N, Ty, Tx)")
        expanded = expand_query(rewriting, registry)
        assert sorted(a.relation for a in expanded.atoms) == [
            "Family", "FamilyIntro",
        ]

    def test_two_view_atoms_expand_independently(self, registry):
        rewriting = parse_query("Q(F) :- V2(F, Tx1), V2(F, Tx2)")
        expanded = expand_query(rewriting, registry)
        assert len(expanded.atoms) == 2
        assert {a.relation for a in expanded.atoms} == {"FamilyIntro"}

    def test_constant_arguments_propagate(self, registry):
        rewriting = parse_query('Q(N) :- V1(F, N, "gpcr")')
        expanded = expand_query(rewriting, registry)
        assert Constant("gpcr") in expanded.atoms[0].terms

    def test_base_atoms_pass_through(self, registry):
        rewriting = parse_query("Q(N, Pn) :- V1(F, N, Ty), FC(F, C), "
                                "Person(C, Pn, A)")
        expanded = expand_query(rewriting, registry)
        assert sorted(a.relation for a in expanded.atoms) == [
            "FC", "Family", "Person",
        ]

    def test_repeated_head_variable_induces_equality(self, registry):
        # V5(F, N, Ty, Tx) with N == Ty forced by using the same variable.
        rewriting = parse_query("Q(X) :- V5(F, X, X, Tx)")
        expanded = expand_query(rewriting, registry)
        # Family(F, X, X') plus equality X = X' (or direct reuse).
        assert are_equivalent(
            expanded,
            parse_query("Q(X) :- Family(F, X, X), FamilyIntro(F, Tx)"),
        )

    def test_view_body_comparisons_carried(self, db, registry):
        # V3's citation query has comparisons; build a view with one.
        from repro.views.citation_view import CitationView
        from repro.views.registry import ViewRegistry
        gated = CitationView.from_strings(
            view='VG(F, N) :- Family(F, N, Ty), Ty = "gpcr"',
            citation_query="CVG(F) :- Family(F, N, Ty)",
        )
        registry2 = ViewRegistry(db.schema, [gated])
        expanded = expand_query(parse_query("Q(N) :- VG(F, N)"), registry2)
        assert are_equivalent(
            expanded,
            parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"'),
        )

    def test_arity_mismatch_rejected(self, registry):
        with pytest.raises(RewritingError):
            expand_query(parse_query("Q(N) :- V1(F, N)"), registry)

    def test_expansion_equivalence_on_paper_rewritings(self, registry):
        query = parse_query(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'
        )
        for text in [
            'Q1(N, Tx) :- V1(F, N, Ty), V2(F, Tx), Ty = "gpcr"',
            'Q2(N, Tx) :- V3(F, N, Ty), V2(F, Tx), Ty = "gpcr"',
            'Q3(N, Tx) :- V4(F, N, "gpcr"), V2(F, Tx)',
            'Q4(N, Tx) :- V5(F, N, "gpcr", Tx)',
        ]:
            rewriting = parse_query(text)
            assert are_equivalent(expand_query(rewriting, registry), query), text
