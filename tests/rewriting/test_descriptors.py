"""Tests for coverage descriptors."""


from repro.cq.containment import normalize_query
from repro.cq.parser import parse_query
from repro.cq.terms import Constant, Variable
from repro.rewriting.descriptors import descriptors_for
from repro.views.citation_view import CitationView


def normalized(text):
    query, satisfiable = normalize_query(parse_query(text))
    assert satisfiable
    return query


def view(definition, citation=None):
    return CitationView.from_strings(
        view=definition,
        citation_query=citation or definition.replace("V(", "CV(", 1),
    )


class TestBasicCoverage:
    def test_single_atom_coverage(self, registry):
        q = normalized("Q(N) :- Family(F, N, Ty)")
        descriptors = descriptors_for(q, registry.get("V1"))
        assert len(descriptors) == 1
        d = descriptors[0]
        assert d.covered == frozenset({0})
        assert d.view_atom.relation == "V1"
        assert d.parameter_terms == (Variable("F"),)

    def test_no_coverage_for_unrelated_view(self, registry):
        q = normalized("Q(Pn) :- Person(P, Pn, A)")
        assert descriptors_for(q, registry.get("V1")) == []

    def test_multi_atom_view_covers_join(self, registry):
        q = normalized("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)")
        descriptors = descriptors_for(q, registry.get("V5"))
        assert len(descriptors) == 1
        assert descriptors[0].covered == frozenset({0, 1})

    def test_multi_atom_view_needs_join_compatibility(self, registry):
        # Family and FamilyIntro on *different* family ids: V5 cannot cover.
        q = normalized("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(G, Tx)")
        assert descriptors_for(q, registry.get("V5")) == []


class TestParameterAbsorption:
    def test_constant_absorbed_into_lambda(self, registry):
        q = normalized('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        descriptors = descriptors_for(q, registry.get("V4"))
        assert len(descriptors) == 1
        assert descriptors[0].parameter_terms == (Constant("gpcr"),)
        assert descriptors[0].absorbed_parameter_count == 1

    def test_free_parameter_stays_variable(self, registry):
        q = normalized("Q(N) :- Family(F, N, Ty)")
        descriptors = descriptors_for(q, registry.get("V4"))
        assert descriptors[0].parameter_terms == (Variable("Ty"),)
        assert descriptors[0].absorbed_parameter_count == 0


class TestExistentialProtection:
    def test_existential_cannot_map_to_head_variable(self):
        # View projects away B; query needs B in the head.
        v = view("V(A) :- R(A, B)")
        q = normalized("Q(A, B) :- R(A, B)")
        assert descriptors_for(q, v) == []

    def test_existential_cannot_map_to_shared_variable(self):
        # B is shared with another atom not covered by the view.
        v = view("V(A) :- R(A, B)")
        q = normalized("Q(A) :- R(A, B), S(B)")
        assert descriptors_for(q, v) == []

    def test_existential_ok_when_local(self):
        v = view("V(A) :- R(A, B)")
        q = normalized("Q(A) :- R(A, B)")
        assert len(descriptors_for(q, v)) == 1

    def test_existential_cannot_map_to_comparison_variable(self):
        v = view("V(A) :- R(A, B)")
        q = normalized("Q(A) :- R(A, B), B != 3")
        assert descriptors_for(q, v) == []

    def test_existential_cannot_bind_constant(self):
        v = view("V(A) :- R(A, B)")
        q = normalized('Q(A) :- R(A, "x")')
        assert descriptors_for(q, v) == []


class TestViewConstants:
    def test_view_constant_must_match(self):
        v = view('V(A) :- R(A, "x")')
        q_match = normalized('Q(A) :- R(A, "x")')
        q_mismatch = normalized('Q(A) :- R(A, "y")')
        assert len(descriptors_for(q_match, v)) == 1
        assert descriptors_for(q_mismatch, v) == []

    def test_view_comparison_must_be_entailed(self):
        v = view('V(A, B) :- R(A, B), B > 5')
        q_strong = normalized("Q(A) :- R(A, B), B > 7")
        q_weak = normalized("Q(A) :- R(A, B), B > 3")
        assert len(descriptors_for(q_strong, v)) == 1
        assert descriptors_for(q_weak, v) == []


class TestSelfJoins:
    def test_view_usable_twice(self, registry):
        q = normalized(
            "Q(N1, N2) :- Family(F1, N1, Ty1), Family(F2, N2, Ty2)"
        )
        descriptors = descriptors_for(q, registry.get("V1"))
        covered_sets = {d.covered for d in descriptors}
        assert frozenset({0}) in covered_sets
        assert frozenset({1}) in covered_sets

    def test_two_view_atoms_onto_one_query_atom_pruned(self):
        # Both view body atoms can map onto R(A,A) syntactically, but the
        # view's existential B would land on the query's head variable A —
        # and indeed V(A,A)'s expansion R(A,B'),R(B',A) is strictly weaker
        # than R(A,A), so no equivalence-preserving descriptor exists.
        v = view("V(A, C) :- R(A, B), R(B, C)")
        q = normalized("Q(A) :- R(A, A)")
        assert descriptors_for(q, v) == []

    def test_two_view_atoms_cover_query_self_join(self):
        v = view("V(A, C) :- R(A, B), R(B, C)")
        q = normalized("Q(A, C) :- R(A, B), R(B, C)")
        descriptors = descriptors_for(q, v)
        assert any(d.covered == frozenset({0, 1}) for d in descriptors)
