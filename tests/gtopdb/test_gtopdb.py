"""Tests for the GtoPdb substrate: schema, sample, views, generator."""

import pytest

from repro.gtopdb.generator import GtopdbGenerator, generate_database
from repro.gtopdb.schema import gtopdb_schema
from repro.gtopdb.views import paper_registry, paper_views


class TestSchema:
    def test_six_relations(self):
        schema = gtopdb_schema()
        assert set(schema.relation_names) == {
            "Family", "FamilyIntro", "Person", "FC", "FIC", "MetaData",
        }

    def test_keys_match_paper(self):
        schema = gtopdb_schema()
        assert schema.relation("Family").key == ("FID",)
        assert schema.relation("FamilyIntro").key == ("FID",)
        assert schema.relation("Person").key == ("PID",)
        assert schema.relation("FC").key == ("FID", "PID")
        assert schema.relation("MetaData").key == ("Type",)

    def test_foreign_keys_validate(self):
        gtopdb_schema().validate()


class TestSample:
    def test_foreign_keys_hold(self, db):
        db.check_foreign_keys()

    def test_calcitonin_family(self, db):
        row = db.relation("Family").lookup_key(("11",))
        assert row.values == ("11", "Calcitonin", "gpcr")

    def test_metadata_from_paper(self, db):
        values = {row[0]: row[1] for row in db.relation("MetaData")}
        assert values["Owner"] == "Tony Harmar"
        assert values["URL"] == "guidetopharmacology.org"
        assert values["Version"] == "23"

    def test_example_33_family(self, db):
        assert db.relation("Family").lookup_key(("13",)).values == \
            ("13", "b", "gpcr")
        assert db.relation("FamilyIntro").lookup_key(("13",)).values == \
            ("13", "Familyb")

    def test_duplicate_variant(self, db_with_duplicate):
        names = [row[1] for row in db_with_duplicate.relation("Family")]
        assert names.count("Calcitonin") == 2


class TestViews:
    def test_five_views(self):
        assert [v.name for v in paper_views()] == [
            "V1", "V2", "V3", "V4", "V5",
        ]

    def test_fv1_matches_paper(self, db, registry):
        assert registry.get("V1").citation_for(db, ("11",)) == {
            "ID": "11", "Name": "Calcitonin",
            "Committee": ["Hay", "Poyner"],
        }

    def test_fv2_matches_paper(self, db, registry):
        assert registry.get("V2").citation_for(db, ("11",)) == {
            "ID": "11", "Name": "Calcitonin",
            "Text": "The calcitonin peptide family",
            "Contributors": ["Brown", "Smith"],
        }

    def test_fv3_matches_paper(self, db, registry):
        assert registry.get("V3").citation_for(db) == {
            "Owner": "Tony Harmar",
            "URL": "guidetopharmacology.org",
        }

    def test_fv4_nested_structure(self, db, registry):
        record = registry.get("V4").citation_for(db, ("gpcr",))
        assert record["Type"] == "gpcr"
        by_name = {g["Name"]: g["Committee"]
                   for g in record["Contributors"]}
        assert by_name["Calcitonin"] == ["Hay", "Poyner"]
        assert by_name["Calcium-sensing"] == [
            "Bilke", "Conigrave", "Shoback",
        ]

    def test_fv5_credits_contributors_not_committee(self, db, registry):
        record = registry.get("V5").citation_for(db, ("gpcr",))
        by_name = {g["Name"]: g["Committee"]
                   for g in record["Contributors"]}
        # Orexin's intro contributors are Alda & Palmer (not its committee).
        assert by_name["Orexin"] == ["Alda", "Palmer"]

    def test_registry_wraps_schema(self):
        registry = paper_registry()
        assert "Family" in registry.schema


class TestGenerator:
    def test_deterministic(self):
        db1 = generate_database(families=50, seed=42)
        db2 = generate_database(families=50, seed=42)
        assert [r.values for r in db1.relation("Family")] == \
            [r.values for r in db2.relation("Family")]

    def test_seed_changes_output(self):
        db1 = generate_database(families=50, seed=1)
        db2 = generate_database(families=50, seed=2)
        assert [r.values for r in db1.relation("Family")] != \
            [r.values for r in db2.relation("Family")]

    def test_sizes_respected(self):
        db = generate_database(families=80, persons=30)
        assert len(db.relation("Family")) == 80
        assert len(db.relation("Person")) == 30

    def test_foreign_keys_hold(self):
        generate_database(families=60).check_foreign_keys()

    def test_type_skew(self):
        db = generate_database(families=300, types=6, seed=5)
        counts = {}
        for row in db.relation("Family"):
            counts[row[2]] = counts.get(row[2], 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        # Zipf-ish: the largest type clearly dominates the smallest.
        assert ordered[0] >= 3 * ordered[-1]

    def test_intro_fraction(self):
        generator = GtopdbGenerator(families=200, intro_fraction=0.5,
                                    seed=9)
        db = generator.build()
        ratio = len(db.relation("FamilyIntro")) / len(db.relation("Family"))
        assert 0.3 < ratio < 0.7

    def test_views_work_on_generated_data(self, registry):
        db = generate_database(families=40, seed=11)
        record = registry.get("V4").citation_for(db, ("gpcr",))
        assert record["Type"] == "gpcr"
        assert record["Contributors"]

    def test_many_types_get_suffixed_names(self):
        generator = GtopdbGenerator(types=15)
        names = generator.type_names()
        assert len(names) == 15 and len(set(names)) == 15


class TestPortal:
    """The portal path: every page render rides one shared planner."""

    @pytest.fixture()
    def portal(self, db):
        from repro.gtopdb.views import GtoPdbPortal

        return GtoPdbPortal(db)

    def test_page_rows_and_citation_match_direct_path(self, portal, db,
                                                      registry):
        page = portal.page("V1", ("11",))
        assert page.rows == tuple(registry.get("V1").instance(db, ["11"]))
        assert page.citation == registry.get("V1").citation_for(db, ("11",))

    def test_unparameterized_page(self, portal, db):
        page = portal.page("V3")
        assert page.params == ()
        assert page.citation["Owner"] == "Tony Harmar"
        assert len(page.rows) == len(db.relation("Family"))

    def test_page_valuations_enumerate_families(self, portal, db):
        valuations = portal.page_valuations("V1")
        assert len(valuations) == len(db.relation("Family"))
        assert ("11",) in valuations
        assert portal.page_valuations("V3") == ((),)

    def test_render_all_hits_plan_cache(self, portal):
        first = portal.render_all("V1")
        hits_before = portal.planner.hits
        misses_before = portal.planner.misses
        second = portal.render_all("V1")
        assert second == first
        # The warm sweep replans nothing: every page's view and
        # citation queries are cache hits.
        assert portal.planner.misses == misses_before
        assert portal.planner.hits > hits_before

    def test_general_query_citation_delegates_to_engine(self, portal):
        result = portal.cite(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
        )
        assert result.tuples

    def test_refresh_after_mutation(self, portal, db):
        before = portal.page_valuations("V1")
        db.insert("Family", "88", "Fresh", "gpcr")
        try:
            portal.refresh()
            assert len(portal.page_valuations("V1")) == len(before) + 1
        finally:
            db.delete("Family", "88", "Fresh", "gpcr")
            portal.refresh()

    def test_engine_and_options_are_exclusive(self, db):
        from repro.citation.generator import CitationEngine
        from repro.gtopdb.views import GtoPdbPortal

        engine = CitationEngine(db, paper_registry())
        with pytest.raises(TypeError):
            GtoPdbPortal(db, engine=engine, parallelism=2)
