"""Tests for the hard-coded page-view baseline."""

import pytest

from repro.baseline.pageview import PageViewBaseline
from repro.cq.parser import parse_query


@pytest.fixture
def baseline(db, registry):
    instance = PageViewBaseline(db, registry)
    instance.register_all_pages("V1")
    instance.register_all_pages("V2")
    instance.register_page("V3")
    return instance


class TestRegistration:
    def test_one_page_per_family(self, db, registry):
        baseline = PageViewBaseline(db, registry)
        count = baseline.register_all_pages("V1")
        assert count == len(db.relation("Family"))

    def test_unparameterized_view_single_page(self, db, registry):
        baseline = PageViewBaseline(db, registry)
        assert baseline.register_all_pages("V3") == 1

    def test_citation_computed_at_registration(self, db, registry):
        baseline = PageViewBaseline(db, registry)
        citation = baseline.register_page("V1", ("11",))
        assert citation["Committee"] == ["Hay", "Poyner"]


class TestCiting:
    def test_exact_page_match(self, baseline):
        query = parse_query('P(F, N, Ty) :- Family(F, N, Ty), F = "11"')
        citation = baseline.cite(query)
        assert citation["Name"] == "Calcitonin"

    def test_renamed_page_match(self, baseline):
        # Equivalence is modulo variable naming.
        query = parse_query('P(A, B, C) :- Family(A, B, C), A = "11"')
        assert baseline.cite(query) is not None

    def test_projection_not_cited(self, baseline):
        query = parse_query('P(N) :- Family(F, N, Ty), F = "11"')
        assert baseline.cite(query) is None

    def test_join_not_cited(self, baseline):
        query = parse_query(
            "P(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)"
        )
        assert baseline.cite(query) is None

    def test_type_selection_not_cited(self, baseline):
        query = parse_query(
            'P(F, N, Ty) :- Family(F, N, Ty), Ty = "gpcr"'
        )
        assert baseline.cite(query) is None

    def test_whole_table_page(self, baseline):
        query = parse_query("P(F, N, Ty) :- Family(F, N, Ty)")
        citation = baseline.cite(query)
        assert citation == {"Owner": "Tony Harmar",
                            "URL": "guidetopharmacology.org"}


class TestCoverage:
    def test_coverage_fraction(self, baseline):
        queries = [
            parse_query('P(F, N, Ty) :- Family(F, N, Ty), F = "11"'),
            parse_query("P(N) :- Family(F, N, Ty)"),
            parse_query("P(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)"),
            parse_query("P(F, N, Ty) :- Family(F, N, Ty)"),
        ]
        assert baseline.coverage(queries) == pytest.approx(0.5)

    def test_empty_coverage(self, baseline):
        assert baseline.coverage([]) == 0.0

    def test_model_beats_baseline(self, db, registry, baseline,
                                  focused_engine):
        """The paper's motivation: general queries get citations from the
        model but not from hard-coded pages."""
        query = parse_query(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"'
        )
        assert baseline.cite(query) is None
        result = focused_engine.cite(query)
        assert result.records
