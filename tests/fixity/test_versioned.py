"""Tests for versioned databases and version-stamped citations."""

import pytest

from repro.errors import VersionError
from repro.fixity.versioned import VersionedCitationEngine, VersionedDatabase
from repro.gtopdb.schema import gtopdb_schema
from repro.gtopdb.views import paper_registry


@pytest.fixture
def vdb():
    versioned = VersionedDatabase(gtopdb_schema(), initial_tag="genesis")
    versioned.insert("Family", "11", "Calcitonin", "gpcr")
    versioned.insert("Person", "p1", "Hay", "U. Auckland")
    versioned.insert("FC", "11", "p1")
    versioned.commit("r1")
    versioned.insert("Person", "p2", "Poyner", "Aston U.")
    versioned.insert("FC", "11", "p2")
    versioned.commit("r2")
    versioned.delete("FC", "11", "p1")
    versioned.commit("r3")
    return versioned


class TestVersioning:
    def test_versions_ordered(self, vdb):
        tags = [v.tag for v in vdb.versions]
        assert tags == ["genesis", "r1", "r2", "r3"]

    def test_as_of_initial_is_empty(self, vdb):
        assert vdb.as_of("genesis").total_rows() == 0

    def test_as_of_reconstructs_each_state(self, vdb):
        assert len(vdb.as_of("r1").relation("FC")) == 1
        assert len(vdb.as_of("r2").relation("FC")) == 2
        assert len(vdb.as_of("r3").relation("FC")) == 1

    def test_delete_reflected_in_reconstruction(self, vdb):
        fc_r3 = {row.values for row in vdb.as_of("r3").relation("FC")}
        assert fc_r3 == {("11", "p2")}

    def test_resolve_by_number_and_tag(self, vdb):
        assert vdb.resolve("r2") == vdb.resolve(2)
        assert vdb.resolve(None) == vdb.latest

    def test_unknown_version_rejected(self, vdb):
        with pytest.raises(VersionError):
            vdb.resolve("nope")

    def test_delete_absent_rejected(self, vdb):
        with pytest.raises(VersionError):
            vdb.delete("FC", "99", "p9")

    def test_current_reflects_uncommitted_changes(self, vdb):
        vdb.insert("Family", "12", "New", "gpcr")
        assert len(vdb.current().relation("Family")) == 2
        # ... but the last committed version does not.
        assert len(vdb.as_of("r3").relation("Family")) == 1

    def test_reconstruction_cached(self, vdb):
        assert vdb.as_of("r2") is vdb.as_of("r2")


class TestVersionedCitations:
    def test_citations_stamped_with_version(self, vdb):
        engine = VersionedCitationEngine(vdb, paper_registry())
        result = engine.cite("Q(N) :- Family(F, N, Ty)", version="r2")
        assert all(record["Version"] == "r2" for record in result.records)

    def test_old_version_credits_old_committee(self, vdb):
        engine = VersionedCitationEngine(vdb, paper_registry())
        r2 = engine.cite("Q(N) :- Family(F, N, Ty)", version="r2")
        r3 = engine.cite("Q(N) :- Family(F, N, Ty)", version="r3")
        assert "Hay" in str(r2.records)
        assert "Hay" not in str(r3.records)
        assert "Poyner" in str(r3.records)

    def test_default_is_latest(self, vdb):
        engine = VersionedCitationEngine(vdb, paper_registry())
        result = engine.cite("Q(N) :- Family(F, N, Ty)")
        assert all(r["Version"] == "r3" for r in result.records)

    def test_tuple_records_stamped(self, vdb):
        engine = VersionedCitationEngine(vdb, paper_registry())
        result = engine.cite("Q(N) :- Family(F, N, Ty)", version="r1")
        for tc in result.tuples.values():
            assert all(r["Version"] == "r1" for r in tc.records)

    def test_engines_cached_per_version(self, vdb):
        engine = VersionedCitationEngine(vdb, paper_registry())
        engine.cite("Q(N) :- Family(F, N, Ty)", version="r1")
        engine.cite("Q(N) :- Family(F, N, Ty)", version="r1")
        assert len(engine._engines) == 1


class TestVersionedPlannedEvaluation:
    QUERY = "Q(Pn) :- FC(F, C), Person(C, Pn, A)"

    def test_evaluate_matches_reconstruction(self, vdb):
        from repro.cq.evaluation import evaluate_query
        from repro.cq.parser import parse_query

        engine = VersionedCitationEngine(vdb, paper_registry())
        for version in ("r1", "r2", "r3", None):
            reference = evaluate_query(
                parse_query(self.QUERY), vdb.as_of(version)
            )
            assert engine.evaluate(self.QUERY, version) == reference

    def test_repeat_hits_per_version_plan_cache(self, vdb):
        engine = VersionedCitationEngine(vdb, paper_registry())
        engine.evaluate(self.QUERY, "r1")
        planner = engine._engine_for(vdb.resolve("r1")).planner
        misses = planner.misses
        engine.evaluate(self.QUERY, "r1")
        assert planner.misses == misses
        assert planner.hits >= 1
        # A different version plans against its own statistics.
        engine.evaluate(self.QUERY, "r2")
        assert planner.misses == misses

    def test_explain_names_the_version(self, vdb):
        engine = VersionedCitationEngine(vdb, paper_registry())
        rendered = engine.explain(self.QUERY, "r2")
        assert rendered.startswith("as of version 'r2':")

    def test_plan_for_unknown_version_rejected(self, vdb):
        engine = VersionedCitationEngine(vdb, paper_registry())
        with pytest.raises(VersionError):
            engine.plan(self.QUERY, "no-such-version")
