"""Tests for timestamp-as-λ-parameter fixity (Section 4's sketch)."""

import pytest

from repro.citation.generator import CitationEngine
from repro.citation.policy import comprehensive_policy, focused_policy
from repro.citation.tokens import ViewCitationToken
from repro.cq.parser import parse_query
from repro.fixity.temporal import (
    VTAG,
    lift_database,
    lift_registry,
    lift_schema,
    lift_view,
    tag_query,
)
from repro.gtopdb.sample import paper_database
from repro.gtopdb.schema import gtopdb_schema
from repro.gtopdb.views import paper_registry
from repro.relational.database import Database


@pytest.fixture(scope="module")
def snapshots():
    old = Database(gtopdb_schema())
    old.insert("Family", "11", "Calcitonin", "gpcr")
    old.insert("Person", "p1", "Hay", "x")
    old.insert("FC", "11", "p1")
    old.insert("MetaData", "Owner", "Tony Harmar")
    old.insert("MetaData", "URL", "u")
    old.insert("MetaData", "Version", "22")
    return [("2015.1", old), ("2016.2", paper_database())]


@pytest.fixture(scope="module")
def temporal(snapshots):
    return lift_database(snapshots)


@pytest.fixture(scope="module")
def lifted_registry():
    return lift_registry(paper_registry())


class TestLiftSchema:
    def test_vtag_appended(self):
        lifted = lift_schema(gtopdb_schema())
        family = lifted.relation("Family")
        assert family.attribute_names[-1] == VTAG
        assert family.key == ("FID", VTAG)

    def test_unkeyed_relations_stay_unkeyed(self):
        from repro.relational.schema import RelationSchema, Schema
        lifted = lift_schema(Schema([RelationSchema("R", ["a"])]))
        assert lifted.relation("R").key == ()


class TestLiftDatabase:
    def test_rows_tagged(self, temporal):
        tags = {row.values[-1] for row in temporal.relation("Family")}
        assert tags == {"2015.1", "2016.2"}

    def test_same_key_in_two_versions_allowed(self, temporal):
        rows = [
            row for row in temporal.relation("Family")
            if row[0] == "11"
        ]
        assert len(rows) == 2

    def test_empty_snapshot_list_rejected(self):
        with pytest.raises(ValueError):
            lift_database([])


class TestLiftView:
    def test_timestamp_becomes_lambda(self, lifted_registry):
        v1 = lifted_registry.get("V1")
        assert [p.name for p in v1.parameters] == ["F", "T"]
        assert v1.view.head[-1].name == "T"
        assert v1.labels[-1] == VTAG

    def test_unparameterized_view_gains_timestamp(self, lifted_registry):
        v3 = lifted_registry.get("V3")
        assert [p.name for p in v3.parameters] == ["T"]

    def test_fresh_timestamp_variable_avoids_clash(self):
        from repro.views.citation_view import CitationView
        view = CitationView.from_strings(
            view="lambda T. V(T, N) :- Family(T, N, Ty)",
            citation_query="lambda T. CV(T, N) :- Family(T, N, Ty)",
        )
        lifted = lift_view(view)
        names = [p.name for p in lifted.parameters]
        assert len(names) == len(set(names)) == 2

    def test_instantiation_reads_one_version(self, temporal,
                                             lifted_registry):
        v1 = lifted_registry.get("V1")
        assert v1.citation_for(temporal, ("11", "2015.1"))["Committee"] \
            == ["Hay"]
        assert v1.citation_for(temporal, ("11", "2016.2"))["Committee"] \
            == ["Hay", "Poyner"]


class TestTagQuery:
    def test_tagging_appends_constant(self):
        q = parse_query("Q(N) :- Family(F, N, Ty)")
        tagged = tag_query(q, "2016.2")
        assert repr(tagged.atoms[0].terms[-1]) == '"2016.2"'

    def test_citations_vary_per_tag(self, temporal, lifted_registry):
        engine = CitationEngine(temporal, lifted_registry,
                                policy=comprehensive_policy(),
                                database_citation=[])
        q = parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        per_tag = {}
        for tag in ("2015.1", "2016.2"):
            result = engine.cite(tag_query(q, tag))
            tokens = {
                t for tc in result.tuples.values()
                for m in tc.polynomial.monomials() for t in m.tokens()
            }
            per_tag[tag] = tokens
        assert ViewCitationToken("V1", ("11", "2015.1")) \
            in per_tag["2015.1"]
        assert ViewCitationToken("V1", ("11", "2016.2")) \
            in per_tag["2016.2"]
        assert per_tag["2015.1"] != per_tag["2016.2"]

    def test_timestamp_absorbed_like_example_22(self, temporal,
                                                lifted_registry):
        """The tag constant is absorbed into the lifted λ exactly like
        Ty="gpcr" in Example 2.2."""
        from repro.rewriting.engine import enumerate_rewritings
        q = tag_query(parse_query("Q(N) :- Family(F, N, Ty)"), "2016.2")
        rewritings = enumerate_rewritings(q, lifted_registry)
        assert rewritings
        assert all(r.absorbed_parameter_count >= 1 for r in rewritings)

    def test_focused_policy_on_temporal(self, temporal, lifted_registry):
        engine = CitationEngine(
            temporal, lifted_registry,
            policy=focused_policy(lifted_registry),
            database_citation=[],
        )
        q = parse_query(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"'
        )
        result = engine.cite(tag_query(q, "2016.2"))
        assert result.tuples
        # The single preferred citation carries the version parameter.
        monomial = result.aggregate_polynomial.monomials()[0]
        token = monomial.tokens()[0]
        assert token.parameters == ("gpcr", "2016.2")


class TestTemporalCitationEngine:
    @pytest.fixture()
    def engine(self, snapshots):
        from repro.fixity.temporal import TemporalCitationEngine

        return TemporalCitationEngine(
            gtopdb_schema(),
            registry=paper_registry(),
            snapshots=snapshots,
        )

    QUERY = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'

    def test_tags_in_registration_order(self, engine):
        assert engine.tags == ("2015.1", "2016.2")

    def test_duplicate_tag_rejected(self, engine):
        from repro.errors import VersionError

        with pytest.raises(VersionError):
            engine.register_snapshot("2015.1", paper_database())

    def test_unknown_tag_rejected(self, engine):
        from repro.errors import VersionError

        with pytest.raises(VersionError):
            engine.evaluate(self.QUERY, "no-such-tag")

    def test_evaluation_pinned_per_tag(self, engine):
        from repro.cq.evaluation import evaluate_query

        old = engine.evaluate(self.QUERY, "2015.1")
        new = engine.evaluate(self.QUERY, "2016.2")
        assert set(old) == {("Calcitonin",)}
        assert set(new) == set(
            evaluate_query(parse_query(self.QUERY), paper_database())
        )

    def test_plans_cached_per_query_and_tag(self, engine):
        engine.evaluate(self.QUERY, "2015.1")
        misses = engine.planner.misses
        engine.evaluate(self.QUERY, "2015.1")
        assert engine.planner.misses == misses  # warm repeat
        engine.evaluate(self.QUERY, "2016.2")
        assert engine.planner.misses == misses + 1  # new tag, new plan

    def test_snapshot_registration_invalidates(self, engine):
        before = engine.evaluate(self.QUERY, "2015.1")
        extra = Database(gtopdb_schema())
        extra.insert("Family", "77", "Extra", "gpcr")
        loaded = engine.register_snapshot("2017.1", extra)
        assert loaded == 1
        assert set(engine.evaluate(self.QUERY, "2017.1")) == {("Extra",)}
        assert engine.evaluate(self.QUERY, "2015.1") == before

    def test_explain_names_the_tag(self, engine):
        rendered = engine.explain(self.QUERY, "2015.1")
        assert rendered.startswith("as of '2015.1':")
        assert "2015.1" in rendered

    def test_cite_stamps_the_tag(self, engine):
        result = engine.cite(self.QUERY, "2015.1")
        stamped = [r for r in result.records if r.get(VTAG) == "2015.1"]
        assert stamped

    def test_cite_requires_registry(self, snapshots):
        from repro.errors import VersionError
        from repro.fixity.temporal import TemporalCitationEngine

        bare = TemporalCitationEngine(
            gtopdb_schema(), snapshots=snapshots[:1]
        )
        with pytest.raises(VersionError):
            bare.cite(self.QUERY, "2015.1")
