"""Tests for K-relation (annotated) evaluation."""

import pytest

from repro.cq.parser import parse_query
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema
from repro.relational.tuples import Row
from repro.semiring import (
    BOOLEAN,
    COUNTING,
    POLYNOMIAL,
    AnnotatedDatabase,
    evaluate_annotated,
)
from repro.semiring.annotated import row_token_factory


@pytest.fixture
def db():
    schema = Schema([
        RelationSchema("R", ["a", "b"]),
        RelationSchema("S", ["b", "c"]),
    ])
    database = Database(schema)
    database.insert_all("R", [(1, 10), (2, 10)])
    database.insert_all("S", [(10, "x"), (10, "y")])
    return database


class TestPolynomialEvaluation:
    def test_join_multiplies(self, db):
        adb = AnnotatedDatabase(db, POLYNOMIAL)
        adb.annotate_all(lambda r: POLYNOMIAL.token(row_token_factory(r)))
        q = parse_query("Q(A, C) :- R(A, B), S(B, C)")
        result = evaluate_annotated(q, adb)
        annotation = result[(1, "x")]
        assert repr(annotation) == "R(1,10)·S(10,x)"

    def test_projection_adds(self, db):
        adb = AnnotatedDatabase(db, POLYNOMIAL)
        adb.annotate_all(lambda r: POLYNOMIAL.token(row_token_factory(r)))
        q = parse_query("Q(C) :- R(A, B), S(B, C)")
        annotation = evaluate_annotated(q, adb)[("x",)]
        # Two derivations: via R(1,10) and R(2,10).
        assert len(annotation.monomials()) == 2

    def test_self_join_squares(self, db):
        adb = AnnotatedDatabase(db, POLYNOMIAL)
        adb.annotate_all(lambda r: POLYNOMIAL.token(row_token_factory(r)))
        q = parse_query("Q(A) :- R(A, B), R(A, B)")
        annotation = evaluate_annotated(q, adb)[(1,)]
        monomial = annotation.monomials()[0]
        assert monomial.powers == {"R(1,10)": 2}


class TestCountingEvaluation:
    def test_bag_semantics(self, db):
        adb = AnnotatedDatabase(db, COUNTING)
        adb.annotate_all(lambda r: 1)
        q = parse_query("Q(C) :- R(A, B), S(B, C)")
        result = evaluate_annotated(q, adb)
        assert result[("x",)] == 2
        assert result[("y",)] == 2

    def test_multiplicities_multiply(self, db):
        adb = AnnotatedDatabase(db, COUNTING)
        adb.annotate_all(lambda r: 1)
        adb.annotate(Row("R", (1, 10)), 3)
        q = parse_query("Q(C) :- R(A, B), S(B, C)")
        result = evaluate_annotated(q, adb)
        assert result[("x",)] == 4  # 3 (via R(1,10)) + 1 (via R(2,10))


class TestBooleanEvaluation:
    def test_zero_annotated_tuples_vanish(self, db):
        adb = AnnotatedDatabase(db, BOOLEAN)
        adb.annotate_all(lambda r: True)
        adb.annotate(Row("S", (10, "y")), False)
        q = parse_query("Q(C) :- R(A, B), S(B, C)")
        result = evaluate_annotated(q, adb)
        assert ("x",) in result
        assert ("y",) not in result


class TestDefaults:
    def test_unannotated_rows_default_to_one(self, db):
        adb = AnnotatedDatabase(db, COUNTING)
        q = parse_query("Q(A) :- R(A, B)")
        result = evaluate_annotated(q, adb)
        assert result[(1,)] == 1

    def test_annotating_missing_row_rejected(self, db):
        adb = AnnotatedDatabase(db, COUNTING)
        with pytest.raises(KeyError):
            adb.annotate(Row("R", (99, 99)), 5)

    def test_parameterized_query(self, db):
        adb = AnnotatedDatabase(db, COUNTING)
        v = parse_query("lambda A. V(A, B) :- R(A, B)")
        result = evaluate_annotated(v, adb, params=[1])
        assert result == {(1, 10): 1}


class TestUniversality:
    """Evaluating in N[X] then specializing == evaluating directly."""

    def test_commutes_with_counting(self, db):
        adb_poly = AnnotatedDatabase(db, POLYNOMIAL)
        adb_poly.annotate_all(
            lambda r: POLYNOMIAL.token(row_token_factory(r))
        )
        counts = {row_token_factory(r): i + 1
                  for i, r in enumerate(
                      list(db.relation("R")) + list(db.relation("S")))}
        adb_count = AnnotatedDatabase(db, COUNTING)
        adb_count.annotate_all(lambda r: counts[row_token_factory(r)])

        q = parse_query("Q(C) :- R(A, B), S(B, C)")
        via_poly = {
            output: annotation.specialize(COUNTING, counts.__getitem__)
            for output, annotation in evaluate_annotated(q, adb_poly).items()
        }
        direct = evaluate_annotated(q, adb_count)
        assert via_poly == direct
