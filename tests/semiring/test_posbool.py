"""Tests for PosBool[X] and its correspondence with citation absorption."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring import check_semiring_laws
from repro.semiring.posbool import POSBOOL

a, b, c = POSBOOL.token("a"), POSBOOL.token("b"), POSBOOL.token("c")


class TestBasics:
    def test_laws(self):
        samples = [
            POSBOOL.zero, POSBOOL.one, a, b,
            POSBOOL.add(a, b), POSBOOL.multiply(a, b),
        ]
        assert check_semiring_laws(POSBOOL, samples) == []

    def test_absorption(self):
        # a + a·b = a — the defining extra law of PosBool.
        assert POSBOOL.add(a, POSBOOL.multiply(a, b)) == a

    def test_multiplicative_idempotence(self):
        assert POSBOOL.multiply(a, a) == a

    def test_normal_form_is_antichain(self):
        value = POSBOOL.add(
            POSBOOL.multiply(a, b),
            POSBOOL.add(a, POSBOOL.multiply(POSBOOL.multiply(a, b), c)),
        )
        assert value == a

    def test_implication(self):
        ab = POSBOOL.multiply(a, b)
        assert POSBOOL.implied(ab, a)       # a·b ⇒ a
        assert not POSBOOL.implied(a, ab)
        assert POSBOOL.implied(POSBOOL.zero, a)   # false ⇒ anything
        assert POSBOOL.implied(a, POSBOOL.one)    # anything ⇒ true


tokens = st.sampled_from(["x", "y", "z"])
values = st.recursive(
    tokens.map(POSBOOL.token),
    lambda children: st.tuples(children, children).map(
        lambda pair: POSBOOL.add(*pair)
    ) | st.tuples(children, children).map(
        lambda pair: POSBOOL.multiply(*pair)
    ),
    max_leaves=6,
)


class TestProperties:
    @given(values, values)
    @settings(max_examples=100)
    def test_absorption_law(self, p, q):
        assert POSBOOL.add(p, POSBOOL.multiply(p, q)) == p

    @given(values, values, values)
    @settings(max_examples=75)
    def test_distributivity_both_ways(self, p, q, r):
        # PosBool is a distributive lattice: both distributions hold.
        assert POSBOOL.multiply(p, POSBOOL.add(q, r)) == POSBOOL.add(
            POSBOOL.multiply(p, q), POSBOOL.multiply(p, r)
        )
        assert POSBOOL.add(p, POSBOOL.multiply(q, r)) == POSBOOL.multiply(
            POSBOOL.add(p, q), POSBOOL.add(p, r)
        )

    @given(values)
    def test_normal_form_minimal(self, p):
        for implicant in p:
            assert not any(other < implicant for other in p)


class TestCitationCorrespondence:
    """PosBool absorption mirrors why-provenance minimization."""

    def test_matches_why_minimization(self):
        from repro.semiring import WHY
        why_value = WHY.add(
            WHY.token("a"),
            WHY.multiply(WHY.token("a"), WHY.token("b")),
        )
        posbool_value = POSBOOL.add(
            POSBOOL.token("a"),
            POSBOOL.multiply(POSBOOL.token("a"), POSBOOL.token("b")),
        )
        assert WHY.minimized(why_value) == posbool_value
