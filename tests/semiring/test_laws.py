"""Semiring axioms for every shipped semiring."""

import math

import pytest

from repro.semiring import (
    BOOLEAN,
    COUNTING,
    LINEAGE,
    POLYNOMIAL,
    TROPICAL,
    WHY,
    check_semiring_laws,
)

SAMPLES = {
    "boolean": (BOOLEAN, [True, False]),
    "counting": (COUNTING, [0, 1, 2, 5]),
    "tropical": (TROPICAL, [0.0, 1.0, 3.5, math.inf]),
    "lineage": (LINEAGE, [None, frozenset(), frozenset({"a"}),
                          frozenset({"a", "b"})]),
    "why": (WHY, [WHY.zero, WHY.one, WHY.token("a"), WHY.token("b"),
                  WHY.multiply(WHY.token("a"), WHY.token("b")),
                  WHY.add(WHY.token("a"), WHY.token("b"))]),
    "polynomial": (POLYNOMIAL, [
        POLYNOMIAL.zero, POLYNOMIAL.one, POLYNOMIAL.token("x"),
        POLYNOMIAL.token("y"),
        POLYNOMIAL.add(POLYNOMIAL.token("x"), POLYNOMIAL.token("y")),
        POLYNOMIAL.multiply(POLYNOMIAL.token("x"), POLYNOMIAL.token("x")),
    ]),
}


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_semiring_laws(name):
    semiring, samples = SAMPLES[name]
    violations = check_semiring_laws(semiring, samples)
    assert violations == []


@pytest.mark.parametrize("name", ["boolean", "tropical", "lineage", "why"])
def test_idempotent_add_flag_consistent(name):
    semiring, samples = SAMPLES[name]
    assert semiring.idempotent_add
    for sample in samples:
        assert semiring.add(sample, sample) == sample


def test_counting_not_idempotent():
    assert not COUNTING.idempotent_add
    assert COUNTING.add(2, 2) == 4


def test_sum_and_product_fold():
    assert COUNTING.sum([1, 2, 3]) == 6
    assert COUNTING.product([2, 3, 4]) == 24
    assert COUNTING.sum([]) == 0
    assert COUNTING.product([]) == 1


def test_why_minimization_drops_supersets():
    value = WHY.add(WHY.token("a"),
                    WHY.multiply(WHY.token("a"), WHY.token("b")))
    minimized = WHY.minimized(value)
    assert minimized == WHY.token("a")


def test_lineage_token():
    assert LINEAGE.token("t") == frozenset({"t"})
    combined = LINEAGE.multiply(LINEAGE.token("a"), LINEAGE.token("b"))
    assert combined == frozenset({"a", "b"})
