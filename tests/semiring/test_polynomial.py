"""Tests for provenance monomials and polynomials."""

from repro.semiring import BOOLEAN, COUNTING, TROPICAL
from repro.semiring.polynomial import (
    POLYNOMIAL,
    ProvenanceMonomial,
    ProvenancePolynomial,
)


def tok(name):
    return ProvenancePolynomial.token(name)


class TestMonomial:
    def test_from_iterable_counts_multiplicity(self):
        m = ProvenanceMonomial(["x", "y", "x"])
        assert m.powers == {"x": 2, "y": 1}
        assert m.degree == 3

    def test_canonical_order(self):
        m1 = ProvenanceMonomial(["x", "y"])
        m2 = ProvenanceMonomial(["y", "x"])
        assert m1 == m2 and hash(m1) == hash(m2)
        assert repr(m1) == repr(m2)

    def test_multiply_adds_exponents(self):
        m = ProvenanceMonomial(["x"]).multiply(ProvenanceMonomial(["x", "y"]))
        assert m.powers == {"x": 2, "y": 1}

    def test_one(self):
        one = ProvenanceMonomial()
        assert one.is_one
        assert one.multiply(ProvenanceMonomial(["x"])).powers == {"x": 1}

    def test_dropped_exponents(self):
        m = ProvenanceMonomial({"x": 3, "y": 1})
        assert m.dropped_exponents().powers == {"x": 1, "y": 1}

    def test_divides(self):
        small = ProvenanceMonomial({"x": 1})
        big = ProvenanceMonomial({"x": 2, "y": 1})
        assert small.divides(big)
        assert not big.divides(small)

    def test_zero_exponents_dropped(self):
        assert ProvenanceMonomial({"x": 0}).is_one


class TestPolynomial:
    def test_add_merges_coefficients(self):
        p = tok("x").add(tok("x"))
        assert list(p.terms.values()) == [2]

    def test_multiply_distributes(self):
        p = tok("x").add(tok("y")).multiply(tok("z"))
        monomials = {repr(m) for m in p.monomials()}
        assert monomials == {"x·z", "y·z"}

    def test_zero_annihilates(self):
        z = ProvenancePolynomial.zero()
        assert z.multiply(tok("x")).is_zero
        assert z.add(tok("x")) == tok("x")

    def test_one_neutral(self):
        one = ProvenancePolynomial.one()
        assert one.multiply(tok("x")) == tok("x")

    def test_equality_and_hash(self):
        p1 = tok("x").add(tok("y"))
        p2 = tok("y").add(tok("x"))
        assert p1 == p2 and hash(p1) == hash(p2)

    def test_variables(self):
        p = tok("x").multiply(tok("y")).add(tok("z"))
        assert p.variables() == frozenset({"x", "y", "z"})

    def test_repr_shows_coefficients(self):
        p = tok("x").add(tok("x"))
        assert repr(p) == "2·x"

    def test_zero_coefficients_removed(self):
        p = ProvenancePolynomial({ProvenanceMonomial(["x"]): 0})
        assert p.is_zero


class TestSpecialization:
    """Universality of N[X]: evaluation commutes with specialization."""

    def test_boolean_specialization(self):
        # (x·y + z) with x=T, y=F, z=T => T
        p = tok("x").multiply(tok("y")).add(tok("z"))
        value = p.specialize(BOOLEAN, {"x": True, "y": False,
                                       "z": True}.__getitem__)
        assert value is True

    def test_counting_specialization(self):
        # 2x + x·y with x=2, y=3 => 2*2 + 2*3 = 10
        p = tok("x").add(tok("x")).add(tok("x").multiply(tok("y")))
        value = p.specialize(COUNTING, {"x": 2, "y": 3}.__getitem__)
        assert value == 10

    def test_tropical_specialization(self):
        # min(x+y, z) with costs x=1, y=2, z=5 => 3
        p = tok("x").multiply(tok("y")).add(tok("z"))
        value = p.specialize(TROPICAL, {"x": 1.0, "y": 2.0,
                                        "z": 5.0}.__getitem__)
        assert value == 3.0

    def test_exponents_respected(self):
        p = ProvenancePolynomial({ProvenanceMonomial({"x": 2}): 1})
        assert p.specialize(COUNTING, {"x": 3}.__getitem__) == 9

    def test_specialize_zero_and_one(self):
        assert ProvenancePolynomial.zero().specialize(
            COUNTING, lambda t: 1) == 0
        assert ProvenancePolynomial.one().specialize(
            COUNTING, lambda t: 7) == 1


class TestPolynomialSemiring:
    def test_token_constructor(self):
        assert POLYNOMIAL.token("x") == tok("x")

    def test_is_zero(self):
        assert POLYNOMIAL.is_zero(POLYNOMIAL.zero)
        assert not POLYNOMIAL.is_zero(POLYNOMIAL.one)
