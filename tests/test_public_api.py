"""The public API surface: everything advertised must import and work."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("module", [
        "repro.relational", "repro.relational.io", "repro.cq",
        "repro.cq.ucq", "repro.cq.compile", "repro.semiring",
        "repro.views", "repro.rewriting", "repro.citation",
        "repro.citation.explain", "repro.citation.cache",
        "repro.citation.policy_language", "repro.gtopdb", "repro.fixity",
        "repro.fixity.temporal", "repro.workload", "repro.baseline",
        "repro.cli",
    ])
    def test_submodules_importable(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} needs a module docstring"

    def test_subpackage_all_resolvable(self):
        for module_name in ("repro.cq", "repro.semiring", "repro.views",
                            "repro.rewriting", "repro.citation",
                            "repro.workload", "repro.fixity"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module_name}.{name}"


class TestReadmeQuickstart:
    """The README quickstart must actually run."""

    def test_quickstart_snippet(self):
        from repro import CitationEngine
        from repro.gtopdb import paper_database, paper_registry

        db = paper_database()
        engine = CitationEngine(db, paper_registry())
        result = engine.cite('Q(N) :- Family(F,N,Ty), Ty = "gpcr"')
        payload = result.citation()
        assert payload["citations"]

    def test_custom_views_snippet(self):
        from repro import (
            CitationView, Database, RelationSchema, Schema, ViewRegistry,
        )

        schema = Schema([
            RelationSchema("Collection", ["CID", "CName", "Topic"],
                           key=["CID"]),
            RelationSchema("Curator", ["CID", "Name"],
                           key=["CID", "Name"]),
        ])
        view = CitationView.from_strings(
            view="lambda C. VColl(C, N, T) :- Collection(C, N, T)",
            citation_query=(
                "lambda C. CV(C, N, P) :- Collection(C, N, T), "
                "Curator(C, P)"
            ),
            labels=("Collection", "Name", "Curators"),
        )
        registry = ViewRegistry(schema, [view])
        db = Database(schema)
        db.insert("Collection", "c1", "Proteomics", "bio")
        db.insert("Curator", "c1", "Ada")
        from repro import CitationEngine
        result = CitationEngine(db, registry).cite(
            "Q(N) :- Collection(C, N, T)"
        )
        assert result.tuples


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_catching_base_class(self):
        from repro import ReproError, parse_query
        with pytest.raises(ReproError):
            parse_query("not a query at all !!!")
