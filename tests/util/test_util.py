"""Tests for shared utilities: name supply, ordered sets, JSON helpers."""

from repro.util.jsonutil import canonical_json, merge_records, union_records
from repro.util.naming import NameSupply, fresh_variable_name
from repro.util.orderedset import OrderedSet


class TestNameSupply:
    def test_fresh_avoids_collisions(self):
        supply = NameSupply(avoid=["_v0", "_v1"])
        assert supply.fresh() == "_v2"

    def test_hint_used_when_free(self):
        supply = NameSupply(avoid=["x"])
        assert supply.fresh(hint="y") == "y"

    def test_hint_skipped_when_taken(self):
        supply = NameSupply(avoid=["y"])
        name = supply.fresh(hint="y")
        assert name != "y"

    def test_never_repeats(self):
        supply = NameSupply()
        names = {supply.fresh() for __ in range(100)}
        assert len(names) == 100

    def test_reserve(self):
        supply = NameSupply()
        supply.reserve(["_v0"])
        assert supply.fresh() == "_v1"

    def test_fresh_variable_name(self):
        assert fresh_variable_name(["a"], hint="b") == "b"
        assert fresh_variable_name(["b"], hint="b") == "b0"
        assert fresh_variable_name(["b", "b0"], hint="b") == "b1"


class TestOrderedSet:
    def test_insertion_order_preserved(self):
        s = OrderedSet([3, 1, 2, 1])
        assert list(s) == [3, 1, 2]

    def test_membership(self):
        s = OrderedSet("abc")
        assert "a" in s and "z" not in s

    def test_add_discard(self):
        s = OrderedSet()
        s.add(1)
        s.add(1)
        assert len(s) == 1
        s.discard(1)
        s.discard(1)  # no error
        assert len(s) == 0

    def test_union_intersection_difference(self):
        a = OrderedSet([1, 2, 3])
        b = OrderedSet([2, 3, 4])
        assert list(a.union(b)) == [1, 2, 3, 4]
        assert list(a.intersection(b)) == [2, 3]
        assert list(a.difference(b)) == [1]

    def test_equality_with_builtin_set(self):
        assert OrderedSet([1, 2]) == {2, 1}
        assert OrderedSet([1, 2]) == OrderedSet([2, 1])

    def test_hash_order_insensitive(self):
        assert hash(OrderedSet([1, 2])) == hash(OrderedSet([2, 1]))

    def test_copy_independent(self):
        a = OrderedSet([1])
        b = a.copy()
        b.add(2)
        assert 2 not in a


class TestJsonUtil:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_union_records_dedupes(self):
        records = [{"a": 1}, {"a": 1}, {"b": 2}]
        assert union_records(records) == [{"a": 1}, {"b": 2}]

    def test_merge_records_factors_common_fields(self):
        # The paper's Example 3.5 merge.
        left = {"ID": "11", "Name": "Calcitonin",
                "Committee": ["Hay", "Poyner"]}
        right = {"ID": "11", "Name": "Calcitonin",
                 "Text": "The calcitonin peptide family",
                 "Contributors": ["Brown", "Smith"]}
        merged = merge_records([left, right])
        assert merged == {
            "ID": "11",
            "Name": "Calcitonin",
            "Committee": ["Hay", "Poyner"],
            "Text": "The calcitonin peptide family",
            "Contributors": ["Brown", "Smith"],
        }

    def test_merge_records_unions_conflicting_lists(self):
        merged = merge_records([
            {"Committee": ["Hay"]},
            {"Committee": ["Brown"]},
        ])
        assert merged == {"Committee": ["Hay", "Brown"]}

    def test_merge_records_conflicting_scalars_become_list(self):
        merged = merge_records([{"Name": "A"}, {"Name": "B"}])
        assert merged == {"Name": ["A", "B"]}

    def test_merge_records_nested_dicts(self):
        merged = merge_records([
            {"Meta": {"a": 1}},
            {"Meta": {"b": 2}},
        ])
        assert merged == {"Meta": {"a": 1, "b": 2}}

    def test_merge_empty(self):
        assert merge_records([]) == {}
