"""Tests for the shared LRU-bounding helpers, including behaviour
under concurrent eviction (the caches are served from worker threads)."""

import threading
from collections import OrderedDict

import pytest

from repro.util.lru import check_max_entries, evict_lru


class TestCheckMaxEntries:
    def test_valid_bound_passes_through(self):
        assert check_max_entries(1) == 1
        assert check_max_entries(4096) == 4096

    def test_zero_and_negative_are_rejected(self):
        with pytest.raises(ValueError):
            check_max_entries(0)
        with pytest.raises(ValueError):
            check_max_entries(-3)


class TestEvictLru:
    def test_evicts_oldest_first(self):
        store = OrderedDict((i, i) for i in range(5))
        assert evict_lru(store, 2) == 3
        assert list(store) == [3, 4]

    def test_within_bound_is_a_noop(self):
        store = OrderedDict((i, i) for i in range(3))
        assert evict_lru(store, 3) == 0
        assert len(store) == 3

    def test_concurrent_drain_is_tolerated(self):
        # Two threads evict the same over-full store at once.  Between
        # one thread's len() check and its popitem() the other may have
        # emptied the store; the KeyError that raises must be treated
        # as "the other thread finished the job", not propagated.
        errors = []
        barrier = threading.Barrier(2)

        def drain(store):
            barrier.wait()
            try:
                for _ in range(200):
                    evict_lru(store, 1)
                    store[object()] = None
                    store[object()] = None
            except KeyError as exc:  # pragma: no cover - the regression
                errors.append(exc)

        store = OrderedDict((i, i) for i in range(100))
        workers = [
            threading.Thread(target=drain, args=(store,)) for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert errors == []

    def test_concurrent_get_put_evict_stays_bounded(self):
        # Mixed readers/writers/evictors: no exceptions escape and the
        # final sweep lands the store at the bound.
        store = OrderedDict()
        errors = []
        stop = threading.Event()

        def writer():
            try:
                for i in range(500):
                    store[(threading.get_ident(), i)] = i
                    evict_lru(store, 64)
            except Exception as exc:
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            while not stop.is_set():
                try:
                    for key in list(store):
                        store.get(key)
                except RuntimeError:
                    # list() can lose the size-change race; retry.
                    continue

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads.append(threading.Thread(target=reader))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert evict_lru(store, 64) >= 0
        assert len(store) <= 64
