"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def project(tmp_path):
    path = tmp_path / "demo.json"
    assert main(["init-demo", str(path)]) == 0
    return path


class TestInitDemo:
    def test_writes_project(self, project):
        payload = json.loads(project.read_text())
        assert "Family" in payload["schema"]
        assert len(payload["views"]) == 5


class TestViews:
    def test_lists_views(self, project, capsys):
        assert main(["views", str(project)]) == 0
        out = capsys.readouterr().out
        for name in ("V1", "V2", "V3", "V4", "V5"):
            assert name in out
        assert "λ" in out  # parameters displayed


class TestRewrite:
    def test_shows_rewritings(self, project, capsys):
        assert main([
            "rewrite", str(project),
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"',
        ]) == 0
        out = capsys.readouterr().out
        assert 'V5(F, N, "gpcr", Tx)' in out
        assert out.count("[total") == 4

    def test_unsatisfiable_query(self, project, capsys):
        assert main([
            "rewrite", str(project),
            'Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"',
        ]) == 0
        assert "no rewritings" in capsys.readouterr().out


class TestCite:
    def test_json_output(self, project, capsys):
        assert main([
            "cite", str(project),
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "focused"
        assert payload["database"][0]["Owner"] == "Tony Harmar"

    def test_text_format(self, project, capsys):
        assert main([
            "cite", str(project),
            'Q(N) :- Family(F, N, Ty), Ty = "vgic"',
            "--format", "text",
        ]) == 0
        assert "CatSper" in capsys.readouterr().out

    def test_policy_choice(self, project, capsys):
        assert main([
            "cite", str(project),
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
            "--policy", "comprehensive",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "comprehensive"

    def test_sql_mode(self, project, capsys):
        assert main([
            "cite", str(project),
            "SELECT f.FName FROM Family f WHERE f.Type = 'gpcr'",
            "--sql",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["citations"]

    def test_explain_flag(self, project, capsys):
        assert main([
            "cite", str(project),
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
            "--format", "text", "--explain",
        ]) == 0
        assert "Citation explanation" in capsys.readouterr().out


class TestPlan:
    def test_shows_plan(self, project, capsys):
        assert main([
            "plan", str(project),
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"',
        ]) == 0
        out = capsys.readouterr().out
        assert "plan for" in out
        assert "estimated cost" in out
        assert "Family" in out and "FamilyIntro" in out

    def test_sql_plan(self, project, capsys):
        assert main([
            "plan", str(project),
            "SELECT f.FName FROM Family f WHERE f.Type = 'gpcr'",
            "--sql",
        ]) == 0
        assert "plan for" in capsys.readouterr().out

    def test_range_query_shows_ordered_access_path(self, project, capsys):
        assert main([
            "plan", str(project),
            'Q(N) :- Family(F, N, Ty), F < "F0020"',
        ]) == 0
        out = capsys.readouterr().out
        assert "pushed predicates" in out
        assert "ordered index on" in out


class TestCiteBatch:
    @pytest.fixture
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
            "\n"
            "# repeated shape, different variable names\n"
            'Q(M) :- Family(G, M, T2), T2 = "gpcr"\n'
            "# range-pushed plan (ordered access path)\n"
            'Q(N) :- Family(F, N, Ty), F < "F0020"\n'
        )
        return path

    def test_cites_every_query(self, project, query_file, capsys):
        assert main([
            "cite-batch", str(project), str(query_file),
            "--format", "text",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("Sources:") == 3

    def test_stats_flag_reports_cache_hits(self, project, query_file,
                                           capsys):
        assert main([
            "cite-batch", str(project), str(query_file), "--stats",
        ]) == 0
        err = capsys.readouterr().err
        assert "rewriting cache" in err and "plan cache" in err

    def test_parallelism_flag_matches_serial_output(self, project,
                                                    query_file, capsys):
        assert main([
            "cite-batch", str(project), str(query_file),
        ]) == 0
        serial = capsys.readouterr().out
        assert main([
            "cite-batch", str(project), str(query_file),
            "--parallelism", "3", "--stats",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial
        assert "parallelism=3" in captured.err


class TestErrors:
    def test_missing_project_file(self, tmp_path, capsys):
        assert main([
            "views", str(tmp_path / "nope.json"),
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_command(self):
        assert main(["frobnicate"]) != 0

    def test_bibtex_and_xml_formats(self, project, capsys):
        assert main([
            "cite", str(project),
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
            "--format", "bibtex",
        ]) == 0
        assert "@misc" in capsys.readouterr().out
        assert main([
            "cite", str(project),
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
            "--format", "xml",
        ]) == 0
        assert "<citation>" in capsys.readouterr().out


class TestUnionQueries:
    UNION = ('Q(N) :- Family(F, N, Ty), FC(F, C); '
             'Q(N) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)')

    def test_plan_union_shows_disjuncts_and_shared_prefix(
        self, project, capsys
    ):
        assert main(["plan", str(project), self.UNION]) == 0
        out = capsys.readouterr().out
        assert "disjunct 1/2" in out and "disjunct 2/2" in out
        assert "shared prefix:" in out

    def test_cite_union_combines_disjuncts(self, project, capsys):
        assert main([
            "cite", str(project),
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"; '
            'Q(N) :- Family(F, N, Ty), Ty = "vgic"',
            "--format", "text",
        ]) == 0
        out = capsys.readouterr().out
        # Citations from both disjuncts' views appear: the gpcr type
        # page and the vgic (CatSper) family page.
        assert "gpcr" in out and "CatSper" in out


class TestAnalyze:
    CONTRADICTION = 'Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"'
    EMPTY_RANGE = 'Q(N) :- Family(F, N, Ty), F > "z", F < "a"'

    def test_clean_query_reports_findings_and_exits_zero(
        self, project, capsys
    ):
        assert main([
            "analyze", str(project),
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
        ]) == 0
        out = capsys.readouterr().out
        # The singleton N-is-head case is clean; F is a join-less
        # single-use variable unless underscore-prefixed.
        assert "QA" in out or "no findings" in out

    def test_contradiction_reports_qa201_and_exits_three(
        self, project, capsys
    ):
        assert main(["analyze", str(project), self.CONTRADICTION]) == 3
        assert "QA201" in capsys.readouterr().out

    def test_empty_interval_reports_qa202(self, project, capsys):
        assert main(["analyze", str(project), self.EMPTY_RANGE]) == 3
        assert "QA202" in capsys.readouterr().out

    def test_union_analysis(self, project, capsys):
        union = (
            'Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"; '
            'Q(N) :- Family(F, N, Ty), F > "z", F < "a"'
        )
        assert main(["analyze", str(project), union]) == 3
        out = capsys.readouterr().out
        assert "QA204" in out and "QA110" in out

    def test_plan_renders_diagnostics_and_exits_three(
        self, project, capsys
    ):
        assert main(["plan", str(project), self.CONTRADICTION]) == 3
        out = capsys.readouterr().out
        assert "diagnostics:" in out
        assert "QA201" in out

    def test_plan_on_clean_query_still_exits_zero(self, project, capsys):
        assert main([
            "plan", str(project),
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
        ]) == 0

    def test_cite_refuses_provably_empty_query(self, project, capsys):
        assert main(["cite", str(project), self.CONTRADICTION]) == 3
        captured = capsys.readouterr()
        assert "QA201" in captured.err
        assert "error" in captured.err

    def test_cite_empty_interval_exit_code(self, project, capsys):
        assert main(["cite", str(project), self.EMPTY_RANGE]) == 3
        assert "QA202" in capsys.readouterr().err

    def test_cite_batch_analyze_flag_reports_counters(
        self, project, tmp_path, capsys
    ):
        query_file = tmp_path / "queries.txt"
        query_file.write_text(
            'Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"\n'
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
        )
        assert main([
            "cite-batch", str(project), str(query_file),
            "--analyze", "--stats",
        ]) == 0
        err = capsys.readouterr().err
        assert "diagnostics:" in err
        assert "QA201=1" in err
