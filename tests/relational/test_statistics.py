"""Tests for incrementally maintained relation statistics."""

import pytest

from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema
from repro.relational.statistics import (
    DEFAULT_RANGE_SELECTIVITY,
    EquiDepthHistogram,
    Interval,
    RelationStatistics,
    statistics_of,
)
from repro.relational.tuples import Row


@pytest.fixture
def db():
    schema = Schema([
        RelationSchema("R", ["a", "b"]),
        RelationSchema("S", ["b", "c"]),
    ])
    return Database(schema)


class TestIncrementalMaintenance:
    def test_insert_updates_stats(self, db):
        db.insert_all("R", [(1, 10), (2, 10), (3, 20)])
        stats = db.relation("R").stats
        assert stats.cardinality == 3
        assert stats.distinct(0) == 3
        assert stats.distinct(1) == 2
        assert stats.frequency(1, 10) == 2

    def test_duplicate_insert_not_double_counted(self, db):
        db.insert("R", 1, 10)
        db.insert("R", 1, 10)  # set semantics: no-op
        assert db.relation("R").stats.cardinality == 1

    def test_delete_updates_stats(self, db):
        db.insert_all("R", [(1, 10), (2, 10)])
        db.delete("R", 1, 10)
        stats = db.relation("R").stats
        assert stats.cardinality == 1
        assert stats.frequency(1, 10) == 1
        assert stats.distinct(0) == 1

    def test_delete_removes_exhausted_values(self, db):
        db.insert("R", 1, 10)
        db.delete("R", 1, 10)
        stats = db.relation("R").stats
        assert stats.cardinality == 0
        assert stats.distinct(0) == 0
        assert stats.frequency(0, 1) == 0

    def test_version_monotone(self, db):
        before = db.stats_version
        db.insert("R", 1, 10)
        mid = db.stats_version
        db.delete("R", 1, 10)
        after = db.stats_version
        assert before < mid < after

    def test_remove_absent_value_raises_instead_of_underflowing(self):
        """Regression: removing a value never recorded used to store a
        ``-1`` frequency (``counter[value] - 1`` is truthy), poisoning
        distinct counts and every selectivity built on them."""
        stats = statistics_of([(1, 10), (2, 20)], 2)
        with pytest.raises(ValueError):
            stats.remove_row((1, 99))  # 99 never inserted at position 1
        # Validate-then-mutate: nothing changed, nothing went negative.
        assert stats.cardinality == 2
        assert stats.frequency(1, 99) == 0
        assert stats.distinct(1) == 2
        assert stats.frequency(0, 1) == 1

    def test_remove_from_empty_statistics_raises(self):
        stats = RelationStatistics(2)
        with pytest.raises(ValueError):
            stats.remove_row((1, 2))
        assert stats.cardinality == 0

    def test_failed_remove_does_not_bump_version(self):
        stats = statistics_of([(1, 10)], 2)
        version = stats.version
        with pytest.raises(ValueError):
            stats.remove_row((1, 11))
        assert stats.version == version


class TestEstimators:
    def test_equality_selectivity(self):
        stats = statistics_of([(1, 10), (2, 10), (3, 20), (4, 20)], 2)
        assert stats.equality_selectivity(0) == pytest.approx(0.25)
        assert stats.equality_selectivity(1) == pytest.approx(0.5)

    def test_value_selectivity_exact(self):
        stats = statistics_of([(1, 10), (2, 10), (3, 20)], 2)
        assert stats.value_selectivity(1, 10) == pytest.approx(2 / 3)
        assert stats.value_selectivity(1, 99) == 0.0

    def test_estimate_matches_combines_constraints(self):
        rows = [(i, i % 2, "x") for i in range(10)]
        stats = statistics_of(rows, 3)
        # position 0: 10 distinct; position 1: 2 distinct.
        assert stats.estimate_matches([0]) == pytest.approx(1.0)
        assert stats.estimate_matches([1]) == pytest.approx(5.0)
        assert stats.estimate_matches([0, 1]) == pytest.approx(0.5)

    def test_empty_relation(self):
        stats = RelationStatistics(2)
        assert stats.cardinality == 0
        assert stats.equality_selectivity(0) == 0.0
        assert stats.estimate_matches([0]) == 0.0

    def test_estimate_access_paths_prices_composite_vs_single_index(self):
        rows = [(i, "hot" if i % 2 == 0 else "cold", i) for i in range(100)]
        stats = statistics_of(rows, 3)
        matched, probed = stats.estimate_access_paths(
            constant_constraints=[(1, "hot")],
            range_constraints=[(2, Interval(lo=0, hi=9))],
        )
        # The hash probe alone touches the whole "hot" bucket; the
        # composite probe narrows to the interval inside the bucket.
        assert probed == pytest.approx(50.0)
        assert matched == pytest.approx(5.0, rel=0.25)
        assert matched <= probed

    def test_estimate_access_paths_agrees_with_estimate_matches(self):
        stats = statistics_of([(i, i % 2) for i in range(100)], 2)
        constraints = dict(
            equality_positions=[1],
            range_constraints=[(0, Interval(lo=0, hi=9))],
        )
        matched, probed = stats.estimate_access_paths(**constraints)
        assert matched == pytest.approx(stats.estimate_matches(**constraints))
        assert probed == pytest.approx(stats.estimate_matches([1]))

    def test_estimate_access_paths_without_ranges_touches_equal(self):
        stats = statistics_of([(i, i % 2) for i in range(10)], 2)
        matched, probed = stats.estimate_access_paths([0])
        assert matched == probed == pytest.approx(1.0)


class TestOrderStatistics:
    def test_min_max(self):
        stats = statistics_of([(3, "b"), (1, "a"), (7, "c")], 2)
        assert stats.min_value(0) == 1 and stats.max_value(0) == 7
        assert stats.min_value(1) == "a" and stats.max_value(1) == "c"

    def test_min_max_empty_column(self):
        stats = RelationStatistics(1)
        assert stats.min_value(0) is None and stats.max_value(0) is None

    def test_mixed_type_column_has_no_order_statistics(self):
        stats = statistics_of([(1,), ("a",)], 1)
        assert stats.min_value(0) is None
        assert stats.histogram(0) is None
        assert stats.range_selectivity(
            0, Interval(lo=0)
        ) == pytest.approx(DEFAULT_RANGE_SELECTIVITY)

    def test_nan_values_excluded_from_order_statistics(self):
        nan = float("nan")
        stats = statistics_of([(1,), (nan,), (5,)], 1)
        assert stats.min_value(0) == 1 and stats.max_value(0) == 5

    def test_order_statistics_refresh_after_mutation(self):
        stats = statistics_of([(1,), (5,)], 1)
        assert stats.max_value(0) == 5
        stats.add_row((9,))
        assert stats.max_value(0) == 9
        stats.remove_row((9,))
        assert stats.max_value(0) == 5

    def test_range_selectivity_uniform_column(self):
        stats = statistics_of([(i,) for i in range(100)], 1)
        sel = stats.range_selectivity(0, Interval(lo=0, hi=19, hi_open=True))
        assert sel == pytest.approx(0.2, abs=0.05)

    def test_range_selectivity_out_of_bounds_is_zero(self):
        stats = statistics_of([(i,) for i in range(10)], 1)
        assert stats.range_selectivity(0, Interval(lo=100)) == 0.0
        assert stats.range_selectivity(0, Interval(hi=-1)) == 0.0
        assert stats.range_selectivity(
            0, Interval(lo=9, lo_open=True)
        ) == 0.0

    def test_range_selectivity_incomparable_bounds_fall_back(self):
        stats = statistics_of([(i,) for i in range(10)], 1)
        sel = stats.range_selectivity(0, Interval(hi="zzz"))
        assert sel == pytest.approx(DEFAULT_RANGE_SELECTIVITY)

    def test_estimate_matches_with_range_constraint(self):
        stats = statistics_of([(i, i % 2) for i in range(100)], 2)
        estimate = stats.estimate_matches(
            equality_positions=[1],
            range_constraints=[(0, Interval(lo=0, hi=9))],
        )
        # ~10% of rows in range, halved by the equality join column.
        assert estimate == pytest.approx(5.0, rel=0.25)

    def test_equi_depth_buckets_balance_skew(self):
        # One hot value with 900 rows, 100 singletons: equi-depth keeps
        # the hot value in its own bucket instead of smearing it.
        rows = [(0,)] * 900 + [(i,) for i in range(1, 101)]
        stats = statistics_of(rows, 1)
        sel = stats.range_selectivity(0, Interval(lo=0, hi=0))
        assert sel == pytest.approx(0.9, rel=0.1)

    def test_histogram_from_frequencies_shape(self):
        hist = EquiDepthHistogram.from_frequencies(
            [(value, 1) for value in range(256)]
        )
        assert sum(rows for __, __, rows in hist.buckets) == 256
        assert all(lo <= hi for lo, hi, __ in hist.buckets)


class TestInterval:
    def test_is_empty(self):
        assert Interval(lo=5, hi=2).is_empty() is True
        assert Interval(lo=2, hi=2, hi_open=True).is_empty() is True
        assert Interval(lo=2, hi=2).is_empty() is False
        assert Interval(lo=2, hi=5).is_empty() is False
        assert Interval().is_empty() is False
        assert Interval(lo=1, hi="a").is_empty() is None

    def test_admits(self):
        interval = Interval(lo=2, lo_open=True, hi=5)
        assert interval.admits(3) is True
        assert interval.admits(2) is False
        assert interval.admits(5) is True
        assert interval.admits(6) is False
        assert interval.admits("x") is None

    def test_describe(self):
        assert Interval(lo=2, hi=5, hi_open=True).describe() == "[2, 5)"
        assert Interval(hi=5).describe() == "(-inf, 5]"
        assert Interval(lo=2, lo_open=True).describe() == "(2, +inf)"


class TestBatchInsert:
    def test_insert_many_equivalent_to_loop(self, db):
        instance = db.relation("R")
        rows = [(i, i % 3) for i in range(100)]
        instance.insert_many(rows)
        assert len(instance) == 100
        assert instance.stats.cardinality == 100

    def test_large_batch_drops_and_rebuilds_indexes(self, db):
        instance = db.relation("R")
        instance.insert((0, 0))
        # Force a secondary index into existence, then bulk-load past it.
        assert instance.lookup((1,), (0,)) == [Row("R", (0, 0))]
        instance.insert_many([(i, 5) for i in range(1, 200)])
        assert len(instance.lookup((1,), (5,))) == 199

    def test_database_insert_batch(self, db):
        stored = db.insert_batch({
            "R": [(1, 10), (2, 20)],
            "S": [(10, 100)],
        })
        assert len(stored["R"]) == 2
        assert len(db.relation("S")) == 1
