"""Tests for incrementally maintained relation statistics."""

import pytest

from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema
from repro.relational.statistics import RelationStatistics, statistics_of
from repro.relational.tuples import Row


@pytest.fixture
def db():
    schema = Schema([
        RelationSchema("R", ["a", "b"]),
        RelationSchema("S", ["b", "c"]),
    ])
    return Database(schema)


class TestIncrementalMaintenance:
    def test_insert_updates_stats(self, db):
        db.insert_all("R", [(1, 10), (2, 10), (3, 20)])
        stats = db.relation("R").stats
        assert stats.cardinality == 3
        assert stats.distinct(0) == 3
        assert stats.distinct(1) == 2
        assert stats.frequency(1, 10) == 2

    def test_duplicate_insert_not_double_counted(self, db):
        db.insert("R", 1, 10)
        db.insert("R", 1, 10)  # set semantics: no-op
        assert db.relation("R").stats.cardinality == 1

    def test_delete_updates_stats(self, db):
        db.insert_all("R", [(1, 10), (2, 10)])
        db.delete("R", 1, 10)
        stats = db.relation("R").stats
        assert stats.cardinality == 1
        assert stats.frequency(1, 10) == 1
        assert stats.distinct(0) == 1

    def test_delete_removes_exhausted_values(self, db):
        db.insert("R", 1, 10)
        db.delete("R", 1, 10)
        stats = db.relation("R").stats
        assert stats.cardinality == 0
        assert stats.distinct(0) == 0
        assert stats.frequency(0, 1) == 0

    def test_version_monotone(self, db):
        before = db.stats_version
        db.insert("R", 1, 10)
        mid = db.stats_version
        db.delete("R", 1, 10)
        after = db.stats_version
        assert before < mid < after


class TestEstimators:
    def test_equality_selectivity(self):
        stats = statistics_of([(1, 10), (2, 10), (3, 20), (4, 20)], 2)
        assert stats.equality_selectivity(0) == pytest.approx(0.25)
        assert stats.equality_selectivity(1) == pytest.approx(0.5)

    def test_value_selectivity_exact(self):
        stats = statistics_of([(1, 10), (2, 10), (3, 20)], 2)
        assert stats.value_selectivity(1, 10) == pytest.approx(2 / 3)
        assert stats.value_selectivity(1, 99) == 0.0

    def test_estimate_matches_combines_constraints(self):
        rows = [(i, i % 2, "x") for i in range(10)]
        stats = statistics_of(rows, 3)
        # position 0: 10 distinct; position 1: 2 distinct.
        assert stats.estimate_matches([0]) == pytest.approx(1.0)
        assert stats.estimate_matches([1]) == pytest.approx(5.0)
        assert stats.estimate_matches([0, 1]) == pytest.approx(0.5)

    def test_empty_relation(self):
        stats = RelationStatistics(2)
        assert stats.cardinality == 0
        assert stats.equality_selectivity(0) == 0.0
        assert stats.estimate_matches([0]) == 0.0


class TestBatchInsert:
    def test_insert_many_equivalent_to_loop(self, db):
        instance = db.relation("R")
        rows = [(i, i % 3) for i in range(100)]
        instance.insert_many(rows)
        assert len(instance) == 100
        assert instance.stats.cardinality == 100

    def test_large_batch_drops_and_rebuilds_indexes(self, db):
        instance = db.relation("R")
        instance.insert((0, 0))
        # Force a secondary index into existence, then bulk-load past it.
        assert instance.lookup((1,), (0,)) == [Row("R", (0, 0))]
        instance.insert_many([(i, 5) for i in range(1, 200)])
        assert len(instance.lookup((1,), (5,))) == 199

    def test_database_insert_batch(self, db):
        stored = db.insert_batch({
            "R": [(1, 10), (2, 20)],
            "S": [(10, 100)],
        })
        assert len(stored["R"]) == 2
        assert len(db.relation("S")) == 1
