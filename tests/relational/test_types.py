"""Tests for attribute domains."""

import pytest

from repro.errors import TypeMismatchError
from repro.relational.types import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    STRING,
    check_value,
    infer_type,
    value_matches,
)


class TestValueMatches:
    def test_int_accepts_int(self):
        assert value_matches(3, INT)

    def test_int_rejects_bool(self):
        # bool is a subclass of int in Python; the domain must reject it.
        assert not value_matches(True, INT)

    def test_int_rejects_string(self):
        assert not value_matches("3", INT)

    def test_float_accepts_int_and_float(self):
        assert value_matches(3, FLOAT)
        assert value_matches(3.5, FLOAT)

    def test_float_rejects_bool(self):
        assert not value_matches(True, FLOAT)

    def test_string_accepts_str_only(self):
        assert value_matches("abc", STRING)
        assert not value_matches(3, STRING)

    def test_bool_accepts_bool_only(self):
        assert value_matches(False, BOOL)
        assert not value_matches(0, BOOL)

    def test_any_accepts_everything(self):
        for value in (1, "x", 2.5, True, None, (1, 2)):
            assert value_matches(value, ANY)


class TestCheckValue:
    def test_raises_on_mismatch(self):
        with pytest.raises(TypeMismatchError):
            check_value("x", INT)

    def test_context_appears_in_message(self):
        with pytest.raises(TypeMismatchError, match="Family.FID"):
            check_value(3.5, STRING, context="Family.FID")

    def test_passes_on_match(self):
        check_value("ok", STRING)


class TestInferType:
    @pytest.mark.parametrize("value,expected", [
        (True, BOOL),
        (3, INT),
        (2.5, FLOAT),
        ("s", STRING),
        (None, ANY),
        ([1], ANY),
    ])
    def test_inference(self, value, expected):
        assert infer_type(value) is expected
