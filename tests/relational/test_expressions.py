"""Tests for comparison operators and positional conditions."""

import pytest

from repro.errors import QueryError
from repro.relational.expressions import (
    AndCondition,
    Comparison,
    ComparisonOp,
    TrueCondition,
)


class TestComparisonOp:
    @pytest.mark.parametrize("symbol,op", [
        ("=", ComparisonOp.EQ), ("==", ComparisonOp.EQ),
        ("!=", ComparisonOp.NE), ("<>", ComparisonOp.NE),
        ("<", ComparisonOp.LT), ("<=", ComparisonOp.LE),
        (">", ComparisonOp.GT), (">=", ComparisonOp.GE),
    ])
    def test_parse(self, symbol, op):
        assert ComparisonOp.parse(symbol) is op

    def test_parse_unknown(self):
        with pytest.raises(QueryError):
            ComparisonOp.parse("~~")

    def test_flip_is_involution(self):
        for op in ComparisonOp:
            assert op.flip().flip() is op

    def test_flip_semantics(self):
        # a < b iff b > a, on samples
        assert ComparisonOp.LT.function(1, 2)
        assert ComparisonOp.LT.flip().function(2, 1)

    def test_negate_is_involution(self):
        for op in ComparisonOp:
            assert op.negate().negate() is op

    def test_negate_semantics(self):
        for op in ComparisonOp:
            for a, b in [(1, 2), (2, 1), (1, 1)]:
                assert op.function(a, b) != op.negate().function(a, b)


class TestConditions:
    def test_true_condition(self):
        assert TrueCondition().evaluate((1, 2))

    def test_comparison_against_constant(self):
        cond = Comparison(0, ComparisonOp.GE, 5)
        assert cond.evaluate((5,))
        assert not cond.evaluate((4,))

    def test_comparison_between_positions(self):
        cond = Comparison(0, ComparisonOp.EQ, 1, right_is_position=True)
        assert cond.evaluate((3, 3))
        assert not cond.evaluate((3, 4))

    def test_mixed_type_comparison_is_false(self):
        cond = Comparison(0, ComparisonOp.LT, 5)
        assert not cond.evaluate(("abc",))

    def test_and_condition(self):
        cond = AndCondition((
            Comparison(0, ComparisonOp.GT, 1),
            Comparison(1, ComparisonOp.EQ, "x"),
        ))
        assert cond.evaluate((2, "x"))
        assert not cond.evaluate((2, "y"))
        assert not cond.evaluate((0, "x"))

    def test_empty_and_is_true(self):
        assert AndCondition(()).evaluate((1,))
