"""Tests for CSV / JSON project persistence."""

import json

import pytest

from repro.errors import SchemaError
from repro.gtopdb.sample import paper_database
from repro.relational.io import (
    dump_csv,
    dump_project,
    load_csv,
    load_project,
    schema_from_dict,
    schema_to_dict,
)


@pytest.fixture
def db():
    return paper_database()


class TestCsv:
    def test_roundtrip(self, db, tmp_path):
        dump_csv(db, tmp_path)
        loaded = load_csv(db.schema, tmp_path)
        for instance in db.relations():
            original = {row.values for row in instance}
            restored = {
                row.values
                for row in loaded.relation(instance.schema.name)
            }
            assert original == restored

    def test_missing_files_tolerated(self, db, tmp_path):
        # Only write one relation; the rest load empty.
        dump_csv(db, tmp_path)
        (tmp_path / "Person.csv").unlink()
        # FK check fails because FC references missing persons.
        with pytest.raises(Exception):
            load_csv(db.schema, tmp_path)

    def test_header_mismatch_rejected(self, db, tmp_path):
        dump_csv(db, tmp_path)
        target = tmp_path / "MetaData.csv"
        target.write_text("Wrong,Header\nOwner,X\n")
        with pytest.raises(SchemaError):
            load_csv(db.schema, tmp_path)


class TestSchemaDict:
    def test_roundtrip(self, db):
        payload = schema_to_dict(db.schema)
        restored = schema_from_dict(payload)
        assert restored.relation_names == db.schema.relation_names
        for relation in db.schema:
            again = restored.relation(relation.name)
            assert again.attribute_names == relation.attribute_names
            assert again.key == relation.key
            assert len(again.foreign_keys) == len(relation.foreign_keys)
        restored.validate()


class TestProject:
    def test_roundtrip_data(self, db, tmp_path):
        path = tmp_path / "project.json"
        dump_project(db, path)
        loaded, views = load_project(path)
        assert views == []
        assert loaded.total_rows() == db.total_rows()

    def test_views_preserved(self, db, tmp_path):
        path = tmp_path / "project.json"
        specs = [{
            "view": "lambda F. V1(F, N, Ty) :- Family(F, N, Ty)",
            "citation_query": (
                "lambda F. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), "
                "Person(C, Pn, A)"
            ),
            "labels": ["ID", "Name", "Committee"],
        }]
        dump_project(db, path, views=specs)
        __, views = load_project(path)
        assert views == specs

    def test_file_is_valid_json(self, db, tmp_path):
        path = tmp_path / "project.json"
        dump_project(db, path)
        with open(path) as handle:
            payload = json.load(handle)
        assert set(payload) == {"schema", "data"}

    def test_loaded_project_supports_citations(self, db, tmp_path):
        from repro.citation.generator import CitationEngine
        from repro.views.citation_view import CitationView
        from repro.views.registry import ViewRegistry

        path = tmp_path / "project.json"
        dump_project(db, path, views=[{
            "view": "lambda Ty. V4(F, N, Ty) :- Family(F, N, Ty)",
            "citation_query": (
                "lambda Ty. CV4(Ty, N, Pn) :- Family(F, N, Ty), FC(F, C), "
                "Person(C, Pn, A)"
            ),
        }])
        loaded, specs = load_project(path)
        registry = ViewRegistry(loaded.schema, [
            CitationView.from_strings(
                view=spec["view"],
                citation_query=spec["citation_query"],
                labels=spec.get("labels"),
            )
            for spec in specs
        ])
        engine = CitationEngine(loaded, registry)
        result = engine.cite('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        assert result.tuples
